//! Pretty-printer for MSL. Output re-parses to the same AST (round-trip
//! property tested in the engine and suite crates), and matches the paper's
//! presentation: `<cs_person {<name N> <rel R> Rest1 Rest2}> :- ...`.

use crate::ast::*;
use oem::Value;
use std::fmt::Write;

/// Render a term. Bare identifiers are used for identifier-like string
/// constants in label/oid/type positions; `in_value` forces quoted form so
/// value constants round-trip unambiguously.
pub fn term(t: &Term, in_value: bool) -> String {
    match t {
        Term::Var(v) => v.as_str(),
        Term::Param(p) => format!("${p}"),
        Term::Func(f, args) => {
            let inner: Vec<String> = args.iter().map(|a| term(a, false)).collect();
            format!("{f}({})", inner.join(", "))
        }
        Term::Const(v) => match v {
            Value::Str(s) if !in_value && is_ident_like(&s.as_str()) => s.as_str(),
            _ => v.render_atomic(),
        },
    }
}

fn is_ident_like(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() && c.is_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || c == '_')
        && !matches!(s, "by" | "and" | "AND" | "true" | "false")
}

/// Render a pattern.
pub fn pattern(p: &Pattern) -> String {
    let mut out = String::new();
    if let Some(v) = p.obj_var {
        let _ = write!(out, "{v}:");
    }
    out.push('<');
    let mut fields: Vec<String> = Vec::new();
    if let Some(oid) = &p.oid {
        fields.push(term(oid, false));
    }
    fields.push(term(&p.label, false));
    if let Some(t) = &p.typ {
        fields.push(term(t, false));
    }
    fields.push(match &p.value {
        PatValue::Term(t) => term(t, true),
        PatValue::Set(sp) => set_pattern(sp),
    });
    out.push_str(&fields.join(" "));
    out.push('>');
    out
}

/// Render a set pattern.
pub fn set_pattern(sp: &SetPattern) -> String {
    let mut parts: Vec<String> = Vec::new();
    for e in &sp.elements {
        match e {
            SetElem::Pattern(p) => parts.push(pattern(p)),
            SetElem::Var(v) => parts.push(v.as_str()),
            SetElem::Wildcard(p) => parts.push(format!("* {}", pattern(p))),
        }
    }
    let mut out = format!("{{{}", parts.join(" "));
    if let Some(rest) = &sp.rest {
        let _ = write!(out, " | {}", rest.var);
        if !rest.conditions.is_empty() {
            let conds: Vec<String> = rest.conditions.iter().map(pattern).collect();
            let _ = write!(out, ":{{{}}}", conds.join(" "));
        }
    }
    out.push('}');
    out
}

/// Render a tail item.
pub fn tail_item(t: &TailItem) -> String {
    match t {
        TailItem::Match { pattern: p, source } => match source {
            Some(s) => format!("{}@{s}", pattern(p)),
            None => pattern(p),
        },
        TailItem::External { name, args } => {
            let inner: Vec<String> = args.iter().map(|a| term(a, true)).collect();
            format!("{name}({})", inner.join(", "))
        }
    }
}

/// Render a head.
pub fn head(h: &Head) -> String {
    match h {
        Head::Var(v) => v.as_str(),
        Head::Pattern(p) => pattern(p),
    }
}

/// Render a rule on one logical statement, tail items separated by `AND`.
pub fn rule(r: &Rule) -> String {
    let tails: Vec<String> = r.tail.iter().map(tail_item).collect();
    format!("{} :- {}", head(&r.head), tails.join("\n    AND "))
}

/// Render an external declaration line.
pub fn external_decl(d: &ExternalDecl) -> String {
    let ads: Vec<&str> = d
        .adornment
        .iter()
        .map(|a| match a {
            Adornment::Bound => "bound",
            Adornment::Free => "free",
        })
        .collect();
    format!("{}({}) by {}", d.pred, ads.join(", "), d.func)
}

/// Render a full specification.
pub fn spec(s: &Spec) -> String {
    let mut out = String::new();
    for r in &s.rules {
        let _ = writeln!(out, "{}", rule(r));
    }
    if !s.rules.is_empty() && !s.externals.is_empty() {
        out.push('\n');
    }
    for d in &s.externals {
        let _ = writeln!(out, "{}", external_decl(d));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_rule, parse_spec};

    fn roundtrip_rule(src: &str) {
        let r1 = parse_rule(src).unwrap();
        let printed = rule(&r1);
        let r2 = parse_rule(&printed).unwrap_or_else(|e| {
            panic!("printed rule failed to re-parse: {e}\n  printed: {printed}")
        });
        assert_eq!(r1, r2, "round-trip mismatch for {printed}");
    }

    #[test]
    fn roundtrip_ms1_rule() {
        roundtrip_rule(
            "<cs_person {<name N> <rel R> Rest1 Rest2}> :- \
             <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois \
             AND <R {<first_name FN> <last_name LN> | Rest2}>@cs \
             AND decomp(N, LN, FN)",
        );
    }

    #[test]
    fn roundtrip_queries() {
        roundtrip_rule("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med");
        roundtrip_rule("S :- S:<cs_person {<year 3>}>@med");
        roundtrip_rule("X :- <p {<a 'x'> <b 3> <c 2.5> <d true> | R:{<year 3>}}>@s");
        roundtrip_rule("X :- <Oid department string 'CS'>@src");
        roundtrip_rule("S :- S:<cs_person {* <year 3>}>@med");
        roundtrip_rule(
            "<person_id(N) cs_person {<name N>}> :- <person {<name N>}>@whois AND ge(N, 3)",
        );
        roundtrip_rule("<bind_for_Rest2 Rest2> :- <$R {<last_name $LN> | Rest2}>@cs");
    }

    #[test]
    fn roundtrip_spec_with_externals() {
        let src = "<a {<x X>}> :- <b {<x X>}>@s1\n\ndecomp(bound, free, free) by name_to_lnfn\n";
        let s1 = parse_spec(src).unwrap();
        let printed = spec(&s1);
        let s2 = parse_spec(&printed).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn value_strings_always_quoted() {
        let q = parse_query("X :- <dept cs>@s").unwrap();
        let printed = rule(&q);
        assert!(printed.contains("<dept 'cs'>"), "printed: {printed}");
        roundtrip_rule("X :- <dept cs>@s");
    }

    #[test]
    fn head_rendering() {
        let q = parse_query("JC :- JC:<x {}>@m").unwrap();
        assert_eq!(head(&q.head), "JC");
        assert!(rule(&q).starts_with("JC :- JC:<x {}>@m"));
    }

    #[test]
    fn non_ident_labels_quoted() {
        let q = parse_query("X :- <'weird label' 1>@s").unwrap();
        let printed = rule(&q);
        assert!(printed.contains("'weird label'"));
        roundtrip_rule("X :- <'weird label' 1>@s");
    }
}
