//! Tokenizer for MSL.
//!
//! Notable points:
//! * `:-` is a single token distinct from `:`;
//! * identifiers beginning with an uppercase letter are variables (the
//!   paper's convention), everything else is a plain identifier;
//! * `$N` produces a parameter token;
//! * comments run from `//` to end of line.

use crate::diag::Span;
use crate::error::{MslError, Pos, Result};
use oem::Value;

/// One MSL token with its source position (line/column for error messages,
/// byte-offset span for diagnostics).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Line/column position for error messages.
    pub pos: Pos,
    /// Byte-offset span for diagnostics.
    pub span: Span,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:-`
    Implies,
    /// `:`
    Colon,
    /// `|`
    Pipe,
    /// `,`
    Comma,
    /// `@`
    At,
    /// `*`
    Star,
    /// a lowercase-initial (or quoted-free) identifier, e.g. `person`
    Ident(String),
    /// an uppercase-initial identifier — a variable, e.g. `Rest1`
    Var(String),
    /// `$`-prefixed parameter, e.g. `$R`
    Param(String),
    /// `'...'` string literal
    Str(String),
    /// integer literal
    Int(i64),
    /// real literal
    Real(f64),
    /// keyword `AND` (case-insensitive)
    And,
    /// keyword `by` (in external declarations)
    By,
    /// keyword `true`/`false`
    Bool(bool),
}

impl TokenKind {
    /// Render for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Lt => "'<'".into(),
            TokenKind::Gt => "'>'".into(),
            TokenKind::LBrace => "'{'".into(),
            TokenKind::RBrace => "'}'".into(),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::Implies => "':-'".into(),
            TokenKind::Colon => "':'".into(),
            TokenKind::Pipe => "'|'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::At => "'@'".into(),
            TokenKind::Star => "'*'".into(),
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Var(s) => format!("variable '{s}'"),
            TokenKind::Param(s) => format!("parameter '${s}'"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Int(i) => format!("integer {i}"),
            TokenKind::Real(x) => format!("real {x}"),
            TokenKind::And => "'AND'".into(),
            TokenKind::By => "'by'".into(),
            TokenKind::Bool(b) => format!("boolean {b}"),
        }
    }

    /// Convert a literal token to its OEM value, if it is one.
    pub fn to_value(&self) -> Option<Value> {
        Some(match self {
            TokenKind::Str(s) => Value::str(s),
            TokenKind::Int(i) => Value::Int(*i),
            TokenKind::Real(x) => Value::real(*x),
            TokenKind::Bool(b) => Value::Bool(*b),
            _ => return None,
        })
    }
}

/// Tokenize an MSL source string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut byte = 0usize;

    macro_rules! bump {
        () => {{
            let c = chars[i];
            i += 1;
            byte += c.len_utf8();
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        }};
    }

    while i < chars.len() {
        let pos = Pos { line, col };
        let start = byte;
        let c = chars[i];
        match c {
            _ if c.is_whitespace() => {
                bump!();
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '<' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::Lt,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '>' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::Gt,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '{' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::LBrace,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '}' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::RBrace,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '(' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            ')' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '|' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::Pipe,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            ',' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '@' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::At,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '*' => {
                bump!();
                out.push(Token {
                    kind: TokenKind::Star,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            ':' => {
                bump!();
                if chars.get(i) == Some(&'-') {
                    bump!();
                    out.push(Token {
                        kind: TokenKind::Implies,
                        pos,
                        span: Span { start, end: byte },
                    });
                } else {
                    out.push(Token {
                        kind: TokenKind::Colon,
                        pos,
                        span: Span { start, end: byte },
                    });
                }
            }
            '$' => {
                bump!();
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(bump!());
                }
                if s.is_empty() {
                    return Err(MslError::lex("'$' must be followed by a name", pos));
                }
                out.push(Token {
                    kind: TokenKind::Param(s),
                    pos,
                    span: Span { start, end: byte },
                });
            }
            '\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(MslError::lex("unterminated string literal", pos));
                    }
                    let c = bump!();
                    match c {
                        '\'' => break,
                        '\\' => {
                            if i >= chars.len() {
                                return Err(MslError::lex("unterminated escape", pos));
                            }
                            match bump!() {
                                '\'' => s.push('\''),
                                '\\' => s.push('\\'),
                                'n' => s.push('\n'),
                                't' => s.push('\t'),
                                other => {
                                    return Err(MslError::lex(
                                        format!("unknown escape '\\{other}'"),
                                        pos,
                                    ))
                                }
                            }
                        }
                        other => s.push(other),
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                    span: Span { start, end: byte },
                });
            }
            _ if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let mut s = String::new();
                if c == '-' {
                    s.push(bump!());
                }
                let mut is_real = false;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_digit() {
                        s.push(bump!());
                    } else if d == '.'
                        && !is_real
                        && chars.get(i + 1).is_some_and(|x| x.is_ascii_digit())
                    {
                        is_real = true;
                        s.push(bump!());
                    } else if (d == 'e' || d == 'E')
                        && chars
                            .get(i + 1)
                            .is_some_and(|x| x.is_ascii_digit() || *x == '-' || *x == '+')
                    {
                        is_real = true;
                        s.push(bump!());
                        if matches!(chars.get(i), Some('-') | Some('+')) {
                            s.push(bump!());
                        }
                    } else {
                        break;
                    }
                }
                let kind = if is_real {
                    TokenKind::Real(
                        s.parse()
                            .map_err(|_| MslError::lex(format!("bad real '{s}'"), pos))?,
                    )
                } else {
                    TokenKind::Int(
                        s.parse()
                            .map_err(|_| MslError::lex(format!("bad integer '{s}'"), pos))?,
                    )
                };
                out.push(Token {
                    kind,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(bump!());
                }
                let kind = if s.eq_ignore_ascii_case("and") {
                    TokenKind::And
                } else if s == "by" {
                    TokenKind::By
                } else if s == "true" {
                    TokenKind::Bool(true)
                } else if s == "false" {
                    TokenKind::Bool(false)
                } else if s.chars().next().unwrap().is_uppercase() {
                    TokenKind::Var(s)
                } else {
                    TokenKind::Ident(s)
                };
                out.push(Token {
                    kind,
                    pos,
                    span: Span { start, end: byte },
                });
            }
            other => {
                return Err(MslError::lex(
                    format!("unexpected character '{other}'"),
                    pos,
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_pattern_tokens() {
        assert_eq!(
            kinds("<name N>"),
            vec![
                TokenKind::Lt,
                TokenKind::Ident("name".into()),
                TokenKind::Var("N".into()),
                TokenKind::Gt
            ]
        );
    }

    #[test]
    fn implies_vs_colon() {
        assert_eq!(
            kinds("JC :- JC:<x 1>"),
            vec![
                TokenKind::Var("JC".into()),
                TokenKind::Implies,
                TokenKind::Var("JC".into()),
                TokenKind::Colon,
                TokenKind::Lt,
                TokenKind::Ident("x".into()),
                TokenKind::Int(1),
                TokenKind::Gt
            ]
        );
    }

    #[test]
    fn source_annotation_and_rest() {
        assert_eq!(
            kinds("{<dept 'CS'> | Rest1}>@whois"),
            vec![
                TokenKind::LBrace,
                TokenKind::Lt,
                TokenKind::Ident("dept".into()),
                TokenKind::Str("CS".into()),
                TokenKind::Gt,
                TokenKind::Pipe,
                TokenKind::Var("Rest1".into()),
                TokenKind::RBrace,
                TokenKind::Gt,
                TokenKind::At,
                TokenKind::Ident("whois".into()),
            ]
        );
    }

    #[test]
    fn params_and_keywords() {
        assert_eq!(
            kinds("$R AND and by"),
            vec![
                TokenKind::Param("R".into()),
                TokenKind::And,
                TokenKind::And,
                TokenKind::By
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("3 -7 2.5 1e3"),
            vec![
                TokenKind::Int(3),
                TokenKind::Int(-7),
                TokenKind::Real(2.5),
                TokenKind::Real(1000.0)
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r"'O\'Neil'"), vec![TokenKind::Str("O'Neil".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("// hi\nperson"),
            vec![TokenKind::Ident("person".into())]
        );
    }

    #[test]
    fn booleans() {
        assert_eq!(
            kinds("true false"),
            vec![TokenKind::Bool(true), TokenKind::Bool(false)]
        );
    }

    #[test]
    fn error_position() {
        let err = tokenize("ok\n  #").unwrap_err();
        match err {
            MslError::Lex { pos, .. } => {
                assert_eq!(pos.line, 2);
                assert_eq!(pos.col, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn underscore_identifiers() {
        assert_eq!(
            kinds("first_name Rest_1 _x"),
            vec![
                TokenKind::Ident("first_name".into()),
                TokenKind::Var("Rest_1".into()),
                TokenKind::Ident("_x".into()),
            ]
        );
    }
}
