//! `speclint` — collect-all static analysis of MSL specifications.
//!
//! The legacy validator ([`crate::validate`]) stops at the first defect;
//! this module walks the whole specification and reports **every** finding
//! as a [`Diagnostic`] with a stable code, a severity and a byte span (see
//! [`crate::diag::codes`] for the registry). [`crate::validate::validate_spec`]
//! and [`crate::validate::validate_rule`] are now thin wrappers that
//! surface the first error-level diagnostic, preserving their historical
//! error messages.
//!
//! Passes implemented here (those needing the engine or source
//! capabilities — duplicate/subsumed rules, capability feasibility — live
//! in the `medmaker` core crate, which can see both sides):
//!
//! * structural checks ported from the legacy validator (E001–E013);
//! * **adornment feasibility** (E014, §3.4): prove that *some* evaluation
//!   order of the tail satisfies at least one declared bound/free
//!   adornment of every external predicate;
//! * **unsatisfiable condition conjunctions** (W101): constant-propagate
//!   the built-in comparisons and flag rules like
//!   `... AND eq(V, 3) AND gt(V, 5)` that can never produce results;
//! * **unused tail variables** (W102): a variable bound exactly once and
//!   never consumed is usually a typo.

use crate::ast::*;
use crate::diag::{codes, Diagnostic, Span};
use crate::error::Result;
use crate::parser::{parse_spec_spanned, SpecSpans};
use crate::validate::{is_builtin, BUILTIN_PREDICATES};
use oem::{Symbol, Value};
use std::cmp::Ordering;
use std::collections::HashSet;

/// Parse `input` and lint it, returning the spec, its span table and all
/// diagnostics (errors first, then by source position).
pub fn lint_source(input: &str) -> Result<(Spec, SpecSpans, Vec<Diagnostic>)> {
    let (spec, spans) = parse_spec_spanned(input)?;
    let diags = lint_spec(&spec, &spans);
    Ok((spec, spans, diags))
}

/// Run every spec-level lint pass. `spans` may be [`SpecSpans::default`]
/// for programmatically built specs (diagnostics then carry empty spans).
pub fn lint_spec(spec: &Spec, spans: &SpecSpans) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if spec.rules.is_empty() {
        out.push(
            Diagnostic::error(
                codes::EMPTY_SPEC,
                Span::default(),
                "a mediator specification needs at least one rule",
            )
            .with_help("external declarations alone define no exported objects"),
        );
    }

    for (i, d) in spec.externals.iter().enumerate() {
        if d.adornment.is_empty() {
            out.push(Diagnostic::error(
                codes::EMPTY_ADORNMENT,
                spans.external(i),
                format!("external declaration for {} has an empty adornment", d.pred),
            ));
        }
        if is_builtin(d.pred) {
            out.push(
                Diagnostic::error(
                    codes::BUILTIN_SHADOWED,
                    spans.external(i),
                    format!(
                        "external declaration for {} shadows the built-in comparison \
                         predicate; uses of {} always resolve to the built-in",
                        d.pred, d.pred
                    ),
                )
                .with_help("rename the predicate: eq/neq/lt/le/gt/ge are reserved"),
            );
        }
    }

    // Conflicting arities, reported once per predicate (at its first
    // declaration) rather than once per ordered pair.
    let mut reported: HashSet<Symbol> = HashSet::new();
    for (i, d) in spec.externals.iter().enumerate() {
        if !reported.insert(d.pred) {
            continue;
        }
        let arities: HashSet<usize> = spec
            .externals_for(d.pred)
            .iter()
            .map(|o| o.adornment.len())
            .collect();
        if arities.len() > 1 {
            out.push(Diagnostic::error(
                codes::CONFLICTING_ARITIES,
                spans.external(i),
                format!(
                    "conflicting arities declared for external predicate {}",
                    d.pred
                ),
            ));
        }
    }

    for (i, r) in spec.rules.iter().enumerate() {
        lint_rule_into(r, i, spans, &spec.externals, &mut out);
    }

    crate::diag::sort(&mut out);
    out
}

/// Run the rule-level lint passes on a single rule.
pub fn lint_rule(rule: &Rule, externals: &[ExternalDecl]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_rule_into(rule, 0, &SpecSpans::default(), externals, &mut out);
    crate::diag::sort(&mut out);
    out
}

fn lint_rule_into(
    rule: &Rule,
    idx: usize,
    spans: &SpecSpans,
    externals: &[ExternalDecl],
    out: &mut Vec<Diagnostic>,
) {
    let head_span = spans.head(idx);

    // E002: range restriction.
    let tail_vars: HashSet<Symbol> = rule.tail_variables().into_iter().collect();
    let mut head_vars = Vec::new();
    rule.head.collect_vars(&mut head_vars);
    let mut seen = HashSet::new();
    for v in head_vars.iter().filter(|v| seen.insert(**v)) {
        if !tail_vars.contains(v) {
            out.push(
                Diagnostic::error(
                    codes::RANGE_RESTRICTION,
                    head_span,
                    format!(
                        "head variable {v} does not occur in the rule tail (range restriction)"
                    ),
                )
                .with_help("every head variable must be bound by a tail pattern or predicate"),
            );
        }
    }

    // E003: `V :- ...` heads need a defining `V:` somewhere in the tail.
    if let Head::Var(v) = &rule.head {
        let defined = rule.tail.iter().any(|t| match t {
            TailItem::Match { pattern, .. } => pattern_defines_obj_var(pattern, *v),
            TailItem::External { .. } => false,
        });
        if !defined {
            out.push(Diagnostic::error(
                codes::UNDEFINED_HEAD_OBJ_VAR,
                head_span,
                format!("head object variable {v} has no defining '{v}:' occurrence in the tail"),
            ));
        }
    }

    // E004/E005/E006: predicate arity and declaration checks. Items that
    // fail here are excluded from the feasibility analysis below — a
    // wrong-arity atom has no meaningful adornment.
    let mut infeasible_skip = vec![false; rule.tail.len()];
    for (t, item) in rule.tail.iter().enumerate() {
        let span = spans.tail_item(idx, t);
        let TailItem::External { name, args } = item else {
            continue;
        };
        if let Some((_, arity)) = BUILTIN_PREDICATES
            .iter()
            .find(|(n, _)| Symbol::intern(n) == *name)
        {
            if args.len() != *arity {
                out.push(Diagnostic::error(
                    codes::BUILTIN_ARITY,
                    span,
                    format!(
                        "built-in predicate {name} expects {arity} arguments, found {}",
                        args.len()
                    ),
                ));
                infeasible_skip[t] = true;
            }
            continue;
        }
        let decls: Vec<&ExternalDecl> = externals.iter().filter(|d| d.pred == *name).collect();
        if decls.is_empty() {
            out.push(
                Diagnostic::error(
                    codes::UNDECLARED_EXTERNAL,
                    span,
                    format!("external predicate {name} has no declaration"),
                )
                .with_help(format!(
                    "add a declaration line like '{name}(bound, free) by some_function'"
                )),
            );
            infeasible_skip[t] = true;
            continue;
        }
        let mut any_match = false;
        for d in &decls {
            if d.adornment.len() != args.len() {
                out.push(Diagnostic::error(
                    codes::EXTERNAL_ARITY,
                    span,
                    format!(
                        "external predicate {name} used with {} arguments but declared \
                         with {} ('{}' implementation)",
                        args.len(),
                        d.adornment.len(),
                        d.func
                    ),
                ));
            } else {
                any_match = true;
            }
        }
        if !any_match {
            infeasible_skip[t] = true;
        }
    }

    // E007-E010: positional restrictions on head and tail patterns.
    if let Head::Pattern(p) = &rule.head {
        head_pattern_diags(p, head_span, out);
    }
    for (t, item) in rule.tail.iter().enumerate() {
        if let TailItem::Match { pattern, .. } = item {
            tail_pattern_diags(pattern, spans.tail_item(idx, t), out);
        }
    }

    adornment_feasibility(rule, idx, spans, externals, &infeasible_skip, out);
    unsatisfiable_conditions(rule, idx, spans, out);
    unused_tail_variables(rule, idx, spans, out);
}

// ---------------------------------------------------------------------------
// E014: adornment feasibility (§3.4)
// ---------------------------------------------------------------------------

/// Built-in adornments: `eq` can bind one free argument from the other;
/// the ordering comparisons need both arguments bound.
fn builtin_adornments(name: Symbol) -> Vec<Vec<Adornment>> {
    use Adornment::{Bound, Free};
    if name == Symbol::intern("eq") {
        vec![vec![Bound, Bound], vec![Bound, Free], vec![Free, Bound]]
    } else {
        vec![vec![Bound, Bound]]
    }
}

fn term_is_bound(t: &Term, bound: &HashSet<Symbol>) -> bool {
    match t {
        Term::Var(v) => bound.contains(v),
        // Constants are trivially bound; parameters are filled in by the
        // datamerge engine before any external is called (§3.4, `Qcs`).
        Term::Const(_) | Term::Param(_) => true,
        Term::Func(_, args) => args.iter().all(|a| term_is_bound(a, bound)),
    }
}

/// Prove that some sideways-information-passing order evaluates every
/// external/built-in predicate under at least one declared adornment:
/// start from the variables bound by the tail's match patterns, then
/// repeatedly evaluate any predicate whose `bound` positions are satisfied
/// (its remaining variables become bound), to a fixpoint. Anything left
/// over can never be called (§3.4).
fn adornment_feasibility(
    rule: &Rule,
    idx: usize,
    spans: &SpecSpans,
    externals: &[ExternalDecl],
    skip: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let mut bound: HashSet<Symbol> = HashSet::new();
    for item in &rule.tail {
        if let TailItem::Match { pattern, .. } = item {
            let mut vars = Vec::new();
            pattern.collect_vars(&mut vars);
            bound.extend(vars);
        }
    }

    let mut pending: Vec<(usize, Symbol, &Vec<Term>)> = rule
        .tail
        .iter()
        .enumerate()
        .filter(|(t, _)| !skip[*t])
        .filter_map(|(t, item)| match item {
            TailItem::External { name, args } => Some((t, *name, args)),
            TailItem::Match { .. } => None,
        })
        .collect();

    loop {
        let before = pending.len();
        pending.retain(|(_, name, args)| {
            let adornments = if is_builtin(*name) {
                builtin_adornments(*name)
            } else {
                externals
                    .iter()
                    .filter(|d| d.pred == *name && d.adornment.len() == args.len())
                    .map(|d| d.adornment.clone())
                    .collect()
            };
            let callable = adornments.iter().any(|ad| {
                ad.iter()
                    .zip(args.iter())
                    .all(|(a, arg)| *a == Adornment::Free || term_is_bound(arg, &bound))
            });
            if callable {
                let mut vars = Vec::new();
                for a in args.iter() {
                    a.collect_vars(&mut vars);
                }
                bound.extend(vars);
            }
            !callable
        });
        if pending.len() == before {
            break;
        }
    }

    for (t, name, args) in pending {
        let unbound: Vec<String> = {
            let mut vars = Vec::new();
            for a in args {
                a.collect_vars(&mut vars);
            }
            let mut seen = HashSet::new();
            vars.into_iter()
                .filter(|v| !bound.contains(v) && seen.insert(*v))
                .map(|v| v.as_str())
                .collect()
        };
        let what = if is_builtin(name) {
            "built-in predicate"
        } else {
            "external predicate"
        };
        let mut d = Diagnostic::error(
            codes::ADORNMENT_INFEASIBLE,
            spans.tail_item(idx, t),
            format!(
                "{what} {name} can never be evaluated: no evaluation order of the \
                 tail satisfies any of its adornments"
            ),
        );
        if !unbound.is_empty() {
            d = d.with_help(format!(
                "no pattern or evaluable predicate binds {}; declare an adornment \
                 with those positions free, or bind them in a tail pattern",
                unbound.join(", ")
            ));
        }
        out.push(d);
    }
}

// ---------------------------------------------------------------------------
// W101: unsatisfiable condition conjunctions
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn parse(name: Symbol) -> Option<CmpOp> {
        Some(match name.as_str().as_str() {
            "eq" => CmpOp::Eq,
            "neq" => CmpOp::Neq,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }

    fn name(&self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Neq => "neq",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Mirror the operator for swapped arguments: `gt(3, V)` is `lt(V, 3)`.
    fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Does `ord` (of `lhs` vs `rhs`) satisfy the comparison?
    fn holds(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Neq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// One `op(V, c)` constraint, normalized so the variable is on the left.
struct VarConstraint {
    op: CmpOp,
    constant: Value,
    tail_idx: usize,
}

/// Can `op1(V, c1) AND op2(V, c2)` hold for any `V`? Conservative: when a
/// pair cannot be decided (incomparable constants under an inequality,
/// dense-vs-integer gaps), assume satisfiable.
fn pair_satisfiable(a: &VarConstraint, b: &VarConstraint) -> bool {
    use CmpOp::*;
    let ord = a.constant.compare_atomic(&b.constant);
    match (a.op, b.op) {
        // An equality pin decides everything: substitute and evaluate.
        (Eq, other) => match ord {
            Some(o) => other.holds(o),
            // `V = c1` with `other(V, c2)` incomparable: the comparison
            // fails at runtime, so the conjunction is empty — except for
            // `neq`, whose cross-type semantics we leave alone.
            None => other == Neq,
        },
        (other, Eq) => match ord.map(Ordering::reverse) {
            Some(o) => other.holds(o),
            None => other == Neq,
        },
        // Opposite-direction bounds: need room between the constants.
        (Lt | Le, Gt | Ge) | (Gt | Ge, Lt | Le) => {
            let (upper, lower, strict) = if matches!(a.op, Lt | Le) {
                (a, b, matches!(a.op, Lt) || matches!(b.op, Gt))
            } else {
                (b, a, matches!(b.op, Lt) || matches!(a.op, Gt))
            };
            match lower.constant.compare_atomic(&upper.constant) {
                Some(Ordering::Less) => true,
                Some(Ordering::Equal) => !strict,
                Some(Ordering::Greater) => false,
                None => true,
            }
        }
        // Same-direction bounds or anything involving neq: satisfiable.
        _ => true,
    }
}

fn unsatisfiable_conditions(rule: &Rule, idx: usize, spans: &SpecSpans, out: &mut Vec<Diagnostic>) {
    let mut per_var: Vec<(Symbol, Vec<VarConstraint>)> = Vec::new();
    for (t, item) in rule.tail.iter().enumerate() {
        let TailItem::External { name, args } = item else {
            continue;
        };
        let Some(op) = CmpOp::parse(*name) else {
            continue;
        };
        if args.len() != 2 {
            continue;
        }
        match (&args[0], &args[1]) {
            // Ground condition: evaluate it outright.
            (Term::Const(a), Term::Const(b)) => {
                if let Some(ord) = a.compare_atomic(b) {
                    if !op.holds(ord) {
                        out.push(
                            Diagnostic::warning(
                                codes::UNSATISFIABLE_CONDITIONS,
                                spans.tail_item(idx, t),
                                format!(
                                    "condition {}({}, {}) is always false; the rule can \
                                     never produce results",
                                    op.name(),
                                    a.render_atomic(),
                                    b.render_atomic()
                                ),
                            )
                            .with_help("remove the condition or fix its constants"),
                        );
                    }
                }
            }
            (Term::Var(v), Term::Const(c)) => {
                push_constraint(&mut per_var, *v, op, c.clone(), t);
            }
            (Term::Const(c), Term::Var(v)) => {
                push_constraint(&mut per_var, *v, op.flip(), c.clone(), t);
            }
            _ => {}
        }
    }

    for (v, constraints) in per_var {
        'outer: for (i, a) in constraints.iter().enumerate() {
            for b in &constraints[i + 1..] {
                if !pair_satisfiable(a, b) {
                    out.push(
                        Diagnostic::warning(
                            codes::UNSATISFIABLE_CONDITIONS,
                            spans.tail_item(idx, b.tail_idx),
                            format!(
                                "conditions on {v} are unsatisfiable: {}({v}, {}) \
                                 contradicts {}({v}, {}); the rule can never produce results",
                                b.op.name(),
                                b.constant.render_atomic(),
                                a.op.name(),
                                a.constant.render_atomic()
                            ),
                        )
                        .with_help("the conjunction of these comparisons is empty"),
                    );
                    break 'outer;
                }
            }
        }
    }
}

fn push_constraint(
    per_var: &mut Vec<(Symbol, Vec<VarConstraint>)>,
    v: Symbol,
    op: CmpOp,
    constant: Value,
    tail_idx: usize,
) {
    let entry = match per_var.iter_mut().find(|(s, _)| *s == v) {
        Some((_, list)) => list,
        None => {
            per_var.push((v, Vec::new()));
            &mut per_var.last_mut().unwrap().1
        }
    };
    entry.push(VarConstraint {
        op,
        constant,
        tail_idx,
    });
}

// ---------------------------------------------------------------------------
// W102: unused tail variables
// ---------------------------------------------------------------------------

fn unused_tail_variables(rule: &Rule, idx: usize, spans: &SpecSpans, out: &mut Vec<Diagnostic>) {
    let mut head_vars = Vec::new();
    rule.head.collect_vars(&mut head_vars);
    let mut counts: Vec<(Symbol, usize, usize)> = Vec::new(); // (var, count, first tail idx)
    for v in &head_vars {
        bump_count(&mut counts, *v, usize::MAX);
    }
    for (t, item) in rule.tail.iter().enumerate() {
        let mut vars = Vec::new();
        item.collect_vars(&mut vars);
        for v in vars {
            bump_count(&mut counts, v, t);
        }
    }
    for (v, count, first_tail) in counts {
        if count == 1 && first_tail != usize::MAX {
            out.push(
                Diagnostic::warning(
                    codes::UNUSED_TAIL_VAR,
                    spans.tail_item(idx, first_tail),
                    format!("tail variable {v} is bound but never used"),
                )
                .with_help(
                    "if the subobject's presence is the point, keep it; \
                     otherwise this is probably a typo",
                ),
            );
        }
    }
}

fn bump_count(counts: &mut Vec<(Symbol, usize, usize)>, v: Symbol, tail_idx: usize) {
    match counts.iter_mut().find(|(s, _, _)| *s == v) {
        Some((_, c, first)) => {
            *c += 1;
            if *first == usize::MAX {
                *first = tail_idx;
            }
        }
        None => counts.push((v, 1, tail_idx)),
    }
}

// ---------------------------------------------------------------------------
// Structural walkers (ported from the legacy validator, collect-all)
// ---------------------------------------------------------------------------

fn pattern_defines_obj_var(p: &Pattern, v: Symbol) -> bool {
    if p.obj_var == Some(v) {
        return true;
    }
    if let PatValue::Set(sp) = &p.value {
        for e in &sp.elements {
            match e {
                SetElem::Pattern(inner) | SetElem::Wildcard(inner) => {
                    if pattern_defines_obj_var(inner, v) {
                        return true;
                    }
                }
                SetElem::Var(_) => {}
            }
        }
        if let Some(rest) = &sp.rest {
            for c in &rest.conditions {
                if pattern_defines_obj_var(c, v) {
                    return true;
                }
            }
        }
    }
    false
}

fn head_pattern_diags(p: &Pattern, span: Span, out: &mut Vec<Diagnostic>) {
    head_term_diags(&p.label, "label", span, out);
    if let Some(t) = &p.typ {
        head_term_diags(t, "type", span, out);
    }
    if let Some(Term::Param(name)) = &p.oid {
        out.push(Diagnostic::error(
            codes::PARAM_IN_HEAD,
            span,
            format!("parameter ${name} cannot appear in a rule head"),
        ));
    }
    // Function terms (semantic oids) are allowed in any head oid position,
    // root or nested — nested ones fuse subobjects (§2). The legacy
    // validator carried a dead `Func && !is_root` branch here; there is
    // genuinely nothing to check.
    match &p.value {
        PatValue::Term(t) => head_term_diags(t, "value", span, out),
        PatValue::Set(sp) => {
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(inner) => head_pattern_diags(inner, span, out),
                    SetElem::Wildcard(_) => out.push(Diagnostic::error(
                        codes::WILDCARD_IN_HEAD,
                        span,
                        "wildcard subpatterns cannot appear in a rule head",
                    )),
                    SetElem::Var(_) => {}
                }
            }
            if let Some(rest) = &sp.rest {
                out.push(Diagnostic::error(
                    codes::REST_IN_HEAD,
                    span,
                    format!(
                        "rest variable {} ('| {}') cannot appear in a rule head; \
                         write the variable inside the braces to splice its contents",
                        rest.var, rest.var
                    ),
                ));
            }
        }
    }
}

fn head_term_diags(t: &Term, what: &str, span: Span, out: &mut Vec<Diagnostic>) {
    match t {
        Term::Param(name) => out.push(Diagnostic::error(
            codes::PARAM_IN_HEAD,
            span,
            format!("parameter ${name} cannot appear in a rule head {what}"),
        )),
        Term::Func(name, _) => out.push(Diagnostic::error(
            codes::FUNC_MISPLACED,
            span,
            format!("function term {name}(...) can only appear in oid position"),
        )),
        _ => {}
    }
}

fn tail_pattern_diags(p: &Pattern, span: Span, out: &mut Vec<Diagnostic>) {
    if let Some(Term::Func(name, _)) = &p.oid {
        out.push(Diagnostic::error(
            codes::FUNC_MISPLACED,
            span,
            format!("function term {name}(...) cannot appear in a tail pattern oid"),
        ));
    }
    tail_term_diags(&p.label, "label", span, out);
    if let Some(t) = &p.typ {
        tail_term_diags(t, "type", span, out);
    }
    match &p.value {
        PatValue::Term(t) => tail_term_diags(t, "value", span, out),
        PatValue::Set(sp) => {
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(inner) | SetElem::Wildcard(inner) => {
                        tail_pattern_diags(inner, span, out)
                    }
                    SetElem::Var(_) => {}
                }
            }
            if let Some(rest) = &sp.rest {
                for c in &rest.conditions {
                    tail_pattern_diags(c, span, out);
                }
            }
        }
    }
}

fn tail_term_diags(t: &Term, what: &str, span: Span, out: &mut Vec<Diagnostic>) {
    if let Term::Func(name, _) = t {
        out.push(Diagnostic::error(
            codes::FUNC_MISPLACED,
            span,
            format!("function term {name}(...) cannot appear in a tail pattern {what}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let (_, _, diags) = lint_source(src).unwrap();
        diags
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn ms1_is_clean() {
        let diags = lint(
            "<cs_person {<name N> <rel R> Rest1 Rest2}> :- \
             <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois \
             AND <R {<first_name FN> <last_name LN> | Rest2}>@cs \
             AND decomp(N, LN, FN)\n\
             decomp(bound, free, free) by name_to_lnfn\n\
             decomp(free, bound, bound) by lnfn_to_name",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn collects_multiple_defects_in_one_run() {
        // Range restriction (Y), undeclared external (frob) and a wildcard
        // head, all at once.
        let diags = lint("<o {* <x X> <y Y>}> :- <p {<x X>}>@s AND frob(X)");
        let codes = codes_of(&diags);
        assert!(codes.contains(&codes::RANGE_RESTRICTION), "{diags:?}");
        assert!(codes.contains(&codes::UNDECLARED_EXTERNAL), "{diags:?}");
        assert!(codes.contains(&codes::WILDCARD_IN_HEAD), "{diags:?}");
    }

    #[test]
    fn empty_adornment_diagnosed_on_programmatic_specs() {
        // The grammar cannot produce an empty adornment, but specs built
        // in code can.
        let spec = Spec {
            rules: vec![crate::parse_rule("<o {<n N>}> :- <p {<n N>}>@s").unwrap()],
            externals: vec![ExternalDecl {
                pred: oem::sym("d"),
                adornment: vec![],
                func: oem::sym("f"),
            }],
        };
        let diags = lint_spec(&spec, &SpecSpans::default());
        assert!(
            codes_of(&diags).contains(&codes::EMPTY_ADORNMENT),
            "{diags:?}"
        );
    }

    #[test]
    fn conflicting_arities_reported_once_per_predicate() {
        let diags = lint(
            "<o {<n N>}> :- <p {<n N>}>@s\n\
             d(bound, free) by f1\n\
             d(bound) by f2\n\
             d(free) by f3",
        );
        let conflicts: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::CONFLICTING_ARITIES)
            .collect();
        assert_eq!(conflicts.len(), 1, "{diags:?}");
    }

    #[test]
    fn builtin_shadowing_diagnosed() {
        let diags = lint(
            "<o {<n N>}> :- <p {<n N>}>@s\n\
             eq(bound, free) by my_eq",
        );
        assert!(
            codes_of(&diags).contains(&codes::BUILTIN_SHADOWED),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| d.code != codes::CONFLICTING_ARITIES));
    }

    #[test]
    fn adornment_infeasibility_detected() {
        // decomp requires its first argument bound, but nothing binds L.
        let diags = lint(
            "<o {<f F>}> :- <p {<n N>}>@s AND decomp(L, F)\n\
             decomp(bound, free) by f",
        );
        let e014: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::ADORNMENT_INFEASIBLE)
            .collect();
        assert_eq!(e014.len(), 1, "{diags:?}");
        assert_eq!(e014[0].severity, Severity::Error);
        assert!(
            e014[0].help.as_deref().unwrap_or("").contains('L'),
            "{diags:?}"
        );
    }

    #[test]
    fn adornment_feasible_through_chaining() {
        // N (pattern) -> decomp binds LN, FN -> comp consumes FN.
        let diags = lint(
            "<o {<l LN>}> :- <p {<n N>}>@s AND decomp(N, LN, FN) AND comp(FN)\n\
             decomp(bound, free, free) by f\n\
             comp(bound) by g",
        );
        assert!(
            diags.iter().all(|d| d.code != codes::ADORNMENT_INFEASIBLE),
            "{diags:?}"
        );
    }

    #[test]
    fn eq_binds_a_free_argument() {
        let diags = lint("<o {<v V>}> :- <p {<n N>}>@s AND eq(V, 3) AND comp(V)\ncomp(bound) by g");
        assert!(
            diags.iter().all(|d| d.code != codes::ADORNMENT_INFEASIBLE),
            "{diags:?}"
        );
    }

    #[test]
    fn ordering_builtin_with_unbound_var_is_infeasible() {
        let diags = lint("<o {<x X>}> :- <p {<x X>}>@s AND lt(Y, 3)");
        assert!(
            codes_of(&diags).contains(&codes::ADORNMENT_INFEASIBLE),
            "{diags:?}"
        );
    }

    #[test]
    fn unsatisfiable_eq_gt_conjunction() {
        let diags = lint("<o {<v V>}> :- <p {<v V>}>@s AND eq(V, 3) AND gt(V, 5)");
        let w101: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::UNSATISFIABLE_CONDITIONS)
            .collect();
        assert_eq!(w101.len(), 1, "{diags:?}");
        assert_eq!(w101[0].severity, Severity::Warning);
    }

    #[test]
    fn unsatisfiable_interval() {
        let diags = lint("<o {<v V>}> :- <p {<v V>}>@s AND gt(V, 5) AND lt(V, 5)");
        assert!(
            codes_of(&diags).contains(&codes::UNSATISFIABLE_CONDITIONS),
            "{diags:?}"
        );
    }

    #[test]
    fn satisfiable_interval_not_flagged() {
        let diags = lint("<o {<v V>}> :- <p {<v V>}>@s AND ge(V, 3) AND le(V, 7)");
        assert!(
            diags
                .iter()
                .all(|d| d.code != codes::UNSATISFIABLE_CONDITIONS),
            "{diags:?}"
        );
    }

    #[test]
    fn ground_false_condition_flagged() {
        let diags = lint("<o {<v V>}> :- <p {<v V>}>@s AND gt(3, 5)");
        assert!(
            codes_of(&diags).contains(&codes::UNSATISFIABLE_CONDITIONS),
            "{diags:?}"
        );
    }

    #[test]
    fn flipped_constant_variable_order_normalized() {
        // gt(7, V) is lt(V, 7): together with gt(V, 9) it is empty.
        let diags = lint("<o {<v V>}> :- <p {<v V>}>@s AND gt(7, V) AND gt(V, 9)");
        assert!(
            codes_of(&diags).contains(&codes::UNSATISFIABLE_CONDITIONS),
            "{diags:?}"
        );
    }

    #[test]
    fn unused_tail_variable_warned() {
        let diags = lint("<o {<x X>}> :- <p {<x X> <y Y>}>@s");
        let w102: Vec<_> = diags
            .iter()
            .filter(|d| d.code == codes::UNUSED_TAIL_VAR)
            .collect();
        assert_eq!(w102.len(), 1, "{diags:?}");
        assert!(w102[0].message.contains('Y'), "{diags:?}");
    }

    #[test]
    fn spans_point_at_the_offending_tail_item() {
        let src = "<o {<x X>}> :- <p {<x X>}>@s AND frob(X)";
        let (_, _, diags) = lint_source(src).unwrap();
        let d = diags
            .iter()
            .find(|d| d.code == codes::UNDECLARED_EXTERNAL)
            .unwrap();
        assert_eq!(&src[d.span.start..d.span.end], "frob(X)");
    }

    #[test]
    fn errors_sort_before_warnings() {
        let diags = lint("<o {<x X>}> :- <p {<x X> <y Y>}>@s AND frob(X)");
        assert!(!diags.is_empty());
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags.last().unwrap().code, codes::UNUSED_TAIL_VAR);
    }
}
