//! Recursive-descent parser for MSL.
//!
//! Field-count disambiguation follows §2 of the paper exactly: a pattern has
//! up to four fields `<object-id label type value>`; with three fields the
//! type is dropped (`<object-id label value>`); with two fields the type and
//! object-id are dropped (`<label value>`).

use crate::ast::*;
use crate::diag::Span;
use crate::error::{MslError, Pos, Result};
use crate::lexer::{tokenize, Token, TokenKind};
use oem::Symbol;

/// Byte spans for one parsed rule, parallel to the [`Rule`] structure.
///
/// The AST itself stays span-free (rules are compared with `==` by the
/// engine and round-trip tests); spans live in this side table, produced by
/// [`parse_spec_spanned`] and consumed by the lint passes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RuleSpans {
    /// The whole rule, head through last tail item.
    pub whole: Span,
    /// The head only.
    pub head: Span,
    /// One span per tail conjunct, in order.
    pub tail: Vec<Span>,
}

/// Byte spans for a parsed specification, parallel to [`Spec`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpecSpans {
    /// One entry per `spec.rules[i]`.
    pub rules: Vec<RuleSpans>,
    /// One span per `spec.externals[i]` declaration line.
    pub externals: Vec<Span>,
}

impl SpecSpans {
    /// Span of rule `i`, or the empty span if unknown (e.g. a
    /// programmatically built spec).
    pub fn rule(&self, i: usize) -> Span {
        self.rules.get(i).map(|r| r.whole).unwrap_or_default()
    }

    /// Span of tail conjunct `t` of rule `i`, falling back to the rule span.
    pub fn tail_item(&self, i: usize, t: usize) -> Span {
        self.rules
            .get(i)
            .and_then(|r| r.tail.get(t).copied())
            .unwrap_or_else(|| self.rule(i))
    }

    /// Span of the head of rule `i`, falling back to the rule span.
    pub fn head(&self, i: usize) -> Span {
        self.rules
            .get(i)
            .map(|r| r.head)
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| self.rule(i))
    }

    /// Span of external declaration `i`.
    pub fn external(&self, i: usize) -> Span {
        self.externals.get(i).copied().unwrap_or_default()
    }
}

/// Parse a full mediator specification (rules + external declarations).
///
/// ```
/// let spec = msl::parse_spec(
///     "<v {<n N>}> :- <person {<name N>}>@src\n\
///      decomp(bound, free, free) by name_to_lnfn",
/// ).unwrap();
/// assert_eq!(spec.rules.len(), 1);
/// assert_eq!(spec.externals.len(), 1);
/// ```
pub fn parse_spec(input: &str) -> Result<Spec> {
    parse_spec_spanned(input).map(|(spec, _)| spec)
}

/// Parse a specification and also return byte spans for every rule and
/// declaration, for diagnostics (see [`crate::lint`]).
pub fn parse_spec_spanned(input: &str) -> Result<(Spec, SpecSpans)> {
    let mut p = P::new(input)?;
    let mut spec = Spec::default();
    let mut spans = SpecSpans::default();
    while !p.at_end() {
        if p.peek_is_ident_lparen() {
            let start = p.i;
            spec.externals.push(p.external_decl()?);
            spans.externals.push(p.span_from(start));
        } else {
            let (rule, rule_spans) = p.rule_spanned()?;
            spec.rules.push(rule);
            spans.rules.push(rule_spans);
        }
    }
    Ok((spec, spans))
}

/// Parse a single rule.
pub fn parse_rule(input: &str) -> Result<Rule> {
    let mut p = P::new(input)?;
    let rule = p.rule()?;
    if !p.at_end() {
        return Err(MslError::parse(
            format!("trailing input after rule: {}", p.peek_describe()),
            p.pos(),
        ));
    }
    Ok(rule)
}

/// Parse a query — syntactically a rule (§3.1: "we use MSL as our query
/// language").
pub fn parse_query(input: &str) -> Result<Rule> {
    parse_rule(input)
}

struct P {
    toks: Vec<Token>,
    i: usize,
}

impl P {
    fn new(input: &str) -> Result<P> {
        Ok(P {
            toks: tokenize(input)?,
            i: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn pos(&self) -> Pos {
        self.toks
            .get(self.i)
            .or_else(|| self.toks.last())
            .map(|t| t.pos)
            .unwrap_or_default()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.i).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.toks.get(self.i + 1).map(|t| &t.kind)
    }

    fn peek_describe(&self) -> String {
        self.peek()
            .map(|k| k.describe())
            .unwrap_or_else(|| "end of input".into())
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.toks.get(self.i).map(|t| t.kind.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(MslError::parse(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_describe()
                ),
                self.pos(),
            ))
        }
    }

    fn peek_is_ident_lparen(&self) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(_)))
            && matches!(self.peek2(), Some(TokenKind::LParen))
    }

    /// Byte span covering tokens `start_tok .. self.i` (the tokens consumed
    /// since position `start_tok`).
    fn span_from(&self, start_tok: usize) -> Span {
        if start_tok >= self.i || self.i == 0 {
            return Span::default();
        }
        let start = self.toks[start_tok].span.start;
        let end = self.toks[self.i - 1].span.end;
        Span { start, end }
    }

    // `pred(bound, free, ...) by func`
    fn external_decl(&mut self) -> Result<ExternalDecl> {
        let Some(TokenKind::Ident(pred)) = self.bump() else {
            return Err(MslError::parse("expected predicate name", self.pos()));
        };
        self.expect(TokenKind::LParen)?;
        let mut adornment = Vec::new();
        loop {
            match self.bump() {
                Some(TokenKind::Ident(w)) => match w.as_str() {
                    "bound" | "b" => adornment.push(Adornment::Bound),
                    "free" | "f" => adornment.push(Adornment::Free),
                    other => {
                        return Err(MslError::parse(
                            format!("expected 'bound' or 'free', found '{other}'"),
                            self.pos(),
                        ))
                    }
                },
                other => {
                    return Err(MslError::parse(
                        format!(
                            "expected 'bound' or 'free', found {}",
                            other
                                .map(|k| k.describe())
                                .unwrap_or_else(|| "end of input".into())
                        ),
                        self.pos(),
                    ))
                }
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::By)?;
        let Some(TokenKind::Ident(func)) = self.bump() else {
            return Err(MslError::parse(
                "expected function name after 'by'",
                self.pos(),
            ));
        };
        Ok(ExternalDecl {
            pred: Symbol::intern(&pred),
            adornment,
            func: Symbol::intern(&func),
        })
    }

    fn rule(&mut self) -> Result<Rule> {
        self.rule_spanned().map(|(rule, _)| rule)
    }

    fn rule_spanned(&mut self) -> Result<(Rule, RuleSpans)> {
        let rule_start = self.i;
        let head = self.head()?;
        let head_span = self.span_from(rule_start);
        self.expect(TokenKind::Implies)?;
        let mut tail = Vec::new();
        let mut tail_spans = Vec::new();
        loop {
            let item_start = self.i;
            tail.push(self.tail_item()?);
            tail_spans.push(self.span_from(item_start));
            if !self.eat(&TokenKind::And) {
                break;
            }
        }
        let whole = self.span_from(rule_start);
        Ok((
            Rule { head, tail },
            RuleSpans {
                whole,
                head: head_span,
                tail: tail_spans,
            },
        ))
    }

    fn head(&mut self) -> Result<Head> {
        match self.peek() {
            Some(TokenKind::Var(_)) => {
                if matches!(self.peek2(), Some(TokenKind::Implies)) {
                    let Some(TokenKind::Var(v)) = self.bump() else {
                        unreachable!()
                    };
                    Ok(Head::Var(Symbol::intern(&v)))
                } else {
                    Ok(Head::Pattern(self.pattern()?))
                }
            }
            Some(TokenKind::Lt) => Ok(Head::Pattern(self.pattern()?)),
            _ => Err(MslError::parse(
                format!("expected a rule head, found {}", self.peek_describe()),
                self.pos(),
            )),
        }
    }

    fn tail_item(&mut self) -> Result<TailItem> {
        if self.peek_is_ident_lparen() {
            let Some(TokenKind::Ident(name)) = self.bump() else {
                unreachable!()
            };
            self.expect(TokenKind::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&TokenKind::RParen) {
                args.push(self.term()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.term()?);
                }
            }
            self.expect(TokenKind::RParen)?;
            return Ok(TailItem::External {
                name: Symbol::intern(&name),
                args,
            });
        }
        let pattern = self.pattern()?;
        let source = if self.eat(&TokenKind::At) {
            match self.bump() {
                Some(TokenKind::Ident(s)) => Some(Symbol::intern(&s)),
                other => {
                    return Err(MslError::parse(
                        format!(
                            "expected source name after '@', found {}",
                            other
                                .map(|k| k.describe())
                                .unwrap_or_else(|| "end of input".into())
                        ),
                        self.pos(),
                    ))
                }
            }
        } else {
            None
        };
        Ok(TailItem::Match { pattern, source })
    }

    /// `[Var ':'] '<' field+ '>'`
    fn pattern(&mut self) -> Result<Pattern> {
        let obj_var = if matches!(self.peek(), Some(TokenKind::Var(_)))
            && matches!(self.peek2(), Some(TokenKind::Colon))
        {
            let Some(TokenKind::Var(v)) = self.bump() else {
                unreachable!()
            };
            self.expect(TokenKind::Colon)?;
            Some(Symbol::intern(&v))
        } else {
            None
        };
        let start = self.pos();
        self.expect(TokenKind::Lt)?;

        enum Field {
            T(Term),
            S(SetPattern),
        }
        let mut fields: Vec<Field> = Vec::new();
        loop {
            match self.peek() {
                Some(TokenKind::Gt) => {
                    self.bump();
                    break;
                }
                Some(TokenKind::LBrace) => {
                    fields.push(Field::S(self.set_pattern()?));
                }
                None => return Err(MslError::parse("unterminated pattern: expected '>'", start)),
                _ => {
                    // Commas between fields are tolerated (the OEM data
                    // syntax uses them; MSL patterns in the paper do not).
                    if self.eat(&TokenKind::Comma) {
                        continue;
                    }
                    fields.push(Field::T(self.term()?));
                }
            }
        }

        // Distribute fields per the paper's dropped-field convention.
        let (oid, label, typ, value) = match fields.len() {
            2 => {
                let mut it = fields.into_iter();
                let l = it.next().unwrap();
                let v = it.next().unwrap();
                (None, l, None, v)
            }
            3 => {
                let mut it = fields.into_iter();
                let o = it.next().unwrap();
                let l = it.next().unwrap();
                let v = it.next().unwrap();
                (Some(o), l, None, v)
            }
            4 => {
                let mut it = fields.into_iter();
                let o = it.next().unwrap();
                let l = it.next().unwrap();
                let t = it.next().unwrap();
                let v = it.next().unwrap();
                (Some(o), l, Some(t), v)
            }
            n => {
                return Err(MslError::parse(
                    format!("a pattern must have 2-4 fields, found {n}"),
                    start,
                ))
            }
        };

        let as_term = |f: Field, what: &str| -> Result<Term> {
            match f {
                Field::T(t) => Ok(t),
                Field::S(_) => Err(MslError::parse(
                    format!("a set pattern cannot appear in {what} position"),
                    start,
                )),
            }
        };
        let oid = oid.map(|f| as_term(f, "object-id")).transpose()?;
        let label = as_term(label, "label")?;
        let typ = typ.map(|f| as_term(f, "type")).transpose()?;
        let value = match value {
            Field::T(t) => PatValue::Term(t),
            Field::S(sp) => PatValue::Set(sp),
        };
        Ok(Pattern {
            obj_var,
            oid,
            label,
            typ,
            value,
        })
    }

    /// `'{' elem* ('|' rest)? '}'`
    fn set_pattern(&mut self) -> Result<SetPattern> {
        self.expect(TokenKind::LBrace)?;
        let mut elements = Vec::new();
        let mut rest = None;
        loop {
            match self.peek() {
                Some(TokenKind::RBrace) => {
                    self.bump();
                    break;
                }
                Some(TokenKind::Comma) => {
                    self.bump();
                }
                Some(TokenKind::Pipe) => {
                    self.bump();
                    let Some(TokenKind::Var(v)) = self.bump() else {
                        return Err(MslError::parse(
                            "expected a rest variable after '|'",
                            self.pos(),
                        ));
                    };
                    let mut conditions = Vec::new();
                    if self.eat(&TokenKind::Colon) {
                        self.expect(TokenKind::LBrace)?;
                        while self.peek() != Some(&TokenKind::RBrace) {
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            conditions.push(self.pattern()?);
                        }
                        self.expect(TokenKind::RBrace)?;
                    }
                    rest = Some(RestSpec {
                        var: Symbol::intern(&v),
                        conditions,
                    });
                    self.expect(TokenKind::RBrace)?;
                    break;
                }
                Some(TokenKind::Star) => {
                    self.bump();
                    elements.push(SetElem::Wildcard(self.pattern()?));
                }
                Some(TokenKind::Var(_)) => {
                    // Either a set-valued variable (`Rest1` in a head) or an
                    // object-variable-annotated pattern (`X:<...>`).
                    if matches!(self.peek2(), Some(TokenKind::Colon)) {
                        elements.push(SetElem::Pattern(self.pattern()?));
                    } else {
                        let Some(TokenKind::Var(v)) = self.bump() else {
                            unreachable!()
                        };
                        elements.push(SetElem::Var(Symbol::intern(&v)));
                    }
                }
                Some(TokenKind::Lt) => {
                    elements.push(SetElem::Pattern(self.pattern()?));
                }
                other => {
                    return Err(MslError::parse(
                        format!(
                            "unexpected {} in set pattern",
                            other
                                .map(|k| k.describe())
                                .unwrap_or_else(|| "end of input".into())
                        ),
                        self.pos(),
                    ))
                }
            }
        }
        Ok(SetPattern { elements, rest })
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Some(TokenKind::Var(v)) => Ok(Term::Var(Symbol::intern(&v))),
            Some(TokenKind::Param(p)) => Ok(Term::Param(Symbol::intern(&p))),
            Some(TokenKind::Ident(name)) => {
                if self.peek() == Some(&TokenKind::LParen) {
                    // Function term (semantic oid).
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        args.push(self.term()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.term()?);
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Term::Func(Symbol::intern(&name), args))
                } else {
                    // Bare identifiers are string constants (labels, type
                    // keywords, atoms).
                    Ok(Term::str(&name))
                }
            }
            Some(k) if k.to_value().is_some() => Ok(Term::Const(k.to_value().unwrap())),
            other => Err(MslError::parse(
                format!(
                    "expected a term, found {}",
                    other
                        .map(|k| k.describe())
                        .unwrap_or_else(|| "end of input".into())
                ),
                self.pos(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::{sym, Value};

    /// The paper's MS1 specification.
    pub const MS1: &str = "
<cs_person {<name N> <rel R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN)

decomp(bound, free, free) by name_to_lnfn
decomp(free, bound, bound) by lnfn_to_name
decomp(bound, bound, bound) by check_name_lnfn
";

    #[test]
    fn parse_ms1() {
        let spec = parse_spec(MS1).unwrap();
        assert_eq!(spec.rules.len(), 1);
        assert_eq!(spec.externals.len(), 3);
        let rule = &spec.rules[0];

        // Head: <cs_person {<name N> <rel R> Rest1 Rest2}>
        let Head::Pattern(h) = &rule.head else {
            panic!("expected pattern head")
        };
        assert_eq!(h.label, Term::str("cs_person"));
        let PatValue::Set(sp) = &h.value else {
            panic!("expected set value")
        };
        assert_eq!(sp.elements.len(), 4);
        assert!(matches!(&sp.elements[2], SetElem::Var(v) if *v == sym("Rest1")));
        assert!(sp.rest.is_none());

        // Tail: three items, two matches + one external.
        assert_eq!(rule.tail.len(), 3);
        let TailItem::Match { pattern, source } = &rule.tail[0] else {
            panic!()
        };
        assert_eq!(*source, Some(sym("whois")));
        let PatValue::Set(sp) = &pattern.value else {
            panic!()
        };
        assert_eq!(sp.elements.len(), 3);
        assert_eq!(sp.rest.as_ref().unwrap().var, sym("Rest1"));
        assert!(sp.rest.as_ref().unwrap().conditions.is_empty());

        // Second match uses a variable in label position (schematic
        // discrepancy: R is data in whois, schema in cs).
        let TailItem::Match { pattern, source } = &rule.tail[1] else {
            panic!()
        };
        assert_eq!(*source, Some(sym("cs")));
        assert_eq!(pattern.label, Term::var("R"));

        let TailItem::External { name, args } = &rule.tail[2] else {
            panic!()
        };
        assert_eq!(*name, sym("decomp"));
        assert_eq!(args.len(), 3);

        // External declarations.
        assert_eq!(spec.externals[0].pred, sym("decomp"));
        assert_eq!(spec.externals[0].func, sym("name_to_lnfn"));
        assert_eq!(
            spec.externals[0].adornment,
            vec![Adornment::Bound, Adornment::Free, Adornment::Free]
        );
    }

    #[test]
    fn parse_query_q1() {
        // (Q1) JC :- JC:<cs_person {<name 'Joe Chung'>}>@med
        let q = parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med").unwrap();
        assert_eq!(q.head, Head::Var(sym("JC")));
        let TailItem::Match { pattern, source } = &q.tail[0] else {
            panic!()
        };
        assert_eq!(pattern.obj_var, Some(sym("JC")));
        assert_eq!(*source, Some(sym("med")));
        let PatValue::Set(sp) = &pattern.value else {
            panic!()
        };
        let SetElem::Pattern(name) = &sp.elements[0] else {
            panic!()
        };
        assert_eq!(name.value, PatValue::Term(Term::str("Joe Chung")));
    }

    #[test]
    fn parse_rest_with_conditions() {
        // Qw's tail: ... | Rest1:{<year 3>}
        let q = parse_query(
            "<bind_for_whois {<bind_for_R R> <bind_for_Rest1 Rest1>}> :- \
             <person {<name 'Joe Chung'> <dept 'CS'> <relation R> | Rest1:{<year 3>}}>@whois",
        )
        .unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        let PatValue::Set(sp) = &pattern.value else {
            panic!()
        };
        let rest = sp.rest.as_ref().unwrap();
        assert_eq!(rest.var, sym("Rest1"));
        assert_eq!(rest.conditions.len(), 1);
        assert_eq!(rest.conditions[0].label, Term::str("year"));
        assert_eq!(rest.conditions[0].value, PatValue::Term(Term::int(3)));
    }

    #[test]
    fn parse_parameterized_query() {
        // Qcs: <bind_for_Rest2 Rest2> :- <$R {<last_name $LN> <first_name $FN> | Rest2}>@cs
        let q = parse_query(
            "<bind_for_Rest2 Rest2> :- <$R {<last_name $LN> <first_name $FN> | Rest2}>@cs",
        )
        .unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        assert_eq!(pattern.label, Term::Param(sym("R")));
    }

    #[test]
    fn parse_four_field_pattern() {
        // <object-id label type value>: oid is a term (here a variable).
        let q = parse_query("X :- <Oid department string 'CS'>@src").unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        assert_eq!(pattern.oid, Some(Term::var("Oid")));
        assert_eq!(pattern.label, Term::str("department"));
        assert_eq!(pattern.typ, Some(Term::str("string")));
        assert_eq!(pattern.value, PatValue::Term(Term::str("CS")));
    }

    #[test]
    fn parse_three_field_pattern() {
        // <object-id label value>: the dropped field is the type (§2).
        let q = parse_query("X :- <Oid name 'Joe'>@src").unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        assert_eq!(pattern.oid, Some(Term::var("Oid")));
        assert_eq!(pattern.typ, None);
        assert_eq!(pattern.value, PatValue::Term(Term::str("Joe")));
    }

    #[test]
    fn parse_semantic_oid_head() {
        let r =
            parse_rule("<person_id(N) cs_person {<name N>}> :- <person {<name N>}>@whois").unwrap();
        let Head::Pattern(h) = &r.head else { panic!() };
        assert_eq!(
            h.oid,
            Some(Term::Func(sym("person_id"), vec![Term::var("N")]))
        );
    }

    #[test]
    fn parse_wildcard_element() {
        let q = parse_query("S :- S:<cs_person {* <year 3>}>@med").unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        let PatValue::Set(sp) = &pattern.value else {
            panic!()
        };
        assert!(matches!(&sp.elements[0], SetElem::Wildcard(p) if p.label == Term::str("year")));
    }

    #[test]
    fn parse_label_variable_schema_query() {
        // Retrieve schema information: variables in label position.
        let q = parse_query("<labels L> :- <person {<L V>}>@whois").unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        let PatValue::Set(sp) = &pattern.value else {
            panic!()
        };
        let SetElem::Pattern(inner) = &sp.elements[0] else {
            panic!()
        };
        assert_eq!(inner.label, Term::var("L"));
        assert_eq!(inner.value, PatValue::Term(Term::var("V")));
    }

    #[test]
    fn multiple_rules_in_spec() {
        let spec =
            parse_spec("<a {<x X>}> :- <b {<x X>}>@s1\n<a {<y Y>}> :- <c {<y Y>}>@s2").unwrap();
        assert_eq!(spec.rules.len(), 2);
    }

    #[test]
    fn comparison_predicates_parse_as_externals() {
        let q = parse_query("S :- S:<p {<year Y>}>@src AND ge(Y, 3) AND lt(Y, 7)").unwrap();
        assert_eq!(q.tail.len(), 3);
        assert!(matches!(&q.tail[1], TailItem::External { name, .. } if *name == sym("ge")));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_rule("JC :-").is_err());
        assert!(parse_rule("JC : <x 1>@s").is_err());
        assert!(parse_rule("<x> :- <y 1>@s").is_err()); // 1-field pattern
        assert!(parse_rule("<a b c d e> :- <y 1>@s").is_err()); // 5 fields
        assert!(parse_rule("X :- <y {1}>@s").is_err()); // bare int in set
        assert!(parse_spec("decomp(bogus) by f").is_err());
        assert!(parse_rule("X :- <y 1>@s extra").is_err());
    }

    #[test]
    fn empty_set_pattern() {
        let q = parse_query("X :- X:<person {}>@s").unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        assert_eq!(pattern.value, PatValue::empty_set());
    }

    #[test]
    fn values_of_all_types() {
        let q = parse_query("X :- <p {<a 'x'> <b 3> <c 2.5> <d true>}>@s").unwrap();
        let TailItem::Match { pattern, .. } = &q.tail[0] else {
            panic!()
        };
        let PatValue::Set(sp) = &pattern.value else {
            panic!()
        };
        let vals: Vec<&PatValue> = sp
            .elements
            .iter()
            .map(|e| match e {
                SetElem::Pattern(p) => &p.value,
                _ => panic!(),
            })
            .collect();
        assert_eq!(*vals[1], PatValue::Term(Term::Const(Value::Int(3))));
        assert_eq!(*vals[2], PatValue::Term(Term::Const(Value::real(2.5))));
        assert_eq!(*vals[3], PatValue::Term(Term::Const(Value::Bool(true))));
    }
}
