//! Semantic validation of MSL rules and specifications.
//!
//! Checks performed:
//! * **range restriction** — every variable used in a rule head must occur
//!   in the tail (otherwise the head cannot be constructed from bindings);
//! * **object variables** — a `X:` annotation in a head must have a
//!   defining `X:` occurrence in the tail (§3.2, item 2: "there is a
//!   definition for every object ... variable that appears in the query
//!   head and also appears in the query tail preceding a ':'");
//! * **external predicates** — consistent arity between uses and
//!   declarations, declarations must have at least one implementation
//!   line per predicate used (built-in comparisons are exempt);
//! * **parameters** — `$X` parameters may appear only in tails (they are
//!   slots filled by the datamerge engine, §3.4);
//! * **semantic oids** — function terms may appear only in head oid
//!   position.

use crate::ast::*;
use crate::error::{MslError, Result};
use oem::Symbol;
use std::collections::HashSet;

/// Built-in comparison predicates, available without declaration.
pub const BUILTIN_PREDICATES: &[(&str, usize)] = &[
    ("eq", 2),
    ("neq", 2),
    ("lt", 2),
    ("le", 2),
    ("gt", 2),
    ("ge", 2),
];

/// Is `name` a built-in comparison predicate?
pub fn is_builtin(name: Symbol) -> bool {
    BUILTIN_PREDICATES
        .iter()
        .any(|(n, _)| Symbol::intern(n) == name)
}

/// Validate a single rule against the (possibly empty) set of external
/// declarations in scope.
pub fn validate_rule(rule: &Rule, externals: &[ExternalDecl]) -> Result<()> {
    // Tail variables (all of them — matches and externals can both bind).
    let tail_vars: HashSet<Symbol> = rule.tail_variables().into_iter().collect();

    // Head variables must be bound by the tail.
    let mut head_vars = Vec::new();
    rule.head.collect_vars(&mut head_vars);
    for v in &head_vars {
        if !tail_vars.contains(v) {
            return Err(MslError::Validate(format!(
                "head variable {v} does not occur in the rule tail (range restriction)"
            )));
        }
    }

    // Object variables used as a whole head must be tail object variables.
    if let Head::Var(v) = &rule.head {
        let mut defined = false;
        for t in &rule.tail {
            if let TailItem::Match { pattern, .. } = t {
                if pattern_defines_obj_var(pattern, *v) {
                    defined = true;
                    break;
                }
            }
        }
        if !defined {
            return Err(MslError::Validate(format!(
                "head object variable {v} has no defining '{v}:' occurrence in the tail"
            )));
        }
    }

    // External predicate arity checks.
    for t in &rule.tail {
        if let TailItem::External { name, args } = t {
            if let Some((_, arity)) = BUILTIN_PREDICATES
                .iter()
                .find(|(n, _)| Symbol::intern(n) == *name)
            {
                if args.len() != *arity {
                    return Err(MslError::Validate(format!(
                        "built-in predicate {name} expects {arity} arguments, found {}",
                        args.len()
                    )));
                }
                continue;
            }
            let decls: Vec<&ExternalDecl> =
                externals.iter().filter(|d| d.pred == *name).collect();
            if decls.is_empty() {
                return Err(MslError::Validate(format!(
                    "external predicate {name} has no declaration"
                )));
            }
            for d in decls {
                if d.adornment.len() != args.len() {
                    return Err(MslError::Validate(format!(
                        "external predicate {name} used with {} arguments but declared \
                         with {} ('{}' implementation)",
                        args.len(),
                        d.adornment.len(),
                        d.func
                    )));
                }
            }
        }
    }

    // Parameters only in tails; function terms only in head oid position.
    if let Head::Pattern(p) = &rule.head {
        check_head_pattern(p, true)?;
    }
    for t in &rule.tail {
        if let TailItem::Match { pattern, .. } = t {
            check_tail_pattern(pattern)?;
        }
    }
    Ok(())
}

/// Validate a whole specification.
pub fn validate_spec(spec: &Spec) -> Result<()> {
    if spec.rules.is_empty() {
        return Err(MslError::Validate(
            "a mediator specification needs at least one rule".into(),
        ));
    }
    for d in &spec.externals {
        if d.adornment.is_empty() {
            return Err(MslError::Validate(format!(
                "external declaration for {} has an empty adornment",
                d.pred
            )));
        }
    }
    // All declaration lines of one predicate must agree on arity.
    for d in &spec.externals {
        for other in spec.externals_for(d.pred) {
            if other.adornment.len() != d.adornment.len() {
                return Err(MslError::Validate(format!(
                    "conflicting arities declared for external predicate {}",
                    d.pred
                )));
            }
        }
    }
    for r in &spec.rules {
        validate_rule(r, &spec.externals)?;
    }
    Ok(())
}

fn pattern_defines_obj_var(p: &Pattern, v: Symbol) -> bool {
    if p.obj_var == Some(v) {
        return true;
    }
    if let PatValue::Set(sp) = &p.value {
        for e in &sp.elements {
            match e {
                SetElem::Pattern(inner) | SetElem::Wildcard(inner) => {
                    if pattern_defines_obj_var(inner, v) {
                        return true;
                    }
                }
                SetElem::Var(_) => {}
            }
        }
        if let Some(rest) = &sp.rest {
            for c in &rest.conditions {
                if pattern_defines_obj_var(c, v) {
                    return true;
                }
            }
        }
    }
    false
}

fn check_head_pattern(p: &Pattern, is_root: bool) -> Result<()> {
    // Function terms allowed only in oid position.
    no_params_or_funcs(&p.label, "label")?;
    if let Some(t) = &p.typ {
        no_params_or_funcs(t, "type")?;
    }
    if let Some(oid) = &p.oid {
        if let Term::Param(name) = oid {
            return Err(MslError::Validate(format!(
                "parameter ${name} cannot appear in a rule head"
            )));
        }
        if matches!(oid, Term::Func(..)) && !is_root {
            // Semantic oids on nested head objects are allowed too — they
            // fuse subobjects. No error.
        }
    }
    match &p.value {
        PatValue::Term(t) => no_params_or_funcs(t, "value")?,
        PatValue::Set(sp) => {
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(inner) => check_head_pattern(inner, false)?,
                    SetElem::Wildcard(_) => {
                        return Err(MslError::Validate(
                            "wildcard subpatterns cannot appear in a rule head".into(),
                        ))
                    }
                    SetElem::Var(_) => {}
                }
            }
            if let Some(rest) = &sp.rest {
                return Err(MslError::Validate(format!(
                    "rest variable {} ('| {}') cannot appear in a rule head; \
                     write the variable inside the braces to splice its contents",
                    rest.var, rest.var
                )));
            }
        }
    }
    Ok(())
}

fn check_tail_pattern(p: &Pattern) -> Result<()> {
    if let Some(Term::Func(name, _)) = &p.oid {
        return Err(MslError::Validate(format!(
            "function term {name}(...) cannot appear in a tail pattern oid"
        )));
    }
    no_funcs(&p.label, "label")?;
    if let Some(t) = &p.typ {
        no_funcs(t, "type")?;
    }
    match &p.value {
        PatValue::Term(t) => no_funcs(t, "value")?,
        PatValue::Set(sp) => {
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(inner) | SetElem::Wildcard(inner) => {
                        check_tail_pattern(inner)?
                    }
                    SetElem::Var(_) => {}
                }
            }
            if let Some(rest) = &sp.rest {
                for c in &rest.conditions {
                    check_tail_pattern(c)?;
                }
            }
        }
    }
    Ok(())
}

fn no_params_or_funcs(t: &Term, what: &str) -> Result<()> {
    match t {
        Term::Param(name) => Err(MslError::Validate(format!(
            "parameter ${name} cannot appear in a rule head {what}"
        ))),
        Term::Func(name, _) => Err(MslError::Validate(format!(
            "function term {name}(...) can only appear in oid position"
        ))),
        _ => Ok(()),
    }
}

fn no_funcs(t: &Term, what: &str) -> Result<()> {
    match t {
        Term::Func(name, _) => Err(MslError::Validate(format!(
            "function term {name}(...) cannot appear in a tail pattern {what}"
        ))),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_rule, parse_spec};

    fn ok_rule(src: &str) {
        let r = parse_rule(src).unwrap();
        validate_rule(&r, &[]).unwrap();
    }

    fn bad_rule(src: &str) -> String {
        let r = parse_rule(src).unwrap();
        validate_rule(&r, &[]).unwrap_err().to_string()
    }

    #[test]
    fn valid_rules_pass() {
        ok_rule("<out {<name N>}> :- <person {<name N>}>@whois");
        ok_rule("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med");
        ok_rule("<out {<v V>}> :- <p {<a V>}>@s AND ge(V, 3)");
        ok_rule("<person_id(N) out {<name N>}> :- <person {<name N>}>@s");
    }

    #[test]
    fn range_restriction_enforced() {
        let msg = bad_rule("<out {<name N> <x Y>}> :- <person {<name N>}>@whois");
        assert!(msg.contains("Y"), "{msg}");
    }

    #[test]
    fn head_obj_var_needs_definition() {
        // X appears in the tail as a plain value variable, not as `X:`.
        let msg = bad_rule("X :- <person {<name X>}>@whois");
        assert!(msg.contains("defining"), "{msg}");
    }

    #[test]
    fn builtin_arity_checked() {
        let msg = bad_rule("S :- S:<p {<y Y>}>@s AND ge(Y)");
        assert!(msg.contains("2 arguments"), "{msg}");
    }

    #[test]
    fn undeclared_external_rejected() {
        let msg = bad_rule("<o {<n N> <l L> <f F>}> :- <p {<n N>}>@s AND decomp(N, L, F)");
        assert!(msg.contains("no declaration"), "{msg}");
    }

    #[test]
    fn declared_external_accepted() {
        let spec = parse_spec(
            "<o {<l L> <f F>}> :- <p {<n N>}>@s AND decomp(N, L, F)\n\
             decomp(bound, free, free) by name_to_lnfn",
        )
        .unwrap();
        validate_spec(&spec).unwrap();
    }

    #[test]
    fn external_arity_mismatch_rejected() {
        let spec = parse_spec(
            "<o {<l L>}> :- <p {<n N>}>@s AND decomp(N, L)\n\
             decomp(bound, free, free) by name_to_lnfn",
        )
        .unwrap();
        let msg = validate_spec(&spec).unwrap_err().to_string();
        assert!(msg.contains("declared with 3"), "{msg}");
    }

    #[test]
    fn rest_in_head_rejected() {
        let msg = bad_rule("<o {<n N> | R}> :- <p {<n N> | R}>@s");
        assert!(msg.contains("rest variable"), "{msg}");
    }

    #[test]
    fn params_in_head_rejected() {
        let msg = bad_rule("<o {<n $P>}> :- <p {<n $P>}>@s");
        assert!(msg.contains("parameter"), "{msg}");
    }

    #[test]
    fn func_term_in_tail_rejected() {
        let msg = bad_rule("<o {<n N>}> :- <f(N) p {<n N>}>@s");
        assert!(msg.contains("function term"), "{msg}");
    }

    #[test]
    fn wildcard_in_head_rejected() {
        let msg = bad_rule("<o {* <n N>}> :- <p {<n N>}>@s");
        assert!(msg.contains("wildcard"), "{msg}");
    }

    #[test]
    fn empty_spec_rejected() {
        let spec = parse_spec("decomp(bound, free) by f").unwrap();
        assert!(validate_spec(&spec).is_err());
    }

    #[test]
    fn conflicting_external_arities_rejected() {
        let spec = parse_spec(
            "<o {<n N>}> :- <p {<n N>}>@s\n\
             d(bound, free) by f1\n\
             d(bound) by f2",
        )
        .unwrap();
        let msg = validate_spec(&spec).unwrap_err().to_string();
        assert!(msg.contains("conflicting"), "{msg}");
    }

    #[test]
    fn ms1_validates() {
        let spec = parse_spec(
            "<cs_person {<name N> <rel R> Rest1 Rest2}> :- \
             <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois \
             AND <R {<first_name FN> <last_name LN> | Rest2}>@cs \
             AND decomp(N, LN, FN)\n\
             decomp(bound, free, free) by name_to_lnfn\n\
             decomp(free, bound, bound) by lnfn_to_name",
        )
        .unwrap();
        validate_spec(&spec).unwrap();
    }
}
