//! Semantic validation of MSL rules and specifications.
//!
//! This module is now a thin compatibility wrapper over the collect-all
//! lint engine in [`crate::lint`]: it runs the same passes and surfaces
//! the **first error-level** diagnostic as an [`MslError::Validate`],
//! preserving the historical fail-fast API and error messages. Callers
//! that want every finding (with codes, severities and spans) should call
//! [`crate::lint::lint_spec`] or [`crate::lint::lint_source`] directly.

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::error::{MslError, Result};
use oem::Symbol;

/// Built-in comparison predicates, available without declaration.
pub const BUILTIN_PREDICATES: &[(&str, usize)] = &[
    ("eq", 2),
    ("neq", 2),
    ("lt", 2),
    ("le", 2),
    ("gt", 2),
    ("ge", 2),
];

/// Is `name` a built-in comparison predicate?
pub fn is_builtin(name: Symbol) -> bool {
    BUILTIN_PREDICATES
        .iter()
        .any(|(n, _)| Symbol::intern(n) == name)
}

fn first_error(diags: Vec<Diagnostic>) -> Result<()> {
    match diags.into_iter().find(|d| d.is_error()) {
        Some(d) => Err(MslError::Validate(d.message)),
        None => Ok(()),
    }
}

/// Validate a single rule against the (possibly empty) set of external
/// declarations in scope. Fails on the first error-level lint finding.
pub fn validate_rule(rule: &Rule, externals: &[ExternalDecl]) -> Result<()> {
    first_error(crate::lint::lint_rule(rule, externals))
}

/// Validate a whole specification. Fails on the first error-level lint
/// finding; warnings (unused variables, unsatisfiable conditions, ...) are
/// ignored here.
pub fn validate_spec(spec: &Spec) -> Result<()> {
    first_error(crate::lint::lint_spec(
        spec,
        &crate::parser::SpecSpans::default(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_rule, parse_spec};

    fn ok_rule(src: &str) {
        let r = parse_rule(src).unwrap();
        validate_rule(&r, &[]).unwrap();
    }

    fn bad_rule(src: &str) -> String {
        let r = parse_rule(src).unwrap();
        validate_rule(&r, &[]).unwrap_err().to_string()
    }

    #[test]
    fn valid_rules_pass() {
        ok_rule("<out {<name N>}> :- <person {<name N>}>@whois");
        ok_rule("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med");
        ok_rule("<out {<v V>}> :- <p {<a V>}>@s AND ge(V, 3)");
        ok_rule("<person_id(N) out {<name N>}> :- <person {<name N>}>@s");
    }

    #[test]
    fn range_restriction_enforced() {
        let msg = bad_rule("<out {<name N> <x Y>}> :- <person {<name N>}>@whois");
        assert!(msg.contains("Y"), "{msg}");
    }

    #[test]
    fn head_obj_var_needs_definition() {
        // X appears in the tail as a plain value variable, not as `X:`.
        let msg = bad_rule("X :- <person {<name X>}>@whois");
        assert!(msg.contains("defining"), "{msg}");
    }

    #[test]
    fn builtin_arity_checked() {
        let msg = bad_rule("S :- S:<p {<y Y>}>@s AND ge(Y)");
        assert!(msg.contains("2 arguments"), "{msg}");
    }

    #[test]
    fn undeclared_external_rejected() {
        let msg = bad_rule("<o {<n N> <l L> <f F>}> :- <p {<n N>}>@s AND decomp(N, L, F)");
        assert!(msg.contains("no declaration"), "{msg}");
    }

    #[test]
    fn declared_external_accepted() {
        let spec = parse_spec(
            "<o {<l L> <f F>}> :- <p {<n N>}>@s AND decomp(N, L, F)\n\
             decomp(bound, free, free) by name_to_lnfn",
        )
        .unwrap();
        validate_spec(&spec).unwrap();
    }

    #[test]
    fn external_arity_mismatch_rejected() {
        let spec = parse_spec(
            "<o {<l L>}> :- <p {<n N>}>@s AND decomp(N, L)\n\
             decomp(bound, free, free) by name_to_lnfn",
        )
        .unwrap();
        let msg = validate_spec(&spec).unwrap_err().to_string();
        assert!(msg.contains("declared with 3"), "{msg}");
    }

    #[test]
    fn rest_in_head_rejected() {
        let msg = bad_rule("<o {<n N> | R}> :- <p {<n N> | R}>@s");
        assert!(msg.contains("rest variable"), "{msg}");
    }

    #[test]
    fn params_in_head_rejected() {
        let msg = bad_rule("<o {<n $P>}> :- <p {<n $P>}>@s");
        assert!(msg.contains("parameter"), "{msg}");
    }

    #[test]
    fn func_term_in_tail_rejected() {
        let msg = bad_rule("<o {<n N>}> :- <f(N) p {<n N>}>@s");
        assert!(msg.contains("function term"), "{msg}");
    }

    #[test]
    fn wildcard_in_head_rejected() {
        let msg = bad_rule("<o {* <n N>}> :- <p {<n N>}>@s");
        assert!(msg.contains("wildcard"), "{msg}");
    }

    #[test]
    fn empty_spec_rejected() {
        let spec = parse_spec("decomp(bound, free) by f").unwrap();
        assert!(validate_spec(&spec).is_err());
    }

    #[test]
    fn conflicting_external_arities_rejected() {
        let spec = parse_spec(
            "<o {<n N>}> :- <p {<n N>}>@s\n\
             d(bound, free) by f1\n\
             d(bound) by f2",
        )
        .unwrap();
        let msg = validate_spec(&spec).unwrap_err().to_string();
        assert!(msg.contains("conflicting"), "{msg}");
    }

    #[test]
    fn builtin_shadowing_declaration_rejected() {
        let spec = parse_spec(
            "<o {<n N>}> :- <p {<n N>}>@s\n\
             lt(bound, free) by my_lt",
        )
        .unwrap();
        let msg = validate_spec(&spec).unwrap_err().to_string();
        assert!(msg.contains("shadows"), "{msg}");
    }

    #[test]
    fn adornment_infeasible_spec_rejected() {
        let spec = parse_spec(
            "<o {<f F>}> :- <p {<n N>}>@s AND decomp(L, F)\n\
             decomp(bound, free) by f",
        )
        .unwrap();
        let msg = validate_spec(&spec).unwrap_err().to_string();
        assert!(msg.contains("never be evaluated"), "{msg}");
    }

    #[test]
    fn ms1_validates() {
        let spec = parse_spec(
            "<cs_person {<name N> <rel R> Rest1 Rest2}> :- \
             <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois \
             AND <R {<first_name FN> <last_name LN> | Rest2}>@cs \
             AND decomp(N, LN, FN)\n\
             decomp(bound, free, free) by name_to_lnfn\n\
             decomp(free, bound, bound) by lnfn_to_name",
        )
        .unwrap();
        validate_spec(&spec).unwrap();
    }
}
