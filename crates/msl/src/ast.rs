//! The MSL abstract syntax tree.

use oem::{Symbol, Value};

/// A term: anything that can fill a pattern field or a predicate argument.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable (identifier starting with an uppercase letter), e.g. `N`.
    Var(Symbol),
    /// An atomic constant: `'Joe Chung'`, `3`, `2.5`, `true`, or a bare
    /// lowercase identifier in label/type position (e.g. `person`), which is
    /// represented as a string constant.
    Const(Value),
    /// A parameter slot `$R` of a parameterized query (§3.4, `Qcs`).
    Param(Symbol),
    /// A function term `f(X, Y)` — a **semantic object-id** in a rule head's
    /// oid position, used for object fusion.
    Func(Symbol, Vec<Term>),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Shorthand for a string constant.
    pub fn str(s: &str) -> Term {
        Term::Const(Value::str(s))
    }

    /// Shorthand for an integer constant.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Collect every variable occurring in this term into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Func(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Term::Const(_) | Term::Param(_) => {}
        }
    }
}

/// An object pattern `<oid label type value>` with optional object-variable
/// annotation `X:<...>`.
#[derive(Clone, PartialEq, Debug)]
pub struct Pattern {
    /// `X:` prefix — binds the matched object itself.
    pub obj_var: Option<Symbol>,
    /// The object-id field; `None` means "don't care" (§2: a missing oid in
    /// a tail pattern means we do not care about the source's oids; in a
    /// head pattern, that the mediator may generate arbitrary ones).
    pub oid: Option<Term>,
    /// The label field.
    pub label: Term,
    /// The optional type field.
    pub typ: Option<Term>,
    /// The value field.
    pub value: PatValue,
}

impl Pattern {
    /// A pattern with just label and value (the common 2-field form).
    pub fn lv(label: Term, value: PatValue) -> Pattern {
        Pattern {
            obj_var: None,
            oid: None,
            label,
            typ: None,
            value,
        }
    }

    /// Collect every variable occurring anywhere in the pattern.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        if let Some(v) = self.obj_var {
            out.push(v);
        }
        if let Some(t) = &self.oid {
            t.collect_vars(out);
        }
        self.label.collect_vars(out);
        if let Some(t) = &self.typ {
            t.collect_vars(out);
        }
        self.value.collect_vars(out);
    }
}

/// The value field of a pattern.
#[derive(Clone, PartialEq, Debug)]
pub enum PatValue {
    /// An atomic constant or a variable.
    Term(Term),
    /// A set pattern `{...}` possibly with a rest variable.
    Set(SetPattern),
}

impl PatValue {
    /// Collect variables.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            PatValue::Term(t) => t.collect_vars(out),
            PatValue::Set(sp) => sp.collect_vars(out),
        }
    }

    /// Shorthand: an empty set pattern `{}` with no rest.
    pub fn empty_set() -> PatValue {
        PatValue::Set(SetPattern {
            elements: Vec::new(),
            rest: None,
        })
    }
}

/// A set pattern `{elem elem ... | Rest}`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SetPattern {
    /// The explicit member patterns before `|`.
    pub elements: Vec<SetElem>,
    /// The rest variable after `|`, if any.
    pub rest: Option<RestSpec>,
}

impl SetPattern {
    /// Collect variables.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        for e in &self.elements {
            e.collect_vars(out);
        }
        if let Some(r) = &self.rest {
            out.push(r.var);
            for c in &r.conditions {
                c.collect_vars(out);
            }
        }
    }
}

/// One element of a set pattern.
#[derive(Clone, PartialEq, Debug)]
pub enum SetElem {
    /// A subobject pattern `<name N>`.
    Pattern(Pattern),
    /// A set-valued variable, e.g. `Rest1` appearing inside the head's
    /// braces — its contents are flattened into the constructed set (§2,
    /// "Creation of the Virtual Objects").
    Var(Symbol),
    /// A wildcard subpattern `* <year 3>`: matches when some object at
    /// **any depth** below this object matches the pattern (§2, "Other
    /// Features").
    Wildcard(Pattern),
}

impl SetElem {
    /// Collect variables.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            SetElem::Pattern(p) | SetElem::Wildcard(p) => p.collect_vars(out),
            SetElem::Var(v) => out.push(*v),
        }
    }
}

/// A rest variable with optional attached conditions:
/// `Rest1` or `Rest1:{<year 3>}` (used by the view expander when pushing
/// conditions into rest variables, §3.3).
#[derive(Clone, PartialEq, Debug)]
pub struct RestSpec {
    /// The rest variable binding the remaining subobjects.
    pub var: Symbol,
    /// Conditions some member of the rest must satisfy.
    pub conditions: Vec<Pattern>,
}

impl RestSpec {
    /// A bare rest variable with no conditions.
    pub fn bare(var: Symbol) -> RestSpec {
        RestSpec {
            var,
            conditions: Vec::new(),
        }
    }
}

/// One conjunct of a rule tail.
#[derive(Clone, PartialEq, Debug)]
pub enum TailItem {
    /// Match a pattern against a source (or against the top-level result
    /// when `source` is `None`): `<person {...}>@whois`.
    Match {
        /// The pattern to match.
        pattern: Pattern,
        /// The source it is matched against, from the `@source` annotation.
        source: Option<Symbol>,
    },
    /// An external predicate atom `decomp(N, LN, FN)` — includes the
    /// built-in comparison predicates `eq/neq/lt/le/gt/ge`.
    External {
        /// The predicate name.
        name: Symbol,
        /// Its argument terms.
        args: Vec<Term>,
    },
}

impl TailItem {
    /// Collect variables.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            TailItem::Match { pattern, .. } => pattern.collect_vars(out),
            TailItem::External { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

/// A rule head: either an object variable (query form `JC :- JC:<...>`,
/// which materializes whatever the variable binds to) or a constructed
/// pattern.
#[derive(Clone, PartialEq, Debug)]
pub enum Head {
    /// A bare object variable: the rule exports matched objects verbatim.
    Var(Symbol),
    /// A construction pattern building new objects.
    Pattern(Pattern),
}

impl Head {
    /// Collect variables.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Head::Var(v) => out.push(*v),
            Head::Pattern(p) => p.collect_vars(out),
        }
    }
}

/// A rule `head :- tail1 AND tail2 AND ...`. Queries are rules too (§3.1:
/// "we use MSL as our query language").
#[derive(Clone, PartialEq, Debug)]
pub struct Rule {
    /// What the rule constructs.
    pub head: Head,
    /// The conjuncts that must hold.
    pub tail: Vec<TailItem>,
}

impl Rule {
    /// All variables of the rule, in first-occurrence order, deduplicated.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.head.collect_vars(&mut out);
        for t in &self.tail {
            t.collect_vars(&mut out);
        }
        let mut seen = std::collections::HashSet::new();
        out.retain(|v| seen.insert(*v));
        out
    }

    /// Variables occurring in the tail only.
    pub fn tail_variables(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for t in &self.tail {
            t.collect_vars(&mut out);
        }
        let mut seen = std::collections::HashSet::new();
        out.retain(|v| seen.insert(*v));
        out
    }

    /// The sources referenced by the tail, in order, deduplicated.
    pub fn sources(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for t in &self.tail {
            if let TailItem::Match {
                source: Some(s), ..
            } = t
            {
                if seen.insert(*s) {
                    out.push(*s);
                }
            }
        }
        out
    }
}

/// Whether an argument position of an external function implementation
/// expects a bound input or produces a free output (§2, "External
/// Predicates": `name_to_lnfn` is callable with the first parameter bound,
/// returning the other two).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Adornment {
    /// The argument must be bound when the predicate is called.
    Bound,
    /// The argument may be free; the call binds it.
    Free,
}

/// One declaration line `decomp(bound, free, free) by name_to_lnfn`.
#[derive(Clone, PartialEq, Debug)]
pub struct ExternalDecl {
    /// The predicate the declaration is for.
    pub pred: Symbol,
    /// Bound/free pattern per argument position.
    pub adornment: Vec<Adornment>,
    /// The host function implementing this adornment.
    pub func: Symbol,
}

/// A full mediator specification: rules plus external declarations.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Spec {
    /// The mediator's rules.
    pub rules: Vec<Rule>,
    /// External-predicate declarations.
    pub externals: Vec<ExternalDecl>,
}

impl Spec {
    /// External declarations grouped by predicate name.
    pub fn externals_for(&self, pred: Symbol) -> Vec<&ExternalDecl> {
        self.externals.iter().filter(|d| d.pred == pred).collect()
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::printer::term(self, true))
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::printer::pattern(self))
    }
}

impl std::fmt::Display for Head {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::printer::head(self))
    }
}

impl std::fmt::Display for TailItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::printer::tail_item(self))
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::printer::rule(self))
    }
}

impl std::fmt::Display for Spec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::printer::spec(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::sym;

    fn name_pattern() -> Pattern {
        Pattern::lv(Term::str("name"), PatValue::Term(Term::var("N")))
    }

    #[test]
    fn collect_vars_over_nested_pattern() {
        let p = Pattern {
            obj_var: Some(sym("X")),
            oid: Some(Term::Func(sym("f"), vec![Term::var("K")])),
            label: Term::var("L"),
            typ: None,
            value: PatValue::Set(SetPattern {
                elements: vec![SetElem::Pattern(name_pattern()), SetElem::Var(sym("Rest1"))],
                rest: Some(RestSpec {
                    var: sym("Rest2"),
                    conditions: vec![Pattern::lv(
                        Term::str("year"),
                        PatValue::Term(Term::var("Y")),
                    )],
                }),
            }),
        };
        let mut vars = Vec::new();
        p.collect_vars(&mut vars);
        assert_eq!(
            vars,
            vec![
                sym("X"),
                sym("K"),
                sym("L"),
                sym("N"),
                sym("Rest1"),
                sym("Rest2"),
                sym("Y")
            ]
        );
    }

    #[test]
    fn rule_variables_dedup() {
        let rule = Rule {
            head: Head::Pattern(Pattern::lv(
                Term::str("out"),
                PatValue::Term(Term::var("N")),
            )),
            tail: vec![
                TailItem::Match {
                    pattern: name_pattern(),
                    source: Some(sym("whois")),
                },
                TailItem::External {
                    name: sym("decomp"),
                    args: vec![Term::var("N"), Term::var("LN"), Term::var("FN")],
                },
            ],
        };
        assert_eq!(rule.variables(), vec![sym("N"), sym("LN"), sym("FN")]);
        assert_eq!(rule.sources(), vec![sym("whois")]);
    }

    #[test]
    fn term_helpers() {
        assert!(Term::var("X").is_var());
        assert_eq!(Term::var("X").as_var(), Some(sym("X")));
        assert_eq!(Term::str("a").as_const(), Some(&Value::str("a")));
        assert_eq!(Term::int(3), Term::Const(Value::Int(3)));
    }

    #[test]
    fn display_impls_route_through_printer() {
        let rule = crate::parse_rule("X :- X:<person {<name N>}>@whois").unwrap();
        assert_eq!(rule.to_string(), "X :- X:<person {<name N>}>@whois");
        assert_eq!(Term::var("N").to_string(), "N");
        assert_eq!(Term::str("Joe").to_string(), "'Joe'");
    }

    #[test]
    fn spec_externals_for_groups() {
        let spec = Spec {
            rules: vec![],
            externals: vec![
                ExternalDecl {
                    pred: sym("decomp"),
                    adornment: vec![Adornment::Bound, Adornment::Free, Adornment::Free],
                    func: sym("name_to_lnfn"),
                },
                ExternalDecl {
                    pred: sym("decomp"),
                    adornment: vec![Adornment::Free, Adornment::Bound, Adornment::Bound],
                    func: sym("lnfn_to_name"),
                },
                ExternalDecl {
                    pred: sym("other"),
                    adornment: vec![Adornment::Bound],
                    func: sym("g"),
                },
            ],
        };
        assert_eq!(spec.externals_for(sym("decomp")).len(), 2);
        assert_eq!(spec.externals_for(sym("other")).len(), 1);
        assert!(spec.externals_for(sym("missing")).is_empty());
    }
}
