//! Diagnostics for the `speclint` static-analysis pass.
//!
//! Unlike [`crate::error::MslError`], which models the fail-fast front-end
//! errors (lexing and parsing stop at the first problem), a [`Diagnostic`]
//! is one finding out of many: the lint passes walk the whole specification
//! and report **every** defect in a single run, so a spec author fixes a
//! broken spec in one edit-compile cycle instead of one defect per cycle.
//!
//! Each diagnostic carries a stable machine-readable `code` (`E...` for
//! errors that make the spec unusable, `W...` for warnings the mediator can
//! live with), a byte-offset [`Span`] into the original source text, a
//! human message and an optional `help` suggestion.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// First byte covered by the span.
    pub start: usize,
    /// One past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// The span `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Is this the default empty span (no location information)?
    pub fn is_empty(&self) -> bool {
        self.start == 0 && self.end == 0
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// The mediator can compensate or the spec is merely suspicious;
    /// construction proceeds.
    Warning,
    /// The spec is unusable as written; `Mediator::new` refuses it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One lint finding.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `"E014"`. See [`codes`].
    pub code: &'static str,
    /// Whether the finding blocks mediator construction.
    pub severity: Severity,
    /// Byte range in the source this finding points at. The default span
    /// means "whole spec" (e.g. for an empty specification).
    pub span: Span,
    /// Human-readable description of the finding.
    pub message: String,
    /// An optional suggestion for fixing the problem.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity finding.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a fix suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Is this an error-severity finding?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render with a source excerpt and caret underline:
    ///
    /// ```text
    /// error[E005] at 3:5: external predicate frob has no declaration
    ///   | <x Y> :- frob(Y)
    ///   |           ^^^^^^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        if self.span.is_empty() {
            out.push_str(&format!(
                "{}[{}]: {}",
                self.severity, self.code, self.message
            ));
        } else {
            let (line, col) = line_col(source, self.span.start);
            out.push_str(&format!(
                "{}[{}] at {}:{}: {}",
                self.severity, self.code, line, col, self.message
            ));
            if let Some((excerpt, underline)) = excerpt_line(source, self.span) {
                out.push_str(&format!("\n  | {excerpt}\n  | {underline}"));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n  = help: {help}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// 1-based (line, column) of a byte offset. Columns count characters, like
/// [`crate::error::Pos`].
pub fn line_col(source: &str, byte: usize) -> (usize, usize) {
    let byte = byte.min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (off, c) in source.char_indices() {
        if off >= byte {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// The source line containing `span.start` plus a caret underline covering
/// the intersection of the span with that line.
fn excerpt_line(source: &str, span: Span) -> Option<(String, String)> {
    if span.start > source.len() {
        return None;
    }
    let line_start = source[..span.start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[line_start..]
        .find('\n')
        .map_or(source.len(), |i| line_start + i);
    let line = &source[line_start..line_end];
    let hl_start = span.start - line_start;
    let hl_end = span
        .end
        .min(line_end)
        .saturating_sub(line_start)
        .max(hl_start);
    let mut underline = String::new();
    for (off, c) in line.char_indices() {
        if off < hl_start {
            underline.push(if c == '\t' { '\t' } else { ' ' });
        } else if off < hl_end || off == hl_start {
            underline.push('^');
        } else {
            break;
        }
    }
    Some((line.to_string(), underline))
}

/// Sort diagnostics for stable presentation: errors first, then by source
/// position, then by code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.span.start.cmp(&b.span.start))
            .then(a.code.cmp(b.code))
    });
}

/// The registry of diagnostic codes, with the lint that produces each.
/// `DESIGN.md` documents every code with its paper reference.
pub mod codes {
    /// Specification has no rules at all.
    pub const EMPTY_SPEC: &str = "E001";
    /// Head variable does not occur in the tail (range restriction).
    pub const RANGE_RESTRICTION: &str = "E002";
    /// `Head::Var` with no defining `V:` occurrence in the tail.
    pub const UNDEFINED_HEAD_OBJ_VAR: &str = "E003";
    /// Built-in comparison predicate used with the wrong arity.
    pub const BUILTIN_ARITY: &str = "E004";
    /// External predicate used but never declared.
    pub const UNDECLARED_EXTERNAL: &str = "E005";
    /// External predicate used with an arity that matches no declaration.
    pub const EXTERNAL_ARITY: &str = "E006";
    /// Rest variable (`| R`) in a rule head.
    pub const REST_IN_HEAD: &str = "E007";
    /// Parameter `$X` in a rule head.
    pub const PARAM_IN_HEAD: &str = "E008";
    /// Function term outside a head oid position.
    pub const FUNC_MISPLACED: &str = "E009";
    /// Wildcard subpattern in a rule head.
    pub const WILDCARD_IN_HEAD: &str = "E010";
    /// External declaration with an empty adornment.
    pub const EMPTY_ADORNMENT: &str = "E011";
    /// Conflicting arities declared for the same external predicate.
    pub const CONFLICTING_ARITIES: &str = "E012";
    /// External declaration shadows a built-in comparison predicate.
    pub const BUILTIN_SHADOWED: &str = "E013";
    /// No sideways-information-passing order satisfies any declared
    /// adornment of some external predicate (§3.4).
    pub const ADORNMENT_INFEASIBLE: &str = "E014";
    /// Source cannot answer the pattern and the mediator cannot compensate
    /// (§3.5).
    pub const CAPABILITY_UNANSWERABLE: &str = "E202";
    /// Condition conjunction can never be satisfied (e.g. `eq(V,3) AND
    /// gt(V,5)`); the rule always produces the empty set.
    pub const UNSATISFIABLE_CONDITIONS: &str = "W101";
    /// A tail variable bound once and never used.
    pub const UNUSED_TAIL_VAR: &str = "W102";
    /// Two rules are identical up to variable renaming.
    pub const DUPLICATE_RULE: &str = "W103";
    /// A rule is subsumed by an earlier rule.
    pub const SUBSUMED_RULE: &str = "W104";
    /// Source cannot evaluate a condition; the mediator compensates by
    /// post-filtering (§3.5).
    pub const CAPABILITY_COMPENSATED: &str = "W201";
    /// A join variable has incompatible inferred types across its
    /// occurrences (meet = ⊥), so the join is provably empty (specflow).
    pub const TYPE_MISMATCH: &str = "E301";
    /// No bound/free adornment of an exported view is feasible given the
    /// registered source capabilities: the view's answerability matrix is
    /// empty (specflow).
    pub const UNANSWERABLE_VIEW: &str = "E302";
    /// A condition or pattern names a label no source schema produces
    /// (specflow; the help carries a did-you-mean hint when a close label
    /// exists).
    pub const UNKNOWN_LABEL: &str = "W301";
    /// A view has no possible derivation: every defining rule references an
    /// internal view that is itself underivable — undefined, or recursive
    /// with no base case (specflow).
    pub const DEAD_VIEW: &str = "W302";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        assert_eq!(line_col(src, 100), (3, 3));
    }

    #[test]
    fn render_includes_excerpt_and_caret() {
        let src = "<x Y> :- frob(Y)";
        let d = Diagnostic::error(
            codes::UNDECLARED_EXTERNAL,
            Span::new(9, 16),
            "no declaration",
        );
        let r = d.render(src);
        assert!(r.contains("error[E005] at 1:10"), "{r}");
        assert!(r.contains("<x Y> :- frob(Y)"), "{r}");
        assert!(r.contains("^^^^^^^"), "{r}");
    }

    #[test]
    fn render_without_span_or_with_help() {
        let d =
            Diagnostic::error(codes::EMPTY_SPEC, Span::default(), "empty").with_help("add a rule");
        let r = d.render("");
        assert!(r.contains("error[E001]: empty"), "{r}");
        assert!(r.contains("help: add a rule"), "{r}");
    }

    #[test]
    fn sort_orders_errors_first_then_position() {
        let mut diags = vec![
            Diagnostic::warning("W102", Span::new(5, 6), "w"),
            Diagnostic::error("E005", Span::new(9, 10), "e2"),
            Diagnostic::error("E002", Span::new(1, 2), "e1"),
        ];
        sort(&mut diags);
        assert_eq!(diags[0].code, "E002");
        assert_eq!(diags[1].code, "E005");
        assert_eq!(diags[2].code, "W102");
    }

    #[test]
    fn span_join() {
        assert_eq!(Span::new(3, 7).join(Span::new(1, 5)), Span::new(1, 7));
    }

    #[test]
    fn multiline_excerpt_restricts_to_first_line() {
        let src = "a :- b\nsecond";
        let d = Diagnostic::warning("W103", Span::new(0, 13), "dup");
        let r = d.render(src);
        assert!(r.contains("a :- b"), "{r}");
        assert!(!r.contains("second\n  |"), "{r}");
    }
}
