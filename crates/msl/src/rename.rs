//! Renaming rules apart.
//!
//! "Before we match a query with one or more rules we must rename the
//! variables that appear in the query and the rules, so that no two rules,
//! or a query and a rule have identically named variables" (§3.2,
//! footnote 7). [`rename_rule`] appends a suffix to every variable of a
//! rule; the view expander uses a fresh suffix per (query, rule) pairing.

use crate::ast::*;
use oem::Symbol;

fn rename_sym(v: Symbol, suffix: &str) -> Symbol {
    Symbol::intern(&format!("{v}{suffix}"))
}

fn rename_term(t: &Term, suffix: &str) -> Term {
    match t {
        Term::Var(v) => Term::Var(rename_sym(*v, suffix)),
        Term::Func(f, args) => {
            Term::Func(*f, args.iter().map(|a| rename_term(a, suffix)).collect())
        }
        Term::Const(_) | Term::Param(_) => t.clone(),
    }
}

fn rename_pattern(p: &Pattern, suffix: &str) -> Pattern {
    Pattern {
        obj_var: p.obj_var.map(|v| rename_sym(v, suffix)),
        oid: p.oid.as_ref().map(|t| rename_term(t, suffix)),
        label: rename_term(&p.label, suffix),
        typ: p.typ.as_ref().map(|t| rename_term(t, suffix)),
        value: rename_pat_value(&p.value, suffix),
    }
}

fn rename_pat_value(v: &PatValue, suffix: &str) -> PatValue {
    match v {
        PatValue::Term(t) => PatValue::Term(rename_term(t, suffix)),
        PatValue::Set(sp) => PatValue::Set(SetPattern {
            elements: sp
                .elements
                .iter()
                .map(|e| match e {
                    SetElem::Pattern(p) => SetElem::Pattern(rename_pattern(p, suffix)),
                    SetElem::Wildcard(p) => SetElem::Wildcard(rename_pattern(p, suffix)),
                    SetElem::Var(v) => SetElem::Var(rename_sym(*v, suffix)),
                })
                .collect(),
            rest: sp.rest.as_ref().map(|r| RestSpec {
                var: rename_sym(r.var, suffix),
                conditions: r
                    .conditions
                    .iter()
                    .map(|c| rename_pattern(c, suffix))
                    .collect(),
            }),
        }),
    }
}

/// Rename every variable of `rule` by appending `suffix`.
pub fn rename_rule(rule: &Rule, suffix: &str) -> Rule {
    Rule {
        head: match &rule.head {
            Head::Var(v) => Head::Var(rename_sym(*v, suffix)),
            Head::Pattern(p) => Head::Pattern(rename_pattern(p, suffix)),
        },
        tail: rule
            .tail
            .iter()
            .map(|t| match t {
                TailItem::Match { pattern, source } => TailItem::Match {
                    pattern: rename_pattern(pattern, suffix),
                    source: *source,
                },
                TailItem::External { name, args } => TailItem::External {
                    name: *name,
                    args: args.iter().map(|a| rename_term(a, suffix)).collect(),
                },
            })
            .collect(),
    }
}

/// A counter handing out fresh rename suffixes (`_r1`, `_r2`, ...).
#[derive(Default, Debug)]
pub struct Renamer {
    counter: u64,
}

impl Renamer {
    /// A new renamer starting at `_r1`.
    pub fn new() -> Renamer {
        Renamer::default()
    }

    /// The next fresh suffix.
    pub fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("_r{}", self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use oem::sym;
    use std::collections::HashSet;

    #[test]
    fn all_variables_renamed() {
        let r = parse_rule(
            "<cs_person {<name N> <rel R> Rest1}> :- \
             <person {<name N> <relation R> | Rest1}>@whois AND decomp(N, LN, FN)",
        )
        .unwrap();
        let renamed = rename_rule(&r, "_r1");
        let orig: HashSet<_> = r.variables().into_iter().collect();
        for v in renamed.variables() {
            assert!(!orig.contains(&v), "variable {v} was not renamed");
            assert!(v.as_str().ends_with("_r1"));
        }
        assert_eq!(renamed.variables().len(), r.variables().len());
    }

    #[test]
    fn constants_params_and_sources_untouched() {
        let r = parse_rule("<o {<n $P>}> :- <p {<dept 'CS'> <n $P>}>@whois").unwrap();
        let renamed = rename_rule(&r, "_r9");
        let printed = crate::printer::rule(&renamed);
        assert!(printed.contains("'CS'"));
        assert!(printed.contains("$P"));
        assert!(printed.contains("@whois"));
    }

    #[test]
    fn func_term_args_renamed_but_name_kept() {
        let r = parse_rule("<person_id(N) o {<n N>}> :- <p {<n N>}>@s").unwrap();
        let renamed = rename_rule(&r, "_z");
        let printed = crate::printer::rule(&renamed);
        assert!(printed.contains("person_id(N_z)"), "{printed}");
    }

    #[test]
    fn renamer_is_fresh() {
        let mut r = Renamer::new();
        assert_ne!(r.fresh(), r.fresh());
    }

    #[test]
    fn obj_vars_and_rest_conditions_renamed() {
        let r = parse_rule("X :- X:<p {<a A> | R:{<y Y>}}>@s").unwrap();
        let renamed = rename_rule(&r, "_q");
        assert_eq!(renamed.head, Head::Var(sym("X_q")));
        let printed = crate::printer::rule(&renamed);
        assert!(printed.contains("X_q:<"));
        assert!(printed.contains("| R_q:{<y Y_q>}"), "{printed}");
    }
}
