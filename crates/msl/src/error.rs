//! MSL front-end errors.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, MslError>;

/// A source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (counting characters).
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing and validating MSL.
#[derive(Clone, PartialEq, Debug)]
pub enum MslError {
    /// Lexical error.
    Lex {
        /// What went wrong.
        msg: String,
        /// Where it went wrong.
        pos: Pos,
    },
    /// Syntax error.
    Parse {
        /// What went wrong.
        msg: String,
        /// Where it went wrong.
        pos: Pos,
    },
    /// Semantic validation error (range restriction, arity mismatch, ...).
    Validate(String),
}

impl MslError {
    pub(crate) fn lex(msg: impl Into<String>, pos: Pos) -> MslError {
        MslError::Lex {
            msg: msg.into(),
            pos,
        }
    }

    pub(crate) fn parse(msg: impl Into<String>, pos: Pos) -> MslError {
        MslError::Parse {
            msg: msg.into(),
            pos,
        }
    }
}

impl fmt::Display for MslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MslError::Lex { msg, pos } => write!(f, "MSL lexical error at {pos}: {msg}"),
            MslError::Parse { msg, pos } => write!(f, "MSL syntax error at {pos}: {msg}"),
            MslError::Validate(msg) => write!(f, "MSL validation error: {msg}"),
        }
    }
}

impl std::error::Error for MslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position() {
        let e = MslError::parse("expected '>'", Pos { line: 2, col: 9 });
        assert!(e.to_string().contains("2:9"));
        assert!(e.to_string().contains("expected '>'"));
    }
}
