//! # MSL — the Mediator Specification Language
//!
//! The declarative language of MedMaker (§1.2, §2 of the paper). An MSL
//! *specification* is a set of rules plus declarations of external
//! predicates; an MSL *query* is a single rule evaluated against a mediator
//! or a source. The paper's running example MS1:
//!
//! ```text
//! <cs_person {<name N> <rel R> Rest1 Rest2}> :-
//!     <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
//!     AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
//!     AND decomp(N, LN, FN)
//!
//! decomp(bound, free, free) by name_to_lnfn
//! decomp(free, bound, bound) by lnfn_to_name
//! ```
//!
//! Patterns take the form `<object-id label type value>`; dropping one field
//! drops the type, dropping two drops the type and the object-id (§2).
//! Variables start with an uppercase letter. `X:<...>` binds the object
//! variable `X` to the matched object itself. `| Rest` binds the remaining
//! subobjects; `| Rest:{<year 3>}` additionally constrains them. `@source`
//! names the source a pattern is matched against. `$X` is a parameter slot
//! in parameterized queries (§3.4's `Qcs`). A `*` before a subobject
//! pattern is the **wildcard**: the pattern may match at any depth (§2,
//! "Other Features"). Head object-ids may be function terms `f(X,...)` —
//! **semantic object-ids** used for object fusion.
//!
//! Modules: [`ast`], [`lexer`], [`parser`], [`printer`], [`validate`],
//! [`rename`], [`error`].

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod error;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod printer;
pub mod rename;
pub mod validate;

pub use ast::{
    Adornment, ExternalDecl, Head, PatValue, Pattern, RestSpec, Rule, SetElem, SetPattern, Spec,
    TailItem, Term,
};
pub use diag::{Diagnostic, Severity, Span};
pub use error::{MslError, Result};
pub use parser::{parse_query, parse_rule, parse_spec, parse_spec_spanned, RuleSpans, SpecSpans};
