//! End-to-end tests of the `medmaker` binary against the demo files.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn demo_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../demo")
}

fn base_cmd() -> Command {
    let demo = demo_dir();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_medmaker"));
    cmd.arg("--spec")
        .arg(demo.join("med.msl"))
        .arg("--oem")
        .arg(format!("whois={}", demo.join("whois.oem").display()))
        .arg("--csv")
        .arg(format!("cs={}", demo.join("employee.csv").display()))
        .arg("--csv")
        .arg(format!("cs={}", demo.join("student.csv").display()));
    cmd
}

#[test]
fn one_shot_query_reproduces_figure_2_4() {
    let out = base_cmd()
        .arg("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for frag in [
        "'Joe Chung'",
        "'employee'",
        "'chung@cs'",
        "'professor'",
        "'John Hennessy'",
        ";; 1 object(s)",
    ] {
        assert!(stdout.contains(frag), "missing {frag} in {stdout}");
    }
}

#[test]
fn explain_mode_prints_plan() {
    let out = base_cmd()
        .arg("--explain")
        .arg("--minimal")
        .arg("S :- S:<cs_person {<year 3>}>@med")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Logical datamerge program (2 rules)"),
        "{stdout}"
    );
    assert!(stdout.contains("[query]"), "{stdout}");
    assert!(stdout.contains("=== result objects ==="), "{stdout}");
    assert!(stdout.contains("'Nick Naive'"), "{stdout}");
}

#[test]
fn repl_round_trip() {
    use std::io::Write;
    let mut child = base_cmd()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary starts");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b".sources\nP :- P:<cs_person {}>@med\n.quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("@whois"), "{stdout}");
    assert!(stdout.contains(";; 2 object(s)"), "{stdout}");
}

#[test]
fn check_demo_spec_is_clean() {
    let demo = demo_dir();
    let out = Command::new(env!("CARGO_BIN_EXE_medmaker"))
        .arg("check")
        .arg(demo.join("med.msl"))
        .arg("--oem")
        .arg(format!("whois={}", demo.join("whois.oem").display()))
        .arg("--csv")
        .arg(format!("cs={}", demo.join("employee.csv").display()))
        .arg("--csv")
        .arg(format!("cs={}", demo.join("student.csv").display()))
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
    assert!(stdout.contains("view 'cs_person'"), "{stdout}");
    assert!(stdout.contains("answerable for"), "{stdout}");
}

#[test]
fn check_broken_spec_exits_two_with_json_findings() {
    let dir = std::env::temp_dir().join(format!("medmaker-check-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("bad.msl");
    // `name` holds strings in whois.oem; matching 5 is provably empty.
    std::fs::write(&spec, "<v {<n N>}> :- <person {<name 5> <name N>}>@whois\n").unwrap();
    let demo = demo_dir();
    let out = Command::new(env!("CARGO_BIN_EXE_medmaker"))
        .arg("check")
        .arg(&spec)
        .arg("--json")
        .arg("--oem")
        .arg(format!("whois={}", demo.join("whois.oem").display()))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"E301\""), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_medmaker"))
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_file_reports_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_medmaker"))
        .arg("--spec")
        .arg("/nonexistent/spec.msl")
        .arg("X :- X:<a {}>@m")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn lorel_flag_translates_and_runs() {
    let out = base_cmd()
        .arg("--lorel")
        .arg("select P.name from cs_person P where P.year >= 3")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(";; MSL:"), "{stdout}");
    assert!(stdout.contains("'Nick Naive'"), "{stdout}");
    assert!(stdout.contains(";; 1 object(s)"), "{stdout}");
}
