//! The `medmaker` binary. See [`medmaker_cli`] for the full description.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match medmaker_cli::parse_args(args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if cfg.lint {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        match medmaker_cli::run_lint(&cfg, &mut out) {
            Ok(code) => {
                let _ = out.flush();
                std::process::exit(code);
            }
            Err(msg) => {
                let _ = out.flush();
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
    if cfg.check {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        match medmaker_cli::run_check(&cfg, &mut out) {
            Ok(code) => {
                let _ = out.flush();
                std::process::exit(code);
            }
            Err(msg) => {
                let _ = out.flush();
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
    if cfg.explain_cmd {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        match medmaker_cli::run_explain(&cfg, &mut out) {
            Ok(code) => {
                let _ = out.flush();
                std::process::exit(code);
            }
            Err(msg) => {
                let _ = out.flush();
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    if cfg.serve {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        match medmaker_cli::run_serve(&cfg, &mut out) {
            Ok(code) => {
                let _ = out.flush();
                std::process::exit(code);
            }
            Err(msg) => {
                let _ = out.flush();
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    if cfg.cache_cmd.is_some() {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        match medmaker_cli::run_cache(&cfg, &mut out) {
            Ok(code) => {
                let _ = out.flush();
                std::process::exit(code);
            }
            Err(msg) => {
                let _ = out.flush();
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    if cfg.invalidate {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        match medmaker_cli::run_invalidate(&cfg, &mut out) {
            Ok(code) => {
                let _ = out.flush();
                std::process::exit(code);
            }
            Err(msg) => {
                let _ = out.flush();
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    let med = match medmaker_cli::build_mediator(&cfg) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = match &cfg.query {
        Some(q) => medmaker_cli::run_query_in(&med, q, cfg.explain, cfg.lorel, &mut out),
        None => medmaker_cli::repl_in(&med, cfg.lorel, std::io::stdin().lock(), &mut out),
    };
    if let Err(msg) = result {
        let _ = out.flush();
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
