//! # medmaker-cli — a command-line mediator
//!
//! Load an MSL specification plus OEM / CSV sources, then run MSL queries
//! from the command line or an interactive session:
//!
//! ```text
//! medmaker --name med --spec med.msl \
//!          --oem whois=whois.oem \
//!          --csv cs=employee.csv --csv cs=student.csv \
//!          "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med"
//! ```
//!
//! With no query argument, an interactive session starts: each line is a
//! query; `.explain <q>`, `.spec`, `.sources`, `.help`, `.quit` are
//! commands. Repeating `--csv NAME=file` with the same NAME adds tables to
//! one relational source (one catalog per source name).

#![warn(missing_docs)]

use medmaker::planner::PlannerOptions;
use medmaker::{Mediator, MediatorOptions};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use wrappers::{RelationalWrapper, SemiStructuredWrapper, Wrapper};

/// Parsed command line.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Mediator name (`--name`, default `med`).
    pub name: String,
    /// Path to the MSL specification (`--spec`, required).
    pub spec_path: Option<PathBuf>,
    /// Semi-structured sources: `--oem NAME=FILE`.
    pub oem_sources: Vec<(String, PathBuf)>,
    /// Relational sources: `--csv NAME=FILE` (repeatable per NAME).
    pub csv_sources: Vec<(String, PathBuf)>,
    /// Use the paper's minimal unification presentation (`--minimal`).
    pub minimal: bool,
    /// Disable duplicate elimination (`--no-dedup`).
    pub no_dedup: bool,
    /// Print the logical program + plan instead of running (`--explain`).
    pub explain: bool,
    /// Treat QUERY (and session lines) as LOREL instead of MSL (`--lorel`).
    pub lorel: bool,
    /// One-shot query; absent = interactive session.
    pub query: Option<String>,
    /// Run speclint on the specification instead of querying
    /// (`medmaker lint SPEC`).
    pub lint: bool,
    /// Run the whole-spec dataflow analysis on the specification instead
    /// of querying (`medmaker check SPEC`).
    pub check: bool,
    /// Emit diagnostics as JSON (`--json`, lint/check modes only).
    pub json: bool,
    /// Explain subcommand (`medmaker explain --spec FILE ... QUERY`).
    pub explain_cmd: bool,
    /// EXPLAIN ANALYZE: execute and annotate with observed metrics
    /// (`--analyze`, explain mode only).
    pub analyze: bool,
    /// Write the QueryTrace as JSON to this path (`--trace-json PATH`,
    /// explain mode only; implies `--analyze`).
    pub trace_json: Option<PathBuf>,
    /// Retry each failing source call up to N more times (`--retries N`).
    pub retries: Option<usize>,
    /// Per-source deadline in milliseconds (`--source-deadline-ms MS`).
    pub source_deadline_ms: Option<u64>,
    /// Degrade instead of failing when a source is down (`--partial`).
    pub partial: bool,
    /// Enable the source-answer cache (`--cache`).
    pub cache: bool,
    /// Cache capacity in entries per source (`--cache-capacity N`).
    pub cache_capacity: Option<usize>,
    /// Cache entry time-to-live in milliseconds (`--cache-ttl-ms MS`).
    pub cache_ttl_ms: Option<u64>,
    /// Serve cached answers even while the source is down
    /// (`--cache-stale-ok`).
    pub cache_stale_ok: bool,
    /// Directory of the persistent warm cache tier (`--cache-dir DIR`;
    /// implies `--cache`). Cached answers written here survive restarts.
    pub cache_dir: Option<PathBuf>,
    /// Warm-tier byte budget (`--cache-warm-bytes N`, default 64 MiB);
    /// compaction drops the lowest-value entries past it.
    pub cache_warm_bytes: Option<u64>,
    /// Ablation: evict the hot tier oldest-first instead of cost-aware
    /// (`--cache-fifo`).
    pub cache_fifo: bool,
    /// Offline warm-tier maintenance
    /// (`medmaker cache stats|clear|compact --cache-dir DIR`).
    pub cache_cmd: Option<CacheCmd>,
    /// Invalidate subcommand: push a source delta to a running daemon
    /// (`medmaker invalidate --source NAME [--addr HOST:PORT]`).
    pub invalidate: bool,
    /// Source whose cached answers the delta invalidates (`--source`).
    pub source: Option<String>,
    /// Labels scoping the delta (`--label L`, repeatable;
    /// invalidate mode only).
    pub labels: Vec<String>,
    /// Canonical keys scoping the delta (`--key K`, repeatable;
    /// invalidate mode only).
    pub keys: Vec<String>,
    /// Use the materializing executor instead of streaming batches
    /// (`--materialize`).
    pub materialize: bool,
    /// Cost-model component weights (`--cost-weights rows=1,net=5,...`).
    pub cost_weights: Option<medmaker::cost::CostWeights>,
    /// Rows per streamed batch (`--batch-size N`).
    pub batch_size: Option<usize>,
    /// Serve subcommand: run the resident mediator daemon
    /// (`medmaker serve --spec FILE ...`).
    pub serve: bool,
    /// Bind address for serve mode (`--addr HOST:PORT`,
    /// default `127.0.0.1:7070`; port 0 picks a free port).
    pub addr: Option<String>,
    /// Concurrent query executions in serve mode (`--workers N`).
    pub workers: Option<usize>,
    /// Admission queue length in serve mode (`--queue N`).
    pub queue: Option<usize>,
}

/// The `medmaker cache` maintenance actions (offline: they open the
/// warm-tier directory directly, no daemon involved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCmd {
    /// Print warm-tier statistics as JSON.
    Stats,
    /// Delete every warm segment.
    Clear,
    /// Rewrite live entries in value order, dropping the lowest-value
    /// ones past the byte budget.
    Compact,
}

/// Usage text.
pub const USAGE: &str = "\
usage: medmaker --spec FILE [--name NAME] [--oem NAME=FILE]... [--csv NAME=FILE]...
                [--minimal] [--no-dedup] [--explain]
                [--retries N] [--source-deadline-ms MS] [--partial]
                [--cache] [--cache-capacity N] [--cache-ttl-ms MS]
                [--cache-stale-ok] [--cache-dir DIR] [--cache-warm-bytes N]
                [--cache-fifo] [--materialize] [--batch-size N]
                [--cost-weights K=V,...] [QUERY]
       medmaker lint SPEC [--json] [--name NAME] [--oem NAME=FILE]... [--csv NAME=FILE]...
       medmaker check SPEC [--json] [--name NAME] [--oem NAME=FILE]... [--csv NAME=FILE]...
       medmaker explain --spec FILE [--analyze] [--trace-json PATH] [source/option flags] QUERY
       medmaker serve --spec FILE [--addr HOST:PORT] [--workers N] [--queue N]
                [source/option flags]
       medmaker cache stats|clear|compact --cache-dir DIR [--cache-warm-bytes N]
       medmaker invalidate --source NAME [--label L]... [--key K]...
                [--addr HOST:PORT]

  --spec FILE       MSL mediator specification
  --name NAME       mediator name (default: med)
  --oem NAME=FILE   semi-structured source from an OEM text file
  --csv NAME=FILE   relational source table from a CSV file
                    (header: col:type,...; repeat NAME to add tables)
  --minimal         paper-style minimal unifier enumeration
  --no-dedup        disable MSL duplicate elimination
  --explain         print the expansion + plan for QUERY instead of results
  --lorel           QUERY/session lines are LOREL (select/from/where), not MSL
  --analyze         (explain mode) EXPLAIN ANALYZE: annotate the executed
                    plan with observed rows, estimate drift and timings
  --trace-json PATH (explain mode) write the QueryTrace as JSON to PATH
  --retries N       retry a failing source call up to N more times
                    (exponential backoff; default: 0, fail on first error)
  --source-deadline-ms MS
                    discard any source answer that took longer than MS
                    milliseconds (counts as a source failure)
  --partial         when a source stays down, drop only the rule chains
                    that need it and return the rest (annotated PARTIAL)
                    instead of failing the whole query
  --cache           cache source answers and reuse them across queries
                    (exact-match and containment-aware; default: off)
  --cache-capacity N
                    keep at most N cached answers per source (default: 64)
  --cache-ttl-ms MS expire cached answers after MS milliseconds
  --cache-stale-ok  keep serving cached answers for a source that is
                    currently failing (default: refetch and degrade)
  --cache-dir DIR   persist cached answers to DIR (the warm tier) so
                    they survive restarts; implies --cache
  --cache-warm-bytes N
                    warm-tier byte budget (default: 64 MiB); compaction
                    drops the lowest-value entries past it
  --cache-fifo      evict hot-tier entries oldest-first (the seed's
                    behavior) instead of cost-aware; ablation flag
  --materialize     run the materializing executor (full table per node)
                    instead of streaming bounded batches
  --batch-size N    rows per streamed batch (default: 1024)
  --cost-weights K=V,...
                    reweight the optimizer's cost components; keys are
                    rows, cpu, net, mem (e.g. rows=1,net=5 prices network
                    5x against cardinality; defaults rows=1 cpu=0.01
                    net=1 mem=0.005)
  QUERY             a query; omit for an interactive session

lint mode runs every speclint diagnostic pass over SPEC and exits with
0 (clean), 1 (warnings) or 2 (errors / unreadable spec). Registering
sources (--oem/--csv) additionally checks the rules against their
declared capabilities; --json prints machine-readable diagnostics.

check mode runs lint plus the whole-spec dataflow analysis (specflow):
interprocedural type inference over the view dependency graph against the
registered sources' schema summaries, dead-view liveness, and per-view
answerability matrices derived from the sources' capabilities. It prints
every finding (type-mismatched joins E301, unanswerable views E302,
unknown labels W301, dead views W302, plus all lint codes) followed by
the inferred answerability of each view, and exits 0/1/2 like lint.
--json prints one object with \"diagnostics\" and \"views\" arrays.

serve mode keeps one mediator resident and answers queries concurrently
over TCP — hand-rolled HTTP/1.1 (POST /query with a JSON body,
GET /metrics, GET /healthz) and a newline-delimited line protocol share
the one port (the first line of each connection is sniffed). --addr binds
HOST:PORT (default 127.0.0.1:7070; port 0 picks a free port), --workers
bounds concurrent query executions (default 4), --queue bounds requests
waiting for a worker (default 64); requests beyond workers+queue are shed
with 503/BUSY. SIGINT/SIGTERM shut down gracefully, draining in-flight
queries. Wire formats: DESIGN.md §11; operations: docs/OPERATIONS.md.

cache mode maintains a warm-tier directory offline (no daemon): stats
prints entry/byte/segment counts as JSON, clear deletes every segment,
compact rewrites live entries in value order dropping the lowest-value
ones past the --cache-warm-bytes budget.

invalidate mode POSTs a source delta to a running daemon's /invalidate
endpoint (default --addr 127.0.0.1:7070): unscoped drops every cached
answer for --source; --label/--key scope the drop to answers whose
label footprint or canonical key matches. The daemon's bind-join memo
for the source is purged either way.

explain mode prints the view expansion, the physical datamerge plan and a
traced run of QUERY. With --analyze the run is rendered EXPLAIN
ANALYZE-style: every node annotated with observed rows-in/rows-out next to
the optimizer's estimate (drift), source round-trips and per-node timing.
--trace-json writes the raw QueryTrace as JSON to PATH (implies --analyze).
";

/// Parse command-line arguments (no external crates).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Config, String> {
    let mut cfg = Config {
        name: "med".to_string(),
        ..Default::default()
    };
    let mut it = args.into_iter().peekable();
    if it.peek().map(String::as_str) == Some("lint") {
        it.next();
        cfg.lint = true;
    } else if it.peek().map(String::as_str) == Some("check") {
        it.next();
        cfg.check = true;
    } else if it.peek().map(String::as_str) == Some("explain") {
        it.next();
        cfg.explain_cmd = true;
    } else if it.peek().map(String::as_str) == Some("serve") {
        it.next();
        cfg.serve = true;
    } else if it.peek().map(String::as_str) == Some("cache") {
        it.next();
        cfg.cache_cmd = Some(match it.next().as_deref() {
            Some("stats") => CacheCmd::Stats,
            Some("clear") => CacheCmd::Clear,
            Some("compact") => CacheCmd::Compact,
            Some(other) => {
                return Err(format!(
                    "unknown cache action '{other}' (expected stats, clear or compact)\n{USAGE}"
                ))
            }
            None => {
                return Err(format!(
                    "cache needs an action: stats, clear or compact\n{USAGE}"
                ))
            }
        });
    } else if it.peek().map(String::as_str) == Some("invalidate") {
        it.next();
        cfg.invalidate = true;
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => {
                let v = it.next().ok_or("--spec needs a file argument")?;
                cfg.spec_path = Some(PathBuf::from(v));
            }
            "--name" => {
                cfg.name = it.next().ok_or("--name needs an argument")?;
            }
            "--oem" => {
                let v = it.next().ok_or("--oem needs NAME=FILE")?;
                cfg.oem_sources.push(parse_named(&v, "--oem")?);
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs NAME=FILE")?;
                cfg.csv_sources.push(parse_named(&v, "--csv")?);
            }
            "--minimal" => cfg.minimal = true,
            "--no-dedup" => cfg.no_dedup = true,
            "--retries" => {
                let v = it.next().ok_or("--retries needs a number argument")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--retries expects a number, got '{v}'"))?;
                cfg.retries = Some(n);
            }
            "--source-deadline-ms" => {
                let v = it
                    .next()
                    .ok_or("--source-deadline-ms needs a number argument")?;
                let ms = v
                    .parse::<u64>()
                    .map_err(|_| format!("--source-deadline-ms expects a number, got '{v}'"))?;
                cfg.source_deadline_ms = Some(ms);
            }
            "--partial" => cfg.partial = true,
            "--cache" => cfg.cache = true,
            "--cache-capacity" => {
                let v = it
                    .next()
                    .ok_or("--cache-capacity needs a number argument")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--cache-capacity expects a number, got '{v}'"))?;
                cfg.cache_capacity = Some(n);
            }
            "--cache-ttl-ms" => {
                let v = it.next().ok_or("--cache-ttl-ms needs a number argument")?;
                let ms = v
                    .parse::<u64>()
                    .map_err(|_| format!("--cache-ttl-ms expects a number, got '{v}'"))?;
                cfg.cache_ttl_ms = Some(ms);
            }
            "--cache-stale-ok" => cfg.cache_stale_ok = true,
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a DIR argument")?;
                cfg.cache_dir = Some(PathBuf::from(v));
                // Persistence without caching makes no sense; the flag
                // implies --cache.
                cfg.cache = true;
            }
            "--cache-warm-bytes" => {
                let v = it
                    .next()
                    .ok_or("--cache-warm-bytes needs a number argument")?;
                let n = v
                    .parse::<u64>()
                    .map_err(|_| format!("--cache-warm-bytes expects a number, got '{v}'"))?;
                if n == 0 {
                    return Err("--cache-warm-bytes must be at least 1".to_string());
                }
                cfg.cache_warm_bytes = Some(n);
            }
            "--cache-fifo" => cfg.cache_fifo = true,
            "--materialize" => cfg.materialize = true,
            "--cost-weights" => {
                let v = it
                    .next()
                    .ok_or("--cost-weights needs a key=value,... argument")?;
                let w = medmaker::cost::CostWeights::parse(&v)
                    .map_err(|e| format!("--cost-weights: {e}"))?;
                cfg.cost_weights = Some(w);
            }
            "--batch-size" => {
                let v = it.next().ok_or("--batch-size needs a number argument")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--batch-size expects a number, got '{v}'"))?;
                if n == 0 {
                    return Err("--batch-size must be at least 1".to_string());
                }
                cfg.batch_size = Some(n);
            }
            "--addr" if cfg.serve || cfg.invalidate => {
                cfg.addr = Some(it.next().ok_or("--addr needs a HOST:PORT argument")?);
            }
            "--source" if cfg.invalidate => {
                cfg.source = Some(it.next().ok_or("--source needs a NAME argument")?);
            }
            "--label" if cfg.invalidate => {
                cfg.labels
                    .push(it.next().ok_or("--label needs a LABEL argument")?);
            }
            "--key" if cfg.invalidate => {
                cfg.keys
                    .push(it.next().ok_or("--key needs a KEY argument")?);
            }
            "--workers" if cfg.serve => {
                let v = it.next().ok_or("--workers needs a number argument")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--workers expects a number, got '{v}'"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                cfg.workers = Some(n);
            }
            "--queue" if cfg.serve => {
                let v = it.next().ok_or("--queue needs a number argument")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("--queue expects a number, got '{v}'"))?;
                cfg.queue = Some(n);
            }
            "--explain" => cfg.explain = true,
            "--lorel" => cfg.lorel = true,
            "--json" if cfg.lint || cfg.check => cfg.json = true,
            "--analyze" if cfg.explain_cmd => cfg.analyze = true,
            "--trace-json" if cfg.explain_cmd => {
                let v = it.next().ok_or("--trace-json needs a PATH argument")?;
                cfg.trace_json = Some(PathBuf::from(v));
                cfg.analyze = true;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            q if !q.starts_with("--") => {
                // In lint/check mode the positional argument is the spec
                // file.
                if cfg.lint || cfg.check {
                    if cfg.spec_path.is_some() {
                        return Err("more than one spec file given".to_string());
                    }
                    cfg.spec_path = Some(PathBuf::from(q));
                    continue;
                }
                if cfg.query.is_some() {
                    return Err("more than one query given".to_string());
                }
                cfg.query = Some(q.to_string());
            }
            other => return Err(format!("unknown option '{other}'\n{USAGE}")),
        }
    }
    if cfg.cache_cmd.is_some() || cfg.invalidate {
        // Offline/remote maintenance: no spec, no query.
        if cfg.query.is_some() {
            let cmd = if cfg.invalidate {
                "invalidate"
            } else {
                "cache"
            };
            return Err(format!("{cmd} takes no QUERY argument\n{USAGE}"));
        }
        if cfg.cache_cmd.is_some() && cfg.cache_dir.is_none() {
            return Err(format!("cache needs --cache-dir DIR\n{USAGE}"));
        }
        if cfg.invalidate && cfg.source.is_none() {
            return Err(format!("invalidate needs --source NAME\n{USAGE}"));
        }
        return Ok(cfg);
    }
    if cfg.spec_path.is_none() {
        let what = if cfg.lint {
            "lint needs a SPEC file"
        } else if cfg.check {
            "check needs a SPEC file"
        } else {
            "--spec is required"
        };
        return Err(format!("{what}\n{USAGE}"));
    }
    if cfg.explain_cmd && cfg.query.is_none() {
        return Err(format!("explain needs a QUERY argument\n{USAGE}"));
    }
    if cfg.serve && cfg.query.is_some() {
        return Err(format!(
            "serve takes no QUERY argument (clients send queries over TCP)\n{USAGE}"
        ));
    }
    Ok(cfg)
}

fn parse_named(v: &str, flag: &str) -> Result<(String, PathBuf), String> {
    let (name, file) = v
        .split_once('=')
        .ok_or_else(|| format!("{flag} expects NAME=FILE, got '{v}'"))?;
    if name.is_empty() || file.is_empty() {
        return Err(format!("{flag} expects NAME=FILE, got '{v}'"));
    }
    Ok((name.to_string(), PathBuf::from(file)))
}

/// Load the `--oem` / `--csv` sources named on the command line.
pub fn load_sources(cfg: &Config) -> Result<Vec<Arc<dyn Wrapper>>, String> {
    let mut sources: Vec<Arc<dyn Wrapper>> = Vec::new();
    for (name, file) in &cfg.oem_sources {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let store =
            oem::parser::parse_store(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        sources.push(Arc::new(SemiStructuredWrapper::new(name, store)));
    }

    // Group CSV files into one catalog per source name; the table name is
    // the file stem.
    let mut catalogs: BTreeMap<String, minidb::Catalog> = BTreeMap::new();
    for (name, file) in &cfg.csv_sources {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let table_name = file
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("bad csv file name {}", file.display()))?;
        let table =
            minidb::load_csv(table_name, &text).map_err(|e| format!("{}: {e}", file.display()))?;
        catalogs
            .entry(name.clone())
            .or_default()
            .add_table(table)
            .map_err(|e| format!("{}: {e}", file.display()))?;
    }
    for (name, catalog) in catalogs {
        sources.push(Arc::new(RelationalWrapper::new(&name, catalog)));
    }
    Ok(sources)
}

/// Load sources and build the mediator.
pub fn build_mediator(cfg: &Config) -> Result<Mediator, String> {
    let spec_path = cfg.spec_path.as_ref().expect("validated by parse_args");
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let sources = load_sources(cfg)?;

    let med = Mediator::new(
        &cfg.name,
        &spec_text,
        sources,
        medmaker::externals::standard_registry(),
    )
    .map_err(|e| e.to_string())?;
    let fault = medmaker::FaultOptions {
        retry: match cfg.retries {
            Some(n) => medmaker::RetryPolicy::retries(n),
            None => Default::default(),
        },
        source_deadline_ms: cfg.source_deadline_ms,
        on_source_failure: if cfg.partial {
            medmaker::OnSourceFailure::Partial
        } else {
            medmaker::OnSourceFailure::Fail
        },
        ..Default::default()
    };
    let cache = medmaker::CacheOptions {
        enabled: cfg.cache,
        capacity: cfg.cache_capacity.unwrap_or(64),
        ttl_ms: cfg.cache_ttl_ms,
        stale_ok: cfg.cache_stale_ok,
        cache_dir: cfg.cache_dir.clone(),
        warm_bytes: cfg
            .cache_warm_bytes
            .unwrap_or(medmaker::cache::DEFAULT_WARM_BYTES),
        fifo: cfg.cache_fifo,
        ..Default::default()
    };
    let defaults = MediatorOptions::default();
    Ok(med.with_options(MediatorOptions {
        planner: PlannerOptions {
            dedup: !cfg.no_dedup,
            cost_weights: cfg.cost_weights.unwrap_or_default(),
            ..Default::default()
        },
        unify_mode: if cfg.minimal {
            engine::unify::UnifyMode::Minimal
        } else {
            engine::unify::UnifyMode::Exhaustive
        },
        fault,
        cache,
        streaming: !cfg.materialize && defaults.streaming,
        batch_size: cfg.batch_size.unwrap_or(defaults.batch_size),
        ..defaults
    }))
}

/// Run `medmaker lint SPEC`: print every speclint diagnostic (human
/// renderings, or a JSON array with `--json`) and return the process exit
/// code — 0 clean, 1 warnings only, 2 errors. A specification that cannot
/// be read or parsed is reported and also exits 2.
pub fn run_lint(cfg: &Config, out: &mut impl Write) -> Result<i32, String> {
    let spec_path = cfg.spec_path.as_ref().expect("validated by parse_args");
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let sources = load_sources(cfg)?;
    let caps: BTreeMap<oem::Symbol, wrappers::Capabilities> = sources
        .iter()
        .map(|w| (w.name(), w.capabilities().clone()))
        .collect();
    let diags = match medmaker::lint::lint_text(&spec_text, &cfg.name, &caps) {
        Ok((_, diags)) => diags,
        Err(e) => {
            // A specification that does not lex/parse cannot be linted.
            if cfg.json {
                let v = serde::Value::Object(vec![(
                    "error".to_string(),
                    serde::Value::Str(e.to_string()),
                )]);
                let text = serde_json::to_string(&v).map_err(|e| e.to_string())?;
                writeln!(out, "{text}").map_err(|e| e.to_string())?;
            } else {
                writeln!(out, "{e}").map_err(|e| e.to_string())?;
            }
            return Ok(2);
        }
    };
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    if cfg.json {
        let v = serde::Value::Array(diags.iter().map(|d| diag_json(d, &spec_text)).collect());
        let text = serde_json::to_string_pretty(&v).map_err(|e| e.to_string())?;
        writeln!(out, "{text}").map_err(|e| e.to_string())?;
    } else {
        for d in &diags {
            writeln!(out, "{}", d.render(&spec_text)).map_err(|e| e.to_string())?;
        }
        writeln!(
            out,
            "{}: {errors} error(s), {warnings} warning(s)",
            spec_path.display()
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(if errors > 0 {
        2
    } else if warnings > 0 {
        1
    } else {
        0
    })
}

/// One diagnostic as a JSON object (`--json` output element).
fn diag_json(d: &msl::Diagnostic, source: &str) -> serde::Value {
    let (line, col) = msl::diag::line_col(source, d.span.start);
    serde::Value::Object(vec![
        ("code".to_string(), serde::Value::Str(d.code.to_string())),
        (
            "severity".to_string(),
            serde::Value::Str(if d.is_error() { "error" } else { "warning" }.to_string()),
        ),
        ("message".to_string(), serde::Value::Str(d.message.clone())),
        (
            "help".to_string(),
            match &d.help {
                Some(h) => serde::Value::Str(h.clone()),
                None => serde::Value::Null,
            },
        ),
        (
            "span".to_string(),
            serde::Value::Object(vec![
                ("start".to_string(), serde::Value::Int(d.span.start as i64)),
                ("end".to_string(), serde::Value::Int(d.span.end as i64)),
            ]),
        ),
        ("line".to_string(), serde::Value::Int(line as i64)),
        ("col".to_string(), serde::Value::Int(col as i64)),
    ])
}

/// Run `medmaker check SPEC`: lint plus the whole-spec dataflow analysis
/// ([`medmaker::analysis`]). Prints every diagnostic and the per-view
/// answerability summary (or one JSON object with `--json`), and returns
/// the process exit code — 0 clean, 1 warnings only, 2 errors. A
/// specification that cannot be read or parsed is reported and exits 2.
pub fn run_check(cfg: &Config, out: &mut impl Write) -> Result<i32, String> {
    let spec_path = cfg.spec_path.as_ref().expect("validated by parse_args");
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let sources = load_sources(cfg)?;
    let infos: BTreeMap<oem::Symbol, medmaker::SourceInfo> = sources
        .iter()
        .map(|w| (w.name(), medmaker::SourceInfo::of_wrapper(w.as_ref())))
        .collect();
    let (_, diags, analysis) = match medmaker::analysis::check_text(&spec_text, &cfg.name, &infos) {
        Ok(r) => r,
        Err(e) => {
            // A specification that does not lex/parse cannot be analyzed.
            if cfg.json {
                let v = serde::Value::Object(vec![(
                    "error".to_string(),
                    serde::Value::Str(e.to_string()),
                )]);
                let text = serde_json::to_string(&v).map_err(|e| e.to_string())?;
                writeln!(out, "{text}").map_err(|e| e.to_string())?;
            } else {
                writeln!(out, "{e}").map_err(|e| e.to_string())?;
            }
            return Ok(2);
        }
    };
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    // One row per view, sorted by name for stable output (Symbol's own
    // order is interning order).
    let mut views: Vec<(String, &medmaker::AnswerMatrix)> = analysis
        .matrices
        .iter()
        .map(|(v, m)| (v.as_str(), m))
        .collect();
    views.sort_by(|a, b| a.0.cmp(&b.0));
    if cfg.json {
        let view_values = views
            .iter()
            .map(|(name, m)| {
                serde::Value::Object(vec![
                    ("view".to_string(), serde::Value::Str(name.clone())),
                    (
                        "attributes".to_string(),
                        serde::Value::Array(
                            m.attributes()
                                .iter()
                                .map(|a| serde::Value::Str(a.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "answerable".to_string(),
                        serde::Value::Array(
                            m.feasible_adornments()
                                .into_iter()
                                .map(serde::Value::Str)
                                .collect(),
                        ),
                    ),
                    (
                        "dead".to_string(),
                        serde::Value::Bool(analysis.dead_views.iter().any(|d| d.as_str() == *name)),
                    ),
                ])
            })
            .collect();
        let v = serde::Value::Object(vec![
            (
                "diagnostics".to_string(),
                serde::Value::Array(diags.iter().map(|d| diag_json(d, &spec_text)).collect()),
            ),
            ("views".to_string(), serde::Value::Array(view_values)),
        ]);
        let text = serde_json::to_string_pretty(&v).map_err(|e| e.to_string())?;
        writeln!(out, "{text}").map_err(|e| e.to_string())?;
    } else {
        for d in &diags {
            writeln!(out, "{}", d.render(&spec_text)).map_err(|e| e.to_string())?;
        }
        for (name, m) in &views {
            let attrs: Vec<String> = m.attributes().iter().map(|a| a.as_str()).collect();
            let dead = analysis.dead_views.iter().any(|d| d.as_str() == *name);
            let status = if dead {
                "dead (never derives an object)".to_string()
            } else if m.is_empty() {
                "unanswerable".to_string()
            } else if m.attributes().is_empty() {
                "answerable".to_string()
            } else {
                format!("answerable for {}", m.feasible_adornments().join(", "))
            };
            writeln!(out, "view '{name}' ({}): {status}", attrs.join(", "))
                .map_err(|e| e.to_string())?;
        }
        writeln!(
            out,
            "{}: {errors} error(s), {warnings} warning(s)",
            spec_path.display()
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(if errors > 0 {
        2
    } else if warnings > 0 {
        1
    } else {
        0
    })
}

/// Run `medmaker explain ... QUERY`: print the expansion + plan + traced
/// run, or — with `--analyze` — the EXPLAIN ANALYZE report (observed
/// cardinalities, estimate drift, per-node timing). `--trace-json PATH`
/// additionally writes the raw QueryTrace as JSON. Returns the process
/// exit code (0 on success).
pub fn run_explain(cfg: &Config, out: &mut impl Write) -> Result<i32, String> {
    use serde::Serialize;
    let med = build_mediator(cfg)?;
    let query = cfg.query.as_ref().expect("validated by parse_args");
    let query = if cfg.lorel {
        let msl_text = lorel_to_msl_text(&med, query)?;
        writeln!(out, ";; MSL: {msl_text}").map_err(|e| e.to_string())?;
        msl_text
    } else {
        query.clone()
    };
    if !cfg.analyze {
        let text = med.explain_text(&query, true).map_err(|e| e.to_string())?;
        write!(out, "{text}").map_err(|e| e.to_string())?;
        return Ok(0);
    }
    let (report, trace) = med.explain_analyze(&query).map_err(|e| e.to_string())?;
    write!(out, "{report}").map_err(|e| e.to_string())?;
    if let Some(path) = &cfg.trace_json {
        let json = serde_json::to_string_pretty(&trace.to_value()).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        writeln!(out, ";; trace written to {}", path.display()).map_err(|e| e.to_string())?;
    }
    Ok(0)
}

/// Run `medmaker serve`: build the mediator, keep it resident, and answer
/// queries over TCP until SIGINT/SIGTERM (wire formats in DESIGN.md §11,
/// operations in docs/OPERATIONS.md). Prints the bound address on startup
/// so scripts binding port 0 can discover the port. Returns the process
/// exit code.
pub fn run_serve(cfg: &Config, out: &mut impl Write) -> Result<i32, String> {
    let med = build_mediator(cfg)?;
    let options = medmaker_server::ServerOptions {
        addr: cfg
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        workers: cfg.workers.unwrap_or(4),
        queue: cfg.queue.unwrap_or(64),
        ..Default::default()
    };
    let handle = medmaker_server::Server::start(Arc::new(med), options)?;
    writeln!(out, "medmaker serve: listening on {}", handle.addr()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    medmaker_server::signal::install();
    while !medmaker_server::signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    writeln!(out, "medmaker serve: shutting down").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    handle.shutdown();
    Ok(0)
}

/// Run `medmaker cache stats|clear|compact --cache-dir DIR`: open the
/// warm tier offline (no daemon) and print one JSON object describing
/// what was found, freed or compacted. Returns the process exit code
/// (0 on success).
pub fn run_cache(cfg: &Config, out: &mut impl Write) -> Result<i32, String> {
    let dir = cfg.cache_dir.as_ref().expect("validated by parse_args");
    let cmd = cfg.cache_cmd.expect("validated by parse_args");
    let mut tier = medmaker::WarmTier::open(dir)
        .map_err(|e| format!("cannot open cache dir {}: {e}", dir.display()))?;
    let int = |n: u64| serde::Value::Int(n as i64);
    let doc = match cmd {
        CacheCmd::Stats => {
            let s = tier.stats();
            serde::Value::Object(vec![
                ("entries".to_string(), int(s.entries as u64)),
                ("live_bytes".to_string(), int(s.live_bytes)),
                ("disk_bytes".to_string(), int(s.disk_bytes)),
                ("segments".to_string(), int(s.segments as u64)),
                (
                    "corrupt_segments".to_string(),
                    int(s.corrupt_segments as u64),
                ),
                ("torn_segments".to_string(), int(s.torn_segments as u64)),
            ])
        }
        CacheCmd::Clear => {
            let before = tier.stats();
            tier.clear()
                .map_err(|e| format!("cannot clear {}: {e}", dir.display()))?;
            serde::Value::Object(vec![
                ("cleared_entries".to_string(), int(before.entries as u64)),
                ("freed_bytes".to_string(), int(before.disk_bytes)),
            ])
        }
        CacheCmd::Compact => {
            let budget = cfg
                .cache_warm_bytes
                .unwrap_or(medmaker::cache::DEFAULT_WARM_BYTES);
            let c = tier
                .compact(budget)
                .map_err(|e| format!("cannot compact {}: {e}", dir.display()))?;
            serde::Value::Object(vec![
                ("kept".to_string(), int(c.kept as u64)),
                ("dropped".to_string(), int(c.dropped as u64)),
                ("bytes_before".to_string(), int(c.bytes_before)),
                ("bytes_after".to_string(), int(c.bytes_after)),
            ])
        }
    };
    let text = serde_json::to_string(&doc).map_err(|e| e.to_string())?;
    writeln!(out, "{text}").map_err(|e| e.to_string())?;
    Ok(0)
}

/// Run `medmaker invalidate --source NAME [--label L]... [--key K]...
/// [--addr HOST:PORT]`: POST a source delta to a running daemon's
/// `/invalidate` endpoint and print its reply body. Returns the process
/// exit code — 0 when the daemon answered 200, 1 otherwise.
pub fn run_invalidate(cfg: &Config, out: &mut impl Write) -> Result<i32, String> {
    use std::io::Read;
    let addr = cfg
        .addr
        .clone()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let source = cfg.source.as_ref().expect("validated by parse_args");
    let strs = |xs: &[String]| {
        serde::Value::Array(xs.iter().map(|x| serde::Value::Str(x.clone())).collect())
    };
    let mut fields = vec![("source".to_string(), serde::Value::Str(source.clone()))];
    if !cfg.labels.is_empty() {
        fields.push(("labels".to_string(), strs(&cfg.labels)));
    }
    if !cfg.keys.is_empty() {
        fields.push(("keys".to_string(), strs(&cfg.keys)));
    }
    let body = serde_json::to_string(&serde::Value::Object(fields)).map_err(|e| e.to_string())?;
    let mut stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let request = format!(
        "POST /invalidate HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read reply from {addr}: {e}"))?;
    let status_ok = response.starts_with("HTTP/1.1 200");
    let reply_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(&response);
    writeln!(out, "{}", reply_body.trim_end()).map_err(|e| e.to_string())?;
    Ok(if status_ok { 0 } else { 1 })
}

/// Translate a LOREL query to MSL text for a mediator.
pub fn lorel_to_msl_text(med: &Mediator, query: &str) -> Result<String, String> {
    let rule = lorel::to_msl(query, &med.spec().name.as_str()).map_err(|e| e.to_string())?;
    Ok(msl::printer::rule(&rule))
}

/// Run one query (or explain it), writing results to `out`. `lorel`
/// translates the query from LOREL first.
pub fn run_query_in(
    med: &Mediator,
    query: &str,
    explain: bool,
    lorel: bool,
    out: &mut impl Write,
) -> Result<(), String> {
    if lorel {
        let msl_text = lorel_to_msl_text(med, query)?;
        writeln!(out, ";; MSL: {msl_text}").map_err(|e| e.to_string())?;
        return run_query(med, &msl_text, explain, out);
    }
    run_query(med, query, explain, out)
}

/// Run one query (or explain it), writing results to `out`.
pub fn run_query(
    med: &Mediator,
    query: &str,
    explain: bool,
    out: &mut impl Write,
) -> Result<(), String> {
    if explain {
        let text = med.explain_text(query, true).map_err(|e| e.to_string())?;
        write!(out, "{text}").map_err(|e| e.to_string())?;
        return Ok(());
    }
    let rule = msl::parse_query(query).map_err(|e| e.to_string())?;
    let outcome = med.query_rule(&rule).map_err(|e| e.to_string())?;
    let results = &outcome.results;
    write!(out, "{}", oem::printer::print_store(results)).map_err(|e| e.to_string())?;
    writeln!(out, ";; {} object(s)", results.top_level().len()).map_err(|e| e.to_string())?;
    let completeness = &outcome.trace.completeness;
    if !completeness.is_complete() {
        let failed: Vec<String> = completeness
            .sources_failed
            .iter()
            .map(|(s, why)| format!("{s} ({why})"))
            .collect();
        writeln!(
            out,
            ";; PARTIAL: failed sources: {}; {} chain(s) dropped",
            failed.join(", "),
            completeness.skipped_chains.len()
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The interactive session loop.
pub fn repl(med: &Mediator, input: impl BufRead, out: &mut impl Write) -> Result<(), String> {
    repl_in(med, false, input, out)
}

/// The interactive session loop; `lorel` switches the default query
/// language of plain lines.
pub fn repl_in(
    med: &Mediator,
    lorel: bool,
    input: impl BufRead,
    out: &mut impl Write,
) -> Result<(), String> {
    writeln!(
        out,
        "medmaker interactive session — mediator '{}'. Type .help for commands.",
        med.spec().name
    )
    .map_err(|e| e.to_string())?;
    for line in input.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".help" => {
                writeln!(
                    out,
                    ".spec            print the mediator specification\n\
                     .sources         list sources\n\
                     .explain QUERY   show expansion + plan + traced run\n\
                     .lorel QUERY     run a LOREL (select/from/where) query\n\
                     .quit            leave\n\
                     anything else    run as a query"
                )
                .map_err(|e| e.to_string())?;
            }
            ".spec" => {
                writeln!(out, "{}", med.spec().to_text()).map_err(|e| e.to_string())?;
            }
            ".sources" => {
                for s in med.spec().sources() {
                    writeln!(out, "  @{s}").map_err(|e| e.to_string())?;
                }
            }
            _ if line.starts_with(".explain") => {
                let q = line.trim_start_matches(".explain").trim();
                if let Err(e) = run_query_in(med, q, true, lorel, out) {
                    writeln!(out, "error: {e}").map_err(|e| e.to_string())?;
                }
            }
            _ if line.starts_with(".lorel") => {
                let q = line.trim_start_matches(".lorel").trim();
                if let Err(e) = run_query_in(med, q, false, true, out) {
                    writeln!(out, "error: {e}").map_err(|e| e.to_string())?;
                }
            }
            query => {
                if let Err(e) = run_query_in(med, query, false, lorel, out) {
                    writeln!(out, "error: {e}").map_err(|e| e.to_string())?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_full_command_line() {
        let cfg = parse_args(argv(
            "--spec med.msl --name m --oem whois=w.oem --csv cs=emp.csv --csv cs=stu.csv \
             --minimal --no-dedup --explain QUERY",
        ))
        .unwrap();
        assert_eq!(cfg.name, "m");
        assert_eq!(cfg.spec_path.as_ref().unwrap().to_str(), Some("med.msl"));
        assert_eq!(cfg.oem_sources.len(), 1);
        assert_eq!(cfg.csv_sources.len(), 2);
        assert!(cfg.minimal && cfg.no_dedup && cfg.explain);
        assert_eq!(cfg.query.as_deref(), Some("QUERY"));
    }

    #[test]
    fn parse_fault_tolerance_flags() {
        let cfg = parse_args(argv(
            "--spec med.msl --retries 3 --source-deadline-ms 250 --partial QUERY",
        ))
        .unwrap();
        assert_eq!(cfg.retries, Some(3));
        assert_eq!(cfg.source_deadline_ms, Some(250));
        assert!(cfg.partial);
        // Defaults: fail-fast, no retry, no deadline.
        let cfg = parse_args(argv("--spec med.msl QUERY")).unwrap();
        assert_eq!(cfg.retries, None);
        assert_eq!(cfg.source_deadline_ms, None);
        assert!(!cfg.partial);
        // Both numeric flags validate their argument.
        assert!(parse_args(argv("--spec s.msl --retries many")).is_err());
        assert!(parse_args(argv("--spec s.msl --retries")).is_err());
        assert!(parse_args(argv("--spec s.msl --source-deadline-ms soon")).is_err());
        assert!(parse_args(argv("--spec s.msl --source-deadline-ms")).is_err());
    }

    #[test]
    fn parse_cache_flags() {
        let cfg = parse_args(argv(
            "--spec med.msl --cache --cache-capacity 8 --cache-ttl-ms 5000 --cache-stale-ok QUERY",
        ))
        .unwrap();
        assert!(cfg.cache);
        assert_eq!(cfg.cache_capacity, Some(8));
        assert_eq!(cfg.cache_ttl_ms, Some(5000));
        assert!(cfg.cache_stale_ok);
        // Default: cache off — every query pays its round-trips.
        let cfg = parse_args(argv("--spec med.msl QUERY")).unwrap();
        assert!(!cfg.cache);
        assert_eq!(cfg.cache_capacity, None);
        assert_eq!(cfg.cache_ttl_ms, None);
        assert!(!cfg.cache_stale_ok);
        // Numeric flags validate their argument.
        assert!(parse_args(argv("--spec s.msl --cache-capacity lots")).is_err());
        assert!(parse_args(argv("--spec s.msl --cache-capacity")).is_err());
        assert!(parse_args(argv("--spec s.msl --cache-ttl-ms forever")).is_err());
        assert!(parse_args(argv("--spec s.msl --cache-ttl-ms")).is_err());
    }

    #[test]
    fn parse_cost_weights_flag() {
        let cfg = parse_args(argv(
            "--spec med.msl --cost-weights rows=1,net=5,cpu=0.02 QUERY",
        ))
        .unwrap();
        let w = cfg.cost_weights.expect("weights parsed");
        assert_eq!(w.rows, 1.0);
        assert_eq!(w.net, 5.0);
        assert_eq!(w.cpu, 0.02);
        // Unmentioned keys keep their defaults.
        assert_eq!(w.mem, medmaker::cost::CostWeights::default().mem);
        // Default: no override.
        let cfg = parse_args(argv("--spec med.msl QUERY")).unwrap();
        assert!(cfg.cost_weights.is_none());
        // Malformed specs are rejected with the flag named.
        let err = parse_args(argv("--spec s.msl --cost-weights rows=fast")).unwrap_err();
        assert!(err.contains("--cost-weights"), "{err}");
        assert!(parse_args(argv("--spec s.msl --cost-weights turbo=9")).is_err());
        assert!(parse_args(argv("--spec s.msl --cost-weights")).is_err());
    }

    #[test]
    fn parse_streaming_flags() {
        let cfg = parse_args(argv("--spec med.msl --materialize --batch-size 128 QUERY")).unwrap();
        assert!(cfg.materialize);
        assert_eq!(cfg.batch_size, Some(128));
        // Defaults: streaming executor, default batch size.
        let cfg = parse_args(argv("--spec med.msl QUERY")).unwrap();
        assert!(!cfg.materialize);
        assert_eq!(cfg.batch_size, None);
        // The batch size validates its argument and rejects zero.
        assert!(parse_args(argv("--spec s.msl --batch-size tiny")).is_err());
        assert!(parse_args(argv("--spec s.msl --batch-size 0")).is_err());
        assert!(parse_args(argv("--spec s.msl --batch-size")).is_err());
    }

    #[test]
    fn parse_serve_flags() {
        let cfg = parse_args(argv(
            "serve --spec med.msl --addr 0.0.0.0:7070 --workers 8 --queue 16 --cache --partial",
        ))
        .unwrap();
        assert!(cfg.serve);
        assert_eq!(cfg.addr.as_deref(), Some("0.0.0.0:7070"));
        assert_eq!(cfg.workers, Some(8));
        assert_eq!(cfg.queue, Some(16));
        // Standing mediator flags still apply to the resident mediator.
        assert!(cfg.cache && cfg.partial);
        // Defaults: all None (run_serve fills in 127.0.0.1:7070, 4, 64).
        let cfg = parse_args(argv("serve --spec med.msl")).unwrap();
        assert!(cfg.serve);
        assert!(cfg.addr.is_none() && cfg.workers.is_none() && cfg.queue.is_none());
        // serve takes no positional query; serve-only flags need serve.
        assert!(parse_args(argv("serve --spec med.msl QUERY")).is_err());
        assert!(parse_args(argv("--spec med.msl --addr 1.2.3.4:1 QUERY")).is_err());
        assert!(parse_args(argv("serve --spec s.msl --workers 0")).is_err());
        assert!(parse_args(argv("serve --spec s.msl --workers many")).is_err());
        assert!(parse_args(argv("serve --spec s.msl --queue")).is_err());
    }

    #[test]
    fn parse_tiered_cache_flags() {
        let cfg = parse_args(argv(
            "--spec med.msl --cache-dir /tmp/warm --cache-warm-bytes 1024 --cache-fifo QUERY",
        ))
        .unwrap();
        // --cache-dir implies --cache.
        assert!(cfg.cache);
        assert_eq!(cfg.cache_dir.as_ref().unwrap().to_str(), Some("/tmp/warm"));
        assert_eq!(cfg.cache_warm_bytes, Some(1024));
        assert!(cfg.cache_fifo);
        // Defaults: memory-only, cost-aware.
        let cfg = parse_args(argv("--spec med.msl --cache QUERY")).unwrap();
        assert!(cfg.cache_dir.is_none());
        assert_eq!(cfg.cache_warm_bytes, None);
        assert!(!cfg.cache_fifo);
        // The byte budget validates its argument and rejects zero.
        assert!(parse_args(argv("--spec s.msl --cache-warm-bytes big")).is_err());
        assert!(parse_args(argv("--spec s.msl --cache-warm-bytes 0")).is_err());
        assert!(parse_args(argv("--spec s.msl --cache-dir")).is_err());
    }

    #[test]
    fn cache_subcommand_parsed() {
        let cfg = parse_args(argv("cache stats --cache-dir /tmp/warm")).unwrap();
        assert_eq!(cfg.cache_cmd, Some(CacheCmd::Stats));
        assert_eq!(cfg.cache_dir.as_ref().unwrap().to_str(), Some("/tmp/warm"));
        let cfg = parse_args(argv("cache clear --cache-dir d")).unwrap();
        assert_eq!(cfg.cache_cmd, Some(CacheCmd::Clear));
        let cfg = parse_args(argv("cache compact --cache-dir d --cache-warm-bytes 4096")).unwrap();
        assert_eq!(cfg.cache_cmd, Some(CacheCmd::Compact));
        assert_eq!(cfg.cache_warm_bytes, Some(4096));
        // The action and the directory are both required; no extras.
        assert!(parse_args(argv("cache")).is_err());
        assert!(parse_args(argv("cache defrag --cache-dir d")).is_err());
        assert!(parse_args(argv("cache stats")).is_err());
        assert!(parse_args(argv("cache stats --cache-dir d QUERY")).is_err());
    }

    #[test]
    fn invalidate_subcommand_parsed() {
        let cfg = parse_args(argv(
            "invalidate --addr 127.0.0.1:9 --source whois --label head --label dept --key k1",
        ))
        .unwrap();
        assert!(cfg.invalidate);
        assert_eq!(cfg.addr.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(cfg.source.as_deref(), Some("whois"));
        assert_eq!(cfg.labels, vec!["head".to_string(), "dept".to_string()]);
        assert_eq!(cfg.keys, vec!["k1".to_string()]);
        // --source is required; no query; scope flags need invalidate mode.
        assert!(parse_args(argv("invalidate --addr 127.0.0.1:9")).is_err());
        assert!(parse_args(argv("invalidate --source s QUERY")).is_err());
        assert!(parse_args(argv("--spec s.msl --label x QUERY")).is_err());
        assert!(parse_args(argv("--spec s.msl --key x QUERY")).is_err());
        assert!(parse_args(argv("invalidate --source")).is_err());
    }

    #[test]
    fn cache_subcommand_end_to_end_over_a_real_warm_tier() {
        let dir = std::env::temp_dir().join(format!("medmaker-cli-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let warm = dir.join("warm");
        let spec = dir.join("spec.msl");
        std::fs::write(&spec, "<v {<n N>}> :- <person {<name N>}>@src\n").unwrap();
        let oem_file = dir.join("src.oem");
        std::fs::write(&oem_file, "<&p1, person, set, {<&n1, name, 'Ann'>}>\n").unwrap();
        // A query through a --cache-dir mediator populates the warm tier.
        let cfg = parse_args(argv(&format!(
            "--spec {} --name m --oem src={} --cache-dir {}",
            spec.display(),
            oem_file.display(),
            warm.display()
        )))
        .unwrap();
        let med = build_mediator(&cfg).unwrap();
        let mut out = Vec::new();
        run_query(&med, "X :- X:<v {}>@m", false, &mut out).unwrap();
        drop(med);
        let stats = |out: &[u8]| -> serde::Value {
            serde_json::from_str(&String::from_utf8_lossy(out)).unwrap()
        };
        // stats sees the persisted entry.
        let cfg = parse_args(argv(&format!("cache stats --cache-dir {}", warm.display()))).unwrap();
        let mut out = Vec::new();
        assert_eq!(run_cache(&cfg, &mut out).unwrap(), 0);
        let v = stats(&out);
        assert_eq!(v.get("entries").unwrap().as_i64(), Some(1));
        assert!(v.get("disk_bytes").unwrap().as_i64().unwrap() > 0);
        // compact keeps it (budget is generous).
        let cfg = parse_args(argv(&format!(
            "cache compact --cache-dir {} --cache-warm-bytes 1048576",
            warm.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        assert_eq!(run_cache(&cfg, &mut out).unwrap(), 0);
        let v = stats(&out);
        assert_eq!(v.get("kept").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("dropped").unwrap().as_i64(), Some(0));
        // clear empties the tier.
        let cfg = parse_args(argv(&format!("cache clear --cache-dir {}", warm.display()))).unwrap();
        let mut out = Vec::new();
        assert_eq!(run_cache(&cfg, &mut out).unwrap(), 0);
        let v = stats(&out);
        assert_eq!(v.get("cleared_entries").unwrap().as_i64(), Some(1));
        let cfg = parse_args(argv(&format!("cache stats --cache-dir {}", warm.display()))).unwrap();
        let mut out = Vec::new();
        assert_eq!(run_cache(&cfg, &mut out).unwrap(), 0);
        assert_eq!(stats(&out).get("entries").unwrap().as_i64(), Some(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalidate_subcommand_talks_to_a_live_daemon() {
        use std::sync::Arc;
        use wrappers::scenario::{cs_wrapper, whois_wrapper, MS1};
        let med = Mediator::new(
            "med",
            MS1,
            vec![Arc::new(whois_wrapper()), Arc::new(cs_wrapper())],
            medmaker::externals::standard_registry(),
        )
        .unwrap()
        .with_options(MediatorOptions {
            cache: medmaker::CacheOptions::enabled(),
            ..Default::default()
        });
        let handle = medmaker_server::Server::start(
            Arc::new(med),
            medmaker_server::ServerOptions {
                addr: "127.0.0.1:0".to_string(),
                ..Default::default()
            },
        )
        .unwrap();
        let cfg = parse_args(argv(&format!(
            "invalidate --addr {} --source whois",
            handle.addr()
        )))
        .unwrap();
        let mut out = Vec::new();
        let code = run_invalidate(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"invalidated\""), "{text}");
        handle.shutdown();
        // A dead address is a connection error, not a panic.
        let cfg = parse_args(argv("invalidate --addr 127.0.0.1:1 --source whois")).unwrap();
        let mut out = Vec::new();
        let err = run_invalidate(&cfg, &mut out).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(argv("--oem whois=w.oem")).is_err()); // no --spec
        assert!(parse_args(argv("--spec s.msl --oem broken")).is_err());
        assert!(parse_args(argv("--spec s.msl --frob")).is_err());
        assert!(parse_args(argv("--spec s.msl q1 q2")).is_err());
        assert!(parse_args(argv("--spec")).is_err());
    }

    #[test]
    fn build_and_query_in_memory() {
        // Exercise build_mediator through temp files.
        let dir = std::env::temp_dir().join(format!("medmaker-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.msl");
        std::fs::write(&spec, "<v {<n N>}> :- <person {<name N>}>@src\n").unwrap();
        let oem_file = dir.join("src.oem");
        std::fs::write(&oem_file, "<&p1, person, set, {<&n1, name, 'Ann'>}>\n").unwrap();
        let cfg = parse_args(argv(&format!(
            "--spec {} --name m --oem src={}",
            spec.display(),
            oem_file.display()
        )))
        .unwrap();
        let med = build_mediator(&cfg).unwrap();
        let mut out = Vec::new();
        run_query(&med, "X :- X:<v {}>@m", false, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("'Ann'"), "{text}");
        assert!(text.contains(";; 1 object(s)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_query_prints_partial_notice_when_a_source_is_down() {
        use wrappers::fault::{FaultInjectingWrapper, FaultPlan};
        let spec = "<v {<n N> <from 'up'>}> :- <person {<name N>}>@up\n\
                    <v {<n N> <from 'down'>}> :- <person {<name N>}>@down\n";
        let store = oem::parser::parse_store("<&p1, person, set, {<&n1, name, 'Ann'>}>").unwrap();
        let up: Arc<dyn Wrapper> = Arc::new(SemiStructuredWrapper::new("up", store.clone()));
        let down: Arc<dyn Wrapper> = Arc::new(FaultInjectingWrapper::new(
            Arc::new(SemiStructuredWrapper::new("down", store)),
            FaultPlan::always_down(),
        ));
        let med = Mediator::new(
            "m",
            spec,
            vec![up, down],
            medmaker::externals::standard_registry(),
        )
        .unwrap()
        .with_options(MediatorOptions {
            fault: medmaker::FaultOptions {
                on_source_failure: medmaker::OnSourceFailure::Partial,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut out = Vec::new();
        run_query(&med, "X :- X:<v {}>@m", false, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("'Ann'"), "{text}");
        assert!(text.contains(";; PARTIAL: failed sources: down"), "{text}");
        assert!(text.contains("chain(s) dropped"), "{text}");
    }

    fn temp_spec(tag: &str, text: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("medmaker-lint-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.msl");
        std::fs::write(&spec, text).unwrap();
        (dir, spec)
    }

    #[test]
    fn lint_subcommand_parsed() {
        let cfg = parse_args(argv("lint spec.msl --json --name m")).unwrap();
        assert!(cfg.lint && cfg.json);
        assert_eq!(cfg.spec_path.as_ref().unwrap().to_str(), Some("spec.msl"));
        assert_eq!(cfg.name, "m");
        // The spec file is required, and --json is lint-only.
        assert!(parse_args(argv("lint")).is_err());
        assert!(parse_args(argv("--spec s.msl --json")).is_err());
    }

    #[test]
    fn explain_subcommand_parsed() {
        let cfg = parse_args(argv(
            "explain --spec s.msl --analyze --trace-json t.json QUERY",
        ))
        .unwrap();
        assert!(cfg.explain_cmd && cfg.analyze);
        assert_eq!(cfg.trace_json.as_ref().unwrap().to_str(), Some("t.json"));
        assert_eq!(cfg.query.as_deref(), Some("QUERY"));
        // --trace-json alone implies --analyze.
        let cfg = parse_args(argv("explain --spec s.msl --trace-json t.json Q")).unwrap();
        assert!(cfg.analyze);
        // QUERY is required; --analyze is explain-only.
        assert!(parse_args(argv("explain --spec s.msl")).is_err());
        assert!(parse_args(argv("--spec s.msl --analyze Q")).is_err());
        assert!(parse_args(argv("explain --spec s.msl --trace-json")).is_err());
    }

    #[test]
    fn explain_analyze_end_to_end_with_trace_json() {
        use serde::Deserialize;
        let dir =
            std::env::temp_dir().join(format!("medmaker-explain-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.msl");
        std::fs::write(&spec, "<v {<n N>}> :- <person {<name N>}>@src\n").unwrap();
        let oem_file = dir.join("src.oem");
        std::fs::write(&oem_file, "<&p1, person, set, {<&n1, name, 'Ann'>}>\n").unwrap();
        let trace_path = dir.join("trace.json");
        let cfg = parse_args(argv(&format!(
            "explain --spec {} --name m --oem src={} --trace-json {} X_:-_X:<v_{{}}>@m",
            spec.display(),
            oem_file.display(),
            trace_path.display()
        )))
        .unwrap();
        // argv() splits on whitespace, so the query was smuggled through
        // with underscores; put the real text back.
        let cfg = Config {
            query: Some("X :- X:<v {}>@m".to_string()),
            ..cfg
        };
        let mut out = Vec::new();
        let code = run_explain(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("rows: "), "{text}");
        assert!(text.contains("=== totals ==="), "{text}");
        assert!(text.contains("trace written to"), "{text}");
        // The written JSON parses back into a QueryTrace.
        let json = std::fs::read_to_string(&trace_path).unwrap();
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let trace = medmaker::metrics::QueryTrace::from_value(&v).unwrap();
        assert_eq!(trace.result_count, 1);
        assert!(!trace.rules.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_clean_spec_exits_zero() {
        let (dir, spec) = temp_spec("clean", "<v {<n N>}> :- <person {<name N>}>@src\n");
        let cfg = parse_args(argv(&format!("lint {}", spec.display()))).unwrap();
        let mut out = Vec::new();
        let code = run_lint(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_ms1_is_clean() {
        let (dir, spec) = temp_spec("ms1", wrappers::scenario::MS1);
        let cfg = parse_args(argv(&format!("lint {}", spec.display()))).unwrap();
        let mut out = Vec::new();
        let code = run_lint(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_renders_warnings_and_exits_one() {
        // X is bound in the tail and never used again -> W102.
        let (dir, spec) = temp_spec("warn", "<v {<n N>}> :- <person {<name N> <x X>}>@src\n");
        let cfg = parse_args(argv(&format!("lint {}", spec.display()))).unwrap();
        let mut out = Vec::new();
        let code = run_lint(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("warning[W102]"), "{text}");
        assert!(text.contains("0 error(s), 1 warning(s)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_collects_multiple_defects_and_exits_two() {
        // One unanswerable external (E005/E014 family) plus an unused
        // variable: everything is reported in a single run.
        let (dir, spec) = temp_spec(
            "multi",
            "<v {<n N> <l L>}> :- <person {<name N> <x X>}>@src AND conv(N, L)\n",
        );
        let cfg = parse_args(argv(&format!("lint {}", spec.display()))).unwrap();
        let mut out = Vec::new();
        let code = run_lint(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("error[E005]"), "{text}");
        assert!(text.contains("warning[W102]"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_json_round_trips_through_serde_json() {
        let (dir, spec) = temp_spec("json", "<v {<n N>}> :- <person {<name N> <x X>}>@src\n");
        let cfg = parse_args(argv(&format!("lint {} --json", spec.display()))).unwrap();
        let mut out = Vec::new();
        let code = run_lint(&cfg, &mut out).unwrap();
        assert_eq!(code, 1);
        let text = String::from_utf8(out).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 1, "{text}");
        let d = &items[0];
        assert_eq!(d.get("code").unwrap().as_str(), Some("W102"));
        assert_eq!(d.get("severity").unwrap().as_str(), Some("warning"));
        assert!(d.get("message").unwrap().as_str().unwrap().contains("X"));
        let span = d.get("span").unwrap();
        let start = span.get("start").unwrap().as_i64().unwrap();
        let end = span.get("end").unwrap().as_i64().unwrap();
        assert!(start < end, "{text}");
        assert_eq!(d.get("line").unwrap().as_i64(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_subcommand_parsed() {
        let cfg = parse_args(argv("check spec.msl --json --name m")).unwrap();
        assert!(cfg.check && cfg.json && !cfg.lint);
        assert_eq!(cfg.spec_path.as_ref().unwrap().to_str(), Some("spec.msl"));
        assert_eq!(cfg.name, "m");
        // The spec file is required, and --json needs lint or check mode.
        assert!(parse_args(argv("check")).is_err());
    }

    fn temp_oem_source(dir: &std::path::Path) -> std::path::PathBuf {
        let oem_file = dir.join("src.oem");
        std::fs::write(&oem_file, "<&p1, person, set, {<&n1, name, 'Ann'>}>\n").unwrap();
        oem_file
    }

    #[test]
    fn check_clean_spec_exits_zero_and_prints_matrix() {
        let (dir, spec) = temp_spec("check-clean", "<v {<n N>}> :- <person {<name N>}>@src\n");
        let oem_file = temp_oem_source(&dir);
        let cfg = parse_args(argv(&format!(
            "check {} --oem src={}",
            spec.display(),
            oem_file.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        let code = run_check(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("view 'v' (n): answerable for f, b"), "{text}");
        assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_flags_unknown_label_with_did_you_mean() {
        // `nmae` is a typo for `name`, which the source's summary knows.
        let (dir, spec) = temp_spec("check-w301", "<v {<n N>}> :- <person {<nmae N>}>@src\n");
        let oem_file = temp_oem_source(&dir);
        let cfg = parse_args(argv(&format!(
            "check {} --oem src={}",
            spec.display(),
            oem_file.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        let code = run_check(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("warning[W301]"), "{text}");
        assert!(text.contains("did you mean 'name'"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_flags_impossible_constant_as_error() {
        // `name` holds strings in the source; matching the integer 5
        // against it is provably empty.
        let (dir, spec) = temp_spec(
            "check-e301",
            "<v {<n N>}> :- <person {<name 5> <name N>}>@src\n",
        );
        let oem_file = temp_oem_source(&dir);
        let cfg = parse_args(argv(&format!(
            "check {} --oem src={}",
            spec.display(),
            oem_file.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        let code = run_check(&cfg, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("error[E301]"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_json_has_diagnostics_and_views() {
        let (dir, spec) = temp_spec("check-json", "<v {<n N>}> :- <person {<nmae N>}>@src\n");
        let oem_file = temp_oem_source(&dir);
        let cfg = parse_args(argv(&format!(
            "check {} --json --oem src={}",
            spec.display(),
            oem_file.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        let code = run_check(&cfg, &mut out).unwrap();
        assert_eq!(code, 1);
        let text = String::from_utf8(out).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        let diags = v.get("diagnostics").unwrap().as_array().unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.get("code").unwrap().as_str() == Some("W301")),
            "{text}"
        );
        let views = v.get("views").unwrap().as_array().unwrap();
        assert_eq!(views.len(), 1, "{text}");
        assert_eq!(views[0].get("view").unwrap().as_str(), Some("v"));
        assert_eq!(views[0].get("dead").unwrap().as_bool(), Some(false));
        assert!(
            !views[0]
                .get("answerable")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_unparseable_spec_exits_two() {
        let (dir, spec) = temp_spec("check-bad", "<<< not msl\n");
        let cfg = parse_args(argv(&format!("check {} --json", spec.display()))).unwrap();
        let mut out = Vec::new();
        let code = run_check(&cfg, &mut out).unwrap();
        assert_eq!(code, 2);
        let text = String::from_utf8(out).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        assert!(v.get("error").is_some(), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_unparseable_spec_exits_two() {
        let (dir, spec) = temp_spec("bad", "<<< not msl\n");
        let cfg = parse_args(argv(&format!("lint {} --json", spec.display()))).unwrap();
        let mut out = Vec::new();
        let code = run_lint(&cfg, &mut out).unwrap();
        assert_eq!(code, 2);
        let text = String::from_utf8(out).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        assert!(v.get("error").is_some(), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_checks_capabilities_of_registered_sources() {
        // `src` is a semi-structured OEM source with full capabilities, so
        // registering it keeps the spec clean; the capability passes run.
        let dir = std::env::temp_dir().join(format!("medmaker-lint-caps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.msl");
        std::fs::write(&spec, "<v {<n N>}> :- <person {<name N>}>@src\n").unwrap();
        let oem_file = dir.join("src.oem");
        std::fs::write(&oem_file, "<&p1, person, set, {<&n1, name, 'Ann'>}>\n").unwrap();
        let cfg = parse_args(argv(&format!(
            "lint {} --oem src={}",
            spec.display(),
            oem_file.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        let code = run_lint(&cfg, &mut out).unwrap();
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repl_session() {
        let dir = std::env::temp_dir().join(format!("medmaker-repl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.msl");
        std::fs::write(&spec, "<v {<n N>}> :- <person {<name N>}>@src\n").unwrap();
        let oem_file = dir.join("src.oem");
        std::fs::write(&oem_file, "<&p1, person, set, {<&n1, name, 'Ann'>}>\n").unwrap();
        let cfg = parse_args(argv(&format!(
            "--spec {} --name m --oem src={}",
            spec.display(),
            oem_file.display()
        )))
        .unwrap();
        let med = build_mediator(&cfg).unwrap();
        let input = b".help\n.spec\n.sources\nX :- X:<v {}>@m\nbad query\n.quit\n";
        let mut out = Vec::new();
        repl(&med, &input[..], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(".explain QUERY"), "{text}");
        assert!(text.contains("@src"), "{text}");
        assert!(text.contains("'Ann'"), "{text}");
        assert!(text.contains("error:"), "{text}");
    }
}
