//! Selection and projection with index-aware access paths.

use crate::error::{DbError, Result};
use crate::pred::{CmpOp, InCondition, Predicate};
use crate::table::Table;
use crate::types::Datum;

/// Evaluate `SELECT * FROM table WHERE pred`, returning row ids.
///
/// Access path: if some equality condition has a hash index, probe the
/// most selective such index and post-filter. An indexed `IN` condition
/// is batch-probed — one lookup per listed value, candidate lists
/// unioned — and competes with the equality probes on candidate count.
/// Otherwise scan.
pub fn select(table: &Table, pred: &Predicate) -> Result<Vec<usize>> {
    // Resolve column names up front (and error on unknown columns).
    let mut resolved: Vec<(usize, CmpOp, &Datum)> = Vec::with_capacity(pred.conditions.len());
    for c in &pred.conditions {
        resolved.push((resolve_column(table, &c.column)?, c.op, &c.value));
    }
    let mut resolved_in: Vec<(usize, &InCondition)> = Vec::with_capacity(pred.in_conditions.len());
    for c in &pred.in_conditions {
        resolved_in.push((resolve_column(table, &c.column)?, c));
    }
    // `col IN ()` matches nothing; short-circuit after column validation.
    if resolved_in.iter().any(|(_, c)| c.values.is_empty()) {
        return Ok(Vec::new());
    }

    // Choose the best indexed equality condition (fewest candidate rows).
    let mut best: Option<(usize, &[usize])> = None;
    for (i, (col, op, value)) in resolved.iter().enumerate() {
        if *op == CmpOp::Eq {
            if let Some(rids) = table.index_lookup(*col, value) {
                if best.is_none_or(|(_, b)| rids.len() < b.len()) {
                    best = Some((i, rids));
                }
            }
        }
    }
    // Batch-probe indexed IN conditions: the union of the per-value
    // candidate lists, deduplicated, in ascending rid order.
    let mut best_in: Option<Vec<usize>> = None;
    for (col, c) in &resolved_in {
        let mut union: Vec<usize> = Vec::new();
        let mut probed = true;
        for value in &c.values {
            match table.index_lookup(*col, value) {
                Some(rids) => union.extend_from_slice(rids),
                None => {
                    probed = false;
                    break;
                }
            }
        }
        if probed {
            union.sort_unstable();
            union.dedup();
            if best_in.as_ref().is_none_or(|b| union.len() < b.len()) {
                best_in = Some(union);
            }
        }
    }

    let matches_row = |rid: usize| -> bool {
        let row = table.row(rid);
        resolved
            .iter()
            .all(|(col, op, value)| op.eval(row[*col].compare(value)))
            && resolved_in.iter().all(|(col, c)| c.matches(&row[*col]))
    };

    // Pick the narrower candidate set; post-filter re-checks everything.
    let candidates: Option<Vec<usize>> = match (best, best_in) {
        (Some((_, eq)), Some(inn)) if inn.len() < eq.len() => Some(inn),
        (Some((_, eq)), _) => Some(eq.to_vec()),
        (None, inn) => inn,
    };
    let out = match candidates {
        Some(candidates) => candidates.into_iter().filter(|&r| matches_row(r)).collect(),
        None => table
            .iter()
            .map(|(rid, _)| rid)
            .filter(|&r| matches_row(r))
            .collect(),
    };
    Ok(out)
}

fn resolve_column(table: &Table, column: &str) -> Result<usize> {
    table
        .schema()
        .column_index(column)
        .ok_or_else(|| DbError::NoSuchColumn {
            table: table.schema().name().to_string(),
            column: column.to_string(),
        })
}

/// Evaluate `SELECT cols FROM table WHERE pred`. `columns = None` selects
/// every column in schema order.
pub fn select_project(
    table: &Table,
    pred: &Predicate,
    columns: Option<&[&str]>,
) -> Result<Vec<Vec<Datum>>> {
    let rids = select(table, pred)?;
    let cols: Vec<usize> =
        match columns {
            None => (0..table.schema().arity()).collect(),
            Some(names) => {
                let mut out = Vec::with_capacity(names.len());
                for n in names {
                    out.push(table.schema().column_index(n).ok_or_else(|| {
                        DbError::NoSuchColumn {
                            table: table.schema().name().to_string(),
                            column: n.to_string(),
                        }
                    })?);
                }
                out
            }
        };
    Ok(rids
        .into_iter()
        .map(|rid| {
            let row = table.row(rid);
            cols.iter().map(|&c| row[c].clone()).collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Condition;
    use crate::schema::Schema;
    use crate::types::ColType;

    fn employees() -> Table {
        let schema = Schema::new(
            "employee",
            &[
                ("first_name", ColType::Str),
                ("last_name", ColType::Str),
                ("title", ColType::Str),
                ("reports_to", ColType::Str),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.insert_all([
            vec![
                "Joe".into(),
                "Chung".into(),
                "professor".into(),
                "John Hennessy".into(),
            ],
            vec![
                "Ann".into(),
                "Able".into(),
                "lecturer".into(),
                "Joe Chung".into(),
            ],
            vec![
                "Bob".into(),
                "Busy".into(),
                "professor".into(),
                "John Hennessy".into(),
            ],
        ])
        .unwrap();
        t
    }

    #[test]
    fn full_scan_select() {
        let t = employees();
        let rids = select(
            &t,
            &Predicate::of(vec![Condition::eq("title", "professor")]),
        )
        .unwrap();
        assert_eq!(rids, vec![0, 2]);
    }

    #[test]
    fn empty_predicate_selects_all() {
        let t = employees();
        assert_eq!(select(&t, &Predicate::all()).unwrap().len(), 3);
    }

    #[test]
    fn indexed_select_same_answer_as_scan() {
        let mut t = employees();
        let pred = Predicate::of(vec![
            Condition::eq("title", "professor"),
            Condition::eq("last_name", "Chung"),
        ]);
        let scan = select(&t, &pred).unwrap();
        t.create_index("last_name").unwrap();
        t.create_index("title").unwrap();
        let indexed = select(&t, &pred).unwrap();
        assert_eq!(scan, indexed);
        assert_eq!(indexed, vec![0]);
    }

    #[test]
    fn projection() {
        let t = employees();
        let rows = select_project(
            &t,
            &Predicate::of(vec![Condition::eq("last_name", "Chung")]),
            Some(&["first_name", "title"]),
        )
        .unwrap();
        assert_eq!(rows, vec![vec![Datum::str("Joe"), Datum::str("professor")]]);
    }

    #[test]
    fn project_all_columns() {
        let t = employees();
        let rows = select_project(&t, &Predicate::all(), None).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 4);
    }

    #[test]
    fn unknown_column_errors() {
        let t = employees();
        assert!(select(&t, &Predicate::of(vec![Condition::eq("nope", 1)])).is_err());
        assert!(select_project(&t, &Predicate::all(), Some(&["nope"])).is_err());
    }

    #[test]
    fn range_predicates() {
        let schema = Schema::new("s", &[("name", ColType::Str), ("year", ColType::Int)]).unwrap();
        let mut t = Table::new(schema);
        t.insert_all([
            vec!["a".into(), 1.into()],
            vec!["b".into(), 3.into()],
            vec!["c".into(), 5.into()],
        ])
        .unwrap();
        let rids = select(
            &t,
            &Predicate::of(vec![Condition::cmp("year", CmpOp::Ge, 3)]),
        )
        .unwrap();
        assert_eq!(rids, vec![1, 2]);
    }

    #[test]
    fn type_mismatch_condition_is_false_not_error() {
        let t = employees();
        let rids = select(&t, &Predicate::of(vec![Condition::eq("title", 3)])).unwrap();
        assert!(rids.is_empty());
    }

    #[test]
    fn in_predicate_scan() {
        let t = employees();
        let pred = Predicate::all().and_in(InCondition::of("last_name", ["Chung", "Busy"]));
        assert_eq!(select(&t, &pred).unwrap(), vec![0, 2]);
    }

    #[test]
    fn in_predicate_batch_probes_the_index() {
        let mut t = employees();
        let pred = Predicate::all().and_in(InCondition::of("last_name", ["Busy", "Chung", "Nope"]));
        let scan = select(&t, &pred).unwrap();
        t.create_index("last_name").unwrap();
        let indexed = select(&t, &pred).unwrap();
        // Same rows, ascending rid order, despite the probe order.
        assert_eq!(scan, indexed);
        assert_eq!(indexed, vec![0, 2]);
    }

    #[test]
    fn in_predicate_combines_with_equality_conditions() {
        let mut t = employees();
        t.create_index("title").unwrap();
        t.create_index("last_name").unwrap();
        let pred = Predicate::of(vec![Condition::eq("title", "professor")])
            .and_in(InCondition::of("last_name", ["Able", "Busy"]));
        // The IN probe (1 candidate) is narrower than the title probe (2).
        assert_eq!(select(&t, &pred).unwrap(), vec![2]);
    }

    #[test]
    fn in_predicate_dedups_repeated_values() {
        let mut t = employees();
        t.create_index("title").unwrap();
        let pred = Predicate::all().and_in(InCondition::of("title", ["professor", "professor"]));
        assert_eq!(select(&t, &pred).unwrap(), vec![0, 2]);
    }

    #[test]
    fn empty_in_list_matches_nothing() {
        let t = employees();
        let pred = Predicate::all().and_in(InCondition::of("title", Vec::<&str>::new()));
        assert!(select(&t, &pred).unwrap().is_empty());
        // ...but an unknown column still errors, even with an empty list.
        let bad = Predicate::all().and_in(InCondition::of("nope", Vec::<&str>::new()));
        assert!(select(&t, &bad).is_err());
    }
}
