//! Selection and projection with index-aware access paths.

use crate::error::{DbError, Result};
use crate::pred::{CmpOp, Predicate};
use crate::table::Table;
use crate::types::Datum;

/// Evaluate `SELECT * FROM table WHERE pred`, returning row ids.
///
/// Access path: if some equality condition has a hash index, probe the
/// most selective such index and post-filter; otherwise scan.
pub fn select(table: &Table, pred: &Predicate) -> Result<Vec<usize>> {
    // Resolve column names up front (and error on unknown columns).
    let mut resolved: Vec<(usize, CmpOp, &Datum)> = Vec::with_capacity(pred.conditions.len());
    for c in &pred.conditions {
        let col = table
            .schema()
            .column_index(&c.column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: table.schema().name().to_string(),
                column: c.column.clone(),
            })?;
        resolved.push((col, c.op, &c.value));
    }

    // Choose the best indexed equality condition (fewest candidate rows).
    let mut best: Option<(usize, &[usize])> = None;
    for (i, (col, op, value)) in resolved.iter().enumerate() {
        if *op == CmpOp::Eq {
            if let Some(rids) = table.index_lookup(*col, value) {
                if best.is_none_or(|(_, b)| rids.len() < b.len()) {
                    best = Some((i, rids));
                }
            }
        }
    }

    let matches_row = |rid: usize| -> bool {
        let row = table.row(rid);
        resolved
            .iter()
            .all(|(col, op, value)| op.eval(row[*col].compare(value)))
    };

    let out = match best {
        Some((_, candidates)) => candidates
            .iter()
            .copied()
            .filter(|&r| matches_row(r))
            .collect(),
        None => table
            .iter()
            .map(|(rid, _)| rid)
            .filter(|&r| matches_row(r))
            .collect(),
    };
    Ok(out)
}

/// Evaluate `SELECT cols FROM table WHERE pred`. `columns = None` selects
/// every column in schema order.
pub fn select_project(
    table: &Table,
    pred: &Predicate,
    columns: Option<&[&str]>,
) -> Result<Vec<Vec<Datum>>> {
    let rids = select(table, pred)?;
    let cols: Vec<usize> =
        match columns {
            None => (0..table.schema().arity()).collect(),
            Some(names) => {
                let mut out = Vec::with_capacity(names.len());
                for n in names {
                    out.push(table.schema().column_index(n).ok_or_else(|| {
                        DbError::NoSuchColumn {
                            table: table.schema().name().to_string(),
                            column: n.to_string(),
                        }
                    })?);
                }
                out
            }
        };
    Ok(rids
        .into_iter()
        .map(|rid| {
            let row = table.row(rid);
            cols.iter().map(|&c| row[c].clone()).collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Condition;
    use crate::schema::Schema;
    use crate::types::ColType;

    fn employees() -> Table {
        let schema = Schema::new(
            "employee",
            &[
                ("first_name", ColType::Str),
                ("last_name", ColType::Str),
                ("title", ColType::Str),
                ("reports_to", ColType::Str),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.insert_all([
            vec![
                "Joe".into(),
                "Chung".into(),
                "professor".into(),
                "John Hennessy".into(),
            ],
            vec![
                "Ann".into(),
                "Able".into(),
                "lecturer".into(),
                "Joe Chung".into(),
            ],
            vec![
                "Bob".into(),
                "Busy".into(),
                "professor".into(),
                "John Hennessy".into(),
            ],
        ])
        .unwrap();
        t
    }

    #[test]
    fn full_scan_select() {
        let t = employees();
        let rids = select(
            &t,
            &Predicate::of(vec![Condition::eq("title", "professor")]),
        )
        .unwrap();
        assert_eq!(rids, vec![0, 2]);
    }

    #[test]
    fn empty_predicate_selects_all() {
        let t = employees();
        assert_eq!(select(&t, &Predicate::all()).unwrap().len(), 3);
    }

    #[test]
    fn indexed_select_same_answer_as_scan() {
        let mut t = employees();
        let pred = Predicate::of(vec![
            Condition::eq("title", "professor"),
            Condition::eq("last_name", "Chung"),
        ]);
        let scan = select(&t, &pred).unwrap();
        t.create_index("last_name").unwrap();
        t.create_index("title").unwrap();
        let indexed = select(&t, &pred).unwrap();
        assert_eq!(scan, indexed);
        assert_eq!(indexed, vec![0]);
    }

    #[test]
    fn projection() {
        let t = employees();
        let rows = select_project(
            &t,
            &Predicate::of(vec![Condition::eq("last_name", "Chung")]),
            Some(&["first_name", "title"]),
        )
        .unwrap();
        assert_eq!(rows, vec![vec![Datum::str("Joe"), Datum::str("professor")]]);
    }

    #[test]
    fn project_all_columns() {
        let t = employees();
        let rows = select_project(&t, &Predicate::all(), None).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 4);
    }

    #[test]
    fn unknown_column_errors() {
        let t = employees();
        assert!(select(&t, &Predicate::of(vec![Condition::eq("nope", 1)])).is_err());
        assert!(select_project(&t, &Predicate::all(), Some(&["nope"])).is_err());
    }

    #[test]
    fn range_predicates() {
        let schema = Schema::new("s", &[("name", ColType::Str), ("year", ColType::Int)]).unwrap();
        let mut t = Table::new(schema);
        t.insert_all([
            vec!["a".into(), 1.into()],
            vec!["b".into(), 3.into()],
            vec!["c".into(), 5.into()],
        ])
        .unwrap();
        let rids = select(
            &t,
            &Predicate::of(vec![Condition::cmp("year", CmpOp::Ge, 3)]),
        )
        .unwrap();
        assert_eq!(rids, vec![1, 2]);
    }

    #[test]
    fn type_mismatch_condition_is_false_not_error() {
        let t = employees();
        let rids = select(&t, &Predicate::of(vec![Condition::eq("title", 3)])).unwrap();
        assert!(rids.is_empty());
    }
}
