//! Conjunctive selection predicates.

use crate::types::Datum;
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal (`=`).
    Eq,
    /// Not equal (`<>`).
    Neq,
    /// Less than (`<`).
    Lt,
    /// Less than or equal (`<=`).
    Le,
    /// Greater than (`>`).
    Gt,
    /// Greater than or equal (`>=`).
    Ge,
}

impl CmpOp {
    /// Evaluate against a three-valued comparison result. Incomparable
    /// datums (`None`) fail every operator — including `Neq`, matching SQL's
    /// treatment of NULL.
    pub fn eval(&self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Neq, Some(o)) => o != Ordering::Equal,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }

    /// Parse from the MSL built-in predicate names.
    pub fn from_name(name: &str) -> Option<CmpOp> {
        Some(match name {
            "eq" => CmpOp::Eq,
            "neq" => CmpOp::Neq,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// One condition `column θ value`.
#[derive(Clone, PartialEq, Debug)]
pub struct Condition {
    /// Column the condition tests.
    pub column: String,
    /// The comparison operator θ.
    pub op: CmpOp,
    /// The constant compared against.
    pub value: Datum,
}

impl Condition {
    /// Equality shorthand.
    pub fn eq(column: &str, value: impl Into<Datum>) -> Condition {
        Condition {
            column: column.to_string(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// General shorthand.
    pub fn cmp(column: &str, op: CmpOp, value: impl Into<Datum>) -> Condition {
        Condition {
            column: column.to_string(),
            op,
            value: value.into(),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

/// A membership condition `column IN (v1, v2, ...)`. An empty value list
/// matches nothing, like SQL's `IN ()` would.
#[derive(Clone, PartialEq, Debug)]
pub struct InCondition {
    /// Column the condition tests.
    pub column: String,
    /// The accepted values.
    pub values: Vec<Datum>,
}

impl InCondition {
    /// Shorthand constructor.
    pub fn of(column: &str, values: impl IntoIterator<Item = impl Into<Datum>>) -> InCondition {
        InCondition {
            column: column.to_string(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Does `datum` equal any of the listed values?
    pub fn matches(&self, datum: &Datum) -> bool {
        self.values.iter().any(|v| CmpOp::Eq.eval(datum.compare(v)))
    }
}

impl fmt::Display for InCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "{} IN ({})", self.column, parts.join(", "))
    }
}

/// A conjunction of conditions (possibly empty = always true).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Predicate {
    /// Single-value comparisons, ANDed together.
    pub conditions: Vec<Condition>,
    /// Membership conditions, ANDed with the comparisons.
    pub in_conditions: Vec<InCondition>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn all() -> Predicate {
        Predicate::default()
    }

    /// A predicate from conditions.
    pub fn of(conditions: Vec<Condition>) -> Predicate {
        Predicate {
            conditions,
            in_conditions: Vec::new(),
        }
    }

    /// Add a condition.
    pub fn and(mut self, c: Condition) -> Predicate {
        self.conditions.push(c);
        self
    }

    /// Add a membership condition.
    pub fn and_in(mut self, c: InCondition) -> Predicate {
        self.in_conditions.push(c);
        self
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() && self.in_conditions.is_empty() {
            return f.write_str("TRUE");
        }
        let parts: Vec<String> = self
            .conditions
            .iter()
            .map(|c| c.to_string())
            .chain(self.in_conditions.iter().map(|c| c.to_string()))
            .collect();
        f.write_str(&parts.join(" AND "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_eval() {
        let cmp = |a: i64, b: i64| Datum::Int(a).compare(&Datum::Int(b));
        assert!(CmpOp::Eq.eval(cmp(3, 3)));
        assert!(!CmpOp::Eq.eval(cmp(3, 4)));
        assert!(CmpOp::Neq.eval(cmp(3, 4)));
        assert!(CmpOp::Lt.eval(cmp(1, 2)));
        assert!(CmpOp::Le.eval(cmp(2, 2)));
        assert!(CmpOp::Gt.eval(cmp(3, 2)));
        assert!(CmpOp::Ge.eval(cmp(2, 2)));
    }

    #[test]
    fn incomparable_fails_everything() {
        let ord = Datum::Null.compare(&Datum::Int(1));
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert!(!op.eval(ord));
        }
    }

    #[test]
    fn from_msl_names() {
        assert_eq!(CmpOp::from_name("ge"), Some(CmpOp::Ge));
        assert_eq!(CmpOp::from_name("between"), None);
    }

    #[test]
    fn display() {
        let p = Predicate::all()
            .and(Condition::eq("last_name", "Chung"))
            .and(Condition::cmp("year", CmpOp::Ge, 3));
        assert_eq!(p.to_string(), "last_name = 'Chung' AND year >= 3");
        assert_eq!(Predicate::all().to_string(), "TRUE");
    }

    #[test]
    fn in_condition_matches_and_displays() {
        let c = InCondition::of("last_name", ["Chung", "Able"]);
        assert!(c.matches(&Datum::str("Able")));
        assert!(!c.matches(&Datum::str("Busy")));
        // NULL is never IN anything, matching the SQL treatment.
        assert!(!c.matches(&Datum::Null));
        assert_eq!(c.to_string(), "last_name IN ('Chung', 'Able')");
        let p = Predicate::of(vec![Condition::eq("title", "professor")]).and_in(c);
        assert_eq!(
            p.to_string(),
            "title = 'professor' AND last_name IN ('Chung', 'Able')"
        );
    }
}
