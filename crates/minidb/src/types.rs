//! Column types and datums.

use std::cmp::Ordering;
use std::fmt;

/// The type of a relational column.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ColType {
    /// UTF-8 string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (stored as raw bits in [`Datum::RealBits`]).
    Real,
    /// Boolean.
    Bool,
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ColType::Str => "string",
            ColType::Int => "integer",
            ColType::Real => "real",
            ColType::Bool => "boolean",
        })
    }
}

/// A single relational value. `Real` keeps raw bits so `Datum: Eq + Hash`
/// (hash indexes need it); use [`Datum::real`] / [`Datum::as_real`] for the
/// numeric view. `Null` is included because real sources have missing
/// values — the relational wrapper maps `Null` to an *absent* OEM subobject,
/// which is exactly how OEM represents irregularity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Datum {
    /// A string value.
    Str(String),
    /// An integer value.
    Int(i64),
    /// A real value as its IEEE-754 bit pattern (see the type docs).
    RealBits(u64),
    /// A boolean value.
    Bool(bool),
    /// A missing value.
    Null,
}

impl Datum {
    /// Construct a string datum.
    pub fn str(s: &str) -> Datum {
        Datum::Str(s.to_string())
    }

    /// Construct a real datum.
    pub fn real(x: f64) -> Datum {
        Datum::RealBits(x.to_bits())
    }

    /// Numeric view of a real datum.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Datum::RealBits(b) => Some(f64::from_bits(*b)),
            _ => None,
        }
    }

    /// The column type of this datum (`None` for `Null`).
    pub fn col_type(&self) -> Option<ColType> {
        Some(match self {
            Datum::Str(_) => ColType::Str,
            Datum::Int(_) => ColType::Int,
            Datum::RealBits(_) => ColType::Real,
            Datum::Bool(_) => ColType::Bool,
            Datum::Null => return None,
        })
    }

    /// Three-valued comparison. `None` when incomparable (type mismatch
    /// other than int/real promotion, or any `Null`): a predicate over
    /// incomparable datums is simply false, never an error.
    pub fn compare(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Str(a), Datum::Str(b)) => Some(a.cmp(b)),
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::RealBits(_), Datum::RealBits(_))
            | (Datum::Int(_), Datum::RealBits(_))
            | (Datum::RealBits(_), Datum::Int(_)) => {
                let a = self.to_f64()?;
                let b = other.to_f64()?;
                a.partial_cmp(&b)
            }
            _ => None,
        }
    }

    fn to_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::RealBits(b) => Some(f64::from_bits(*b)),
            _ => None,
        }
    }

    /// Is this datum NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Str(s) => write!(f, "'{s}'"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::RealBits(b) => write!(f, "{}", f64::from_bits(*b)),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Null => write!(f, "NULL"),
        }
    }
}

impl From<&str> for Datum {
    fn from(s: &str) -> Datum {
        Datum::str(s)
    }
}

impl From<String> for Datum {
    fn from(s: String) -> Datum {
        Datum::Str(s)
    }
}

impl From<i64> for Datum {
    fn from(i: i64) -> Datum {
        Datum::Int(i)
    }
}

impl From<i32> for Datum {
    fn from(i: i32) -> Datum {
        Datum::Int(i as i64)
    }
}

impl From<f64> for Datum {
    fn from(x: f64) -> Datum {
        Datum::real(x)
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Datum {
        Datum::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_datums() {
        assert_eq!(Datum::str("x").col_type(), Some(ColType::Str));
        assert_eq!(Datum::Int(1).col_type(), Some(ColType::Int));
        assert_eq!(Datum::real(1.5).col_type(), Some(ColType::Real));
        assert_eq!(Datum::Bool(true).col_type(), Some(ColType::Bool));
        assert_eq!(Datum::Null.col_type(), None);
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Datum::str("a").compare(&Datum::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Datum::Int(3).compare(&Datum::real(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Datum::Int(3).compare(&Datum::str("3")), None);
        assert_eq!(Datum::Null.compare(&Datum::Null), None);
    }

    #[test]
    fn null_is_never_comparable() {
        assert_eq!(Datum::Null.compare(&Datum::Int(1)), None);
        assert!(Datum::Null.is_null());
    }

    #[test]
    fn display() {
        assert_eq!(Datum::str("x").to_string(), "'x'");
        assert_eq!(Datum::Int(-2).to_string(), "-2");
        assert_eq!(Datum::Null.to_string(), "NULL");
    }
}
