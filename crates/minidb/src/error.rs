//! minidb errors.

use crate::types::ColType;
use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, DbError>;

/// Errors raised by schema/table/query operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// A schema declares the same column name twice.
    DuplicateColumn {
        /// Table being defined.
        table: String,
        /// The repeated column name.
        column: String,
    },
    /// A catalog already holds a table with this name.
    DuplicateTable(String),
    /// A query names a table the catalog does not have.
    NoSuchTable(String),
    /// A query names a column the table does not have.
    NoSuchColumn {
        /// Table that was searched.
        table: String,
        /// The unknown column name.
        column: String,
    },
    /// An inserted row has the wrong number of values.
    ArityMismatch {
        /// Table being inserted into.
        table: String,
        /// Columns the schema declares.
        expected: usize,
        /// Values the row supplied.
        found: usize,
    },
    /// An inserted value does not match the column's declared type.
    TypeMismatch {
        /// Table being inserted into.
        table: String,
        /// The mistyped column.
        column: String,
        /// The column's declared type.
        expected: ColType,
        /// The type of the supplied value.
        found: ColType,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column '{column}' in table '{table}'")
            }
            DbError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column '{column}' in table '{table}'")
            }
            DbError::ArityMismatch {
                table,
                expected,
                found,
            } => {
                write!(
                    f,
                    "table '{table}' expects {expected} values, found {found}"
                )
            }
            DbError::TypeMismatch {
                table,
                column,
                expected,
                found,
            } => write!(
                f,
                "column '{table}.{column}' expects {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(DbError::NoSuchTable("x".into()).to_string().contains("x"));
        let e = DbError::TypeMismatch {
            table: "t".into(),
            column: "c".into(),
            expected: ColType::Int,
            found: ColType::Str,
        };
        assert!(e.to_string().contains("integer"));
    }
}
