//! minidb errors.

use crate::types::ColType;
use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, DbError>;

/// Errors raised by schema/table/query operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    DuplicateColumn {
        table: String,
        column: String,
    },
    DuplicateTable(String),
    NoSuchTable(String),
    NoSuchColumn {
        table: String,
        column: String,
    },
    ArityMismatch {
        table: String,
        expected: usize,
        found: usize,
    },
    TypeMismatch {
        table: String,
        column: String,
        expected: ColType,
        found: ColType,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column '{column}' in table '{table}'")
            }
            DbError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column '{column}' in table '{table}'")
            }
            DbError::ArityMismatch {
                table,
                expected,
                found,
            } => {
                write!(
                    f,
                    "table '{table}' expects {expected} values, found {found}"
                )
            }
            DbError::TypeMismatch {
                table,
                column,
                expected,
                found,
            } => write!(
                f,
                "column '{table}.{column}' expects {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(DbError::NoSuchTable("x".into()).to_string().contains("x"));
        let e = DbError::TypeMismatch {
            table: "t".into(),
            column: "c".into(),
            expected: ColType::Int,
            found: ColType::Str,
        };
        assert!(e.to_string().contains("integer"));
    }
}
