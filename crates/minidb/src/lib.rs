//! # minidb — a minimal in-memory relational engine
//!
//! The MedMaker paper's first source is "a relational database containing
//! two tables" behind the `cs` wrapper (§2). This crate is that substrate,
//! built from scratch: typed schemas, row storage with optional hash
//! indexes, conjunctive selection predicates, and projection. It
//! deliberately exposes the query surface the relational *wrapper* needs —
//! `SELECT <cols> FROM t WHERE c1 = v1 AND c2 θ v2 ...` — and nothing more;
//! MedMaker's power comes from the mediation layer above, not from the
//! sources.
//!
//! Modules:
//! * [`types`] — column types and datums.
//! * [`schema`] — relation schemas.
//! * [`table`] — row storage plus hash indexes.
//! * [`pred`] — conjunctive predicates.
//! * [`query`] — select/project evaluation with index selection.
//! * [`catalog`] — a named collection of tables (one database).
//! * [`stats`] — row counts and per-column distinct estimates.

#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod error;
pub mod pred;
pub mod query;
pub mod schema;
pub mod stats;
pub mod table;
pub mod types;

pub use catalog::Catalog;
pub use csv::load_csv;
pub use error::{DbError, Result};
pub use pred::{CmpOp, Condition, InCondition, Predicate};
pub use query::{select, select_project};
pub use schema::Schema;
pub use stats::TableStats;
pub use table::Table;
pub use types::{ColType, Datum};
