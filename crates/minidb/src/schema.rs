//! Relation schemas.

use crate::error::{DbError, Result};
use crate::types::{ColType, Datum};

/// A relation schema: an ordered list of `(column name, type)` pairs. The
/// paper's example: `employee(first_name, last_name, title, reports_to)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    name: String,
    columns: Vec<(String, ColType)>,
}

impl Schema {
    /// Build a schema; column names must be distinct.
    pub fn new(name: &str, columns: &[(&str, ColType)]) -> Result<Schema> {
        let mut seen = std::collections::HashSet::new();
        for (c, _) in columns {
            if !seen.insert(*c) {
                return Err(DbError::DuplicateColumn {
                    table: name.to_string(),
                    column: c.to_string(),
                });
            }
        }
        Ok(Schema {
            name: name.to_string(),
            columns: columns.iter().map(|(c, t)| (c.to_string(), *t)).collect(),
        })
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(c, _)| c.as_str())
    }

    /// `(column name, type)` pairs in order — the schema's full shape, for
    /// exporting catalog summaries to the mediator's static analysis.
    pub fn columns(&self) -> impl Iterator<Item = (&str, ColType)> {
        self.columns.iter().map(|(c, t)| (c.as_str(), *t))
    }

    /// The index of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(c, _)| c == name)
    }

    /// The type of a column by index.
    pub fn column_type(&self, idx: usize) -> Option<ColType> {
        self.columns.get(idx).map(|(_, t)| *t)
    }

    /// The name of a column by index.
    pub fn column_name(&self, idx: usize) -> Option<&str> {
        self.columns.get(idx).map(|(c, _)| c.as_str())
    }

    /// Check a row against the schema: right arity, right types (`Null`
    /// allowed anywhere).
    pub fn check_row(&self, row: &[Datum]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        for (i, d) in row.iter().enumerate() {
            if let Some(t) = d.col_type() {
                if t != self.columns[i].1 {
                    return Err(DbError::TypeMismatch {
                        table: self.name.clone(),
                        column: self.columns[i].0.clone(),
                        expected: self.columns[i].1,
                        found: t,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee() -> Schema {
        Schema::new(
            "employee",
            &[
                ("first_name", ColType::Str),
                ("last_name", ColType::Str),
                ("title", ColType::Str),
                ("reports_to", ColType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup() {
        let s = employee();
        assert_eq!(s.name(), "employee");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column_index("title"), Some(2));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column_type(0), Some(ColType::Str));
        assert_eq!(s.column_name(3), Some("reports_to"));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new("t", &[("a", ColType::Int), ("a", ColType::Str)]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateColumn { .. }));
    }

    #[test]
    fn row_checking() {
        let s = employee();
        s.check_row(&[
            Datum::str("Joe"),
            Datum::str("Chung"),
            Datum::str("professor"),
            Datum::str("John Hennessy"),
        ])
        .unwrap();
        // Nulls pass.
        s.check_row(&[Datum::str("A"), Datum::str("B"), Datum::Null, Datum::Null])
            .unwrap();
        // Wrong arity.
        assert!(matches!(
            s.check_row(&[Datum::str("A")]),
            Err(DbError::ArityMismatch { .. })
        ));
        // Wrong type.
        assert!(matches!(
            s.check_row(&[Datum::Int(1), Datum::str("B"), Datum::Null, Datum::Null]),
            Err(DbError::TypeMismatch { .. })
        ));
    }
}
