//! Row storage with optional per-column hash indexes.

use crate::error::{DbError, Result};
use crate::schema::Schema;
use crate::types::Datum;
use std::collections::HashMap;

/// A table: a schema, rows, and optional hash indexes (equality lookup).
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Datum>>,
    /// column index → (datum → row ids)
    indexes: HashMap<usize, HashMap<Datum, Vec<usize>>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row (type-checked against the schema).
    pub fn insert(&mut self, row: Vec<Datum>) -> Result<()> {
        self.schema.check_row(&row)?;
        let rid = self.rows.len();
        for (col, index) in self.indexes.iter_mut() {
            if !row[*col].is_null() {
                index.entry(row[*col].clone()).or_default().push(rid);
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Insert many rows.
    pub fn insert_all<I: IntoIterator<Item = Vec<Datum>>>(&mut self, rows: I) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Build (or rebuild) a hash index on the named column. Null values are
    /// not indexed (they never satisfy equality).
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.schema.name().to_string(),
                column: column.to_string(),
            })?;
        let mut index: HashMap<Datum, Vec<usize>> = HashMap::new();
        for (rid, row) in self.rows.iter().enumerate() {
            if !row[col].is_null() {
                index.entry(row[col].clone()).or_default().push(rid);
            }
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// Is there a hash index on this column index?
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Row ids matching `col = value` via the index, if one exists.
    pub fn index_lookup(&self, col: usize, value: &Datum) -> Option<&[usize]> {
        self.indexes
            .get(&col)
            .map(|idx| idx.get(value).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// A row by id.
    pub fn row(&self, rid: usize) -> &[Datum] {
        &self.rows[rid]
    }

    /// Iterate all rows with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Datum])> {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ColType;

    fn student_table() -> Table {
        let schema = Schema::new(
            "student",
            &[
                ("first_name", ColType::Str),
                ("last_name", ColType::Str),
                ("year", ColType::Int),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec!["Nick".into(), "Naive".into(), 3.into()])
            .unwrap();
        t.insert(vec!["Ann".into(), "Able".into(), 1.into()])
            .unwrap();
        t.insert(vec!["Bob".into(), "Busy".into(), 3.into()])
            .unwrap();
        t
    }

    #[test]
    fn insert_and_iterate() {
        let t = student_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.row(0)[0], Datum::str("Nick"));
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn type_errors_rejected() {
        let mut t = student_table();
        assert!(t
            .insert(vec!["X".into(), "Y".into(), "three".into()])
            .is_err());
        assert!(t.insert(vec!["X".into()]).is_err());
    }

    #[test]
    fn index_lookup_finds_matches() {
        let mut t = student_table();
        t.create_index("year").unwrap();
        let col = t.schema().column_index("year").unwrap();
        assert!(t.has_index(col));
        let rids = t.index_lookup(col, &Datum::Int(3)).unwrap();
        assert_eq!(rids, &[0, 2]);
        assert!(t.index_lookup(col, &Datum::Int(9)).unwrap().is_empty());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = student_table();
        t.create_index("year").unwrap();
        t.insert(vec!["Col".into(), "Cool".into(), 3.into()])
            .unwrap();
        let col = t.schema().column_index("year").unwrap();
        assert_eq!(t.index_lookup(col, &Datum::Int(3)).unwrap().len(), 3);
    }

    #[test]
    fn nulls_not_indexed() {
        let schema = Schema::new("t", &[("a", ColType::Str)]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Datum::Null]).unwrap();
        t.insert(vec!["x".into()]).unwrap();
        t.create_index("a").unwrap();
        assert_eq!(t.index_lookup(0, &Datum::str("x")).unwrap(), &[1]);
        assert!(t.index_lookup(0, &Datum::Null).unwrap().is_empty());
    }

    #[test]
    fn index_on_missing_column_errors() {
        let mut t = student_table();
        assert!(matches!(
            t.create_index("nope"),
            Err(DbError::NoSuchColumn { .. })
        ));
    }
}
