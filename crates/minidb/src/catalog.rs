//! A catalog: one named database of tables. The paper's `cs` source is a
//! catalog with `employee` and `student`.

use crate::error::{DbError, Result};
use crate::table::Table;
use std::collections::BTreeMap;

/// A named collection of tables. `BTreeMap` keeps table enumeration
/// deterministic — the relational wrapper enumerates relations when an MSL
/// label variable ranges over table names.
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Add a table; its schema name is its catalog name.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let name = table.schema().name().to_string();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Fetch a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Mutable fetch.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Table names in deterministic (sorted) order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Iterate tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::ColType;

    fn tiny(name: &str) -> Table {
        Table::new(Schema::new(name, &[("x", ColType::Int)]).unwrap())
    }

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        c.add_table(tiny("employee")).unwrap();
        c.add_table(tiny("student")).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.table("employee").is_ok());
        assert!(matches!(c.table("nope"), Err(DbError::NoSuchTable(_))));
        assert_eq!(
            c.table_names().collect::<Vec<_>>(),
            vec!["employee", "student"]
        );
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.add_table(tiny("t")).unwrap();
        assert!(matches!(
            c.add_table(tiny("t")),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn mutate_through_catalog() {
        let mut c = Catalog::new();
        c.add_table(tiny("t")).unwrap();
        c.table_mut("t").unwrap().insert(vec![1.into()]).unwrap();
        assert_eq!(c.table("t").unwrap().len(), 1);
    }
}
