//! A small CSV loader so relational sources can be fed from files (used by
//! the `medmaker` CLI).
//!
//! Format: the header row declares `column:type` pairs (`string`,
//! `integer`, `real`, `boolean`); subsequent rows hold values. Empty cells
//! are NULL. Cells may be double-quoted; `""` inside quotes escapes a
//! quote. No external dependencies.

use crate::error::{DbError, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::types::{ColType, Datum};

/// Parse a whole CSV document into a table named `name`.
pub fn load_csv(name: &str, text: &str) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| DbError::NoSuchColumn {
        table: name.to_string(),
        column: "<empty csv: missing header>".to_string(),
    })?;

    let mut columns: Vec<(String, ColType)> = Vec::new();
    for field in split_row(header) {
        let (col, ty) = field.split_once(':').ok_or_else(|| DbError::NoSuchColumn {
            table: name.to_string(),
            column: format!("header field '{field}' lacks ':type'"),
        })?;
        let ty = match ty.trim() {
            "string" | "str" => ColType::Str,
            "integer" | "int" => ColType::Int,
            "real" | "float" => ColType::Real,
            "boolean" | "bool" => ColType::Bool,
            other => {
                return Err(DbError::NoSuchColumn {
                    table: name.to_string(),
                    column: format!("unknown type '{other}' for column '{col}'"),
                })
            }
        };
        columns.push((col.trim().to_string(), ty));
    }
    let refs: Vec<(&str, ColType)> = columns.iter().map(|(c, t)| (c.as_str(), *t)).collect();
    let schema = Schema::new(name, &refs)?;
    let mut table = Table::new(schema);

    for line in lines {
        let cells = split_row(line);
        let mut row: Vec<Datum> = Vec::with_capacity(columns.len());
        for (i, (_, ty)) in columns.iter().enumerate() {
            let raw = cells.get(i).map(|s| s.as_str()).unwrap_or("");
            if raw.is_empty() {
                row.push(Datum::Null);
                continue;
            }
            let datum = match ty {
                ColType::Str => Datum::str(raw),
                ColType::Int => raw
                    .parse::<i64>()
                    .map(Datum::Int)
                    .map_err(|_| bad_cell(name, raw, "integer"))?,
                ColType::Real => raw
                    .parse::<f64>()
                    .map(Datum::real)
                    .map_err(|_| bad_cell(name, raw, "real"))?,
                ColType::Bool => match raw {
                    "true" | "1" => Datum::Bool(true),
                    "false" | "0" => Datum::Bool(false),
                    _ => return Err(bad_cell(name, raw, "boolean")),
                },
            };
            row.push(datum);
        }
        table.insert(row)?;
    }
    Ok(table)
}

fn bad_cell(table: &str, raw: &str, expected: &str) -> DbError {
    DbError::NoSuchColumn {
        table: table.to_string(),
        column: format!("cell '{raw}' is not a valid {expected}"),
    }
}

/// Split one CSV row on commas, honoring double quotes.
fn split_row(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur).trim().to_string());
            }
            c => cur.push(c),
        }
    }
    out.push(cur.trim().to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_typed_rows() {
        let t = load_csv(
            "student",
            "first_name:string,last_name:string,year:integer\n\
             Nick,Naive,3\n\
             Ann,Able,1\n",
        )
        .unwrap();
        assert_eq!(t.schema().name(), "student");
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0)[2], Datum::Int(3));
    }

    #[test]
    fn empty_cells_are_null() {
        let t = load_csv("p", "name:string,email:string\nA,\nB,b@x\n").unwrap();
        assert!(t.row(0)[1].is_null());
        assert_eq!(t.row(1)[1], Datum::str("b@x"));
    }

    #[test]
    fn quoted_cells_with_commas_and_quotes() {
        let t = load_csv(
            "p",
            "name:string,quote:string\n\"Chung, Joe\",\"he said \"\"hi\"\"\"\n",
        )
        .unwrap();
        assert_eq!(t.row(0)[0], Datum::str("Chung, Joe"));
        assert_eq!(t.row(0)[1], Datum::str("he said \"hi\""));
    }

    #[test]
    fn all_types_parse() {
        let t = load_csv("x", "s:string,i:int,r:real,b:bool\ntxt,7,2.5,true\n").unwrap();
        assert_eq!(t.row(0)[1], Datum::Int(7));
        assert_eq!(t.row(0)[2], Datum::real(2.5));
        assert_eq!(t.row(0)[3], Datum::Bool(true));
    }

    #[test]
    fn errors_are_informative() {
        assert!(load_csv("x", "").is_err());
        assert!(load_csv("x", "name\nA\n").is_err()); // no :type
        assert!(load_csv("x", "n:int\nnotanint\n").is_err());
        assert!(load_csv("x", "b:bool\nmaybe\n").is_err());
        assert!(load_csv("x", "n:frobnicate\n1\n").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = load_csv("x", "\nn:int\n\n1\n\n2\n").unwrap();
        assert_eq!(t.len(), 2);
    }
}
