//! Table statistics.
//!
//! §3.5 of the paper: when wrappers *do* provide cost and statistics
//! information, the mediator's optimizer can use it. The relational
//! wrapper surfaces these numbers; the semi-structured source does not,
//! exercising the paper's other branch (ad-hoc heuristics + learned
//! statistics).

use crate::table::Table;
use std::collections::HashSet;

/// Row count and per-column distinct-value counts for one table.
#[derive(Clone, PartialEq, Debug)]
pub struct TableStats {
    /// Table name.
    pub table: String,
    /// Total rows in the table.
    pub row_count: usize,
    /// Distinct non-null values per column, in schema order.
    pub distinct: Vec<usize>,
}

impl TableStats {
    /// Compute exact statistics by scanning the table.
    pub fn compute(table: &Table) -> TableStats {
        let arity = table.schema().arity();
        let mut sets: Vec<HashSet<&crate::types::Datum>> = vec![HashSet::new(); arity];
        for (_, row) in table.iter() {
            for (i, d) in row.iter().enumerate() {
                if !d.is_null() {
                    sets[i].insert(d);
                }
            }
        }
        TableStats {
            table: table.schema().name().to_string(),
            row_count: table.len(),
            distinct: sets.iter().map(|s| s.len()).collect(),
        }
    }

    /// Estimated selectivity of an equality condition on the named column:
    /// `1 / distinct`, the textbook uniform assumption.
    pub fn eq_selectivity(&self, table: &Table, column: &str) -> f64 {
        match table.schema().column_index(column) {
            Some(i) if self.distinct[i] > 0 => 1.0 / self.distinct[i] as f64,
            _ => 1.0,
        }
    }

    /// Estimated output cardinality of a conjunctive equality predicate.
    pub fn estimate_eq_rows(&self, table: &Table, columns: &[&str]) -> f64 {
        let mut est = self.row_count as f64;
        for c in columns {
            est *= self.eq_selectivity(table, c);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::{ColType, Datum};

    fn table() -> Table {
        let schema = Schema::new("s", &[("name", ColType::Str), ("year", ColType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for (n, y) in [("a", 1), ("b", 1), ("c", 2), ("d", 3), ("e", 3), ("f", 3)] {
            t.insert(vec![n.into(), (y as i64).into()]).unwrap();
        }
        t
    }

    #[test]
    fn exact_counts() {
        let t = table();
        let s = TableStats::compute(&t);
        assert_eq!(s.row_count, 6);
        assert_eq!(s.distinct, vec![6, 3]);
    }

    #[test]
    fn selectivity_estimates() {
        let t = table();
        let s = TableStats::compute(&t);
        assert!((s.eq_selectivity(&t, "year") - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.estimate_eq_rows(&t, &["year"]) - 2.0).abs() < 1e-9);
        // Unknown column: selectivity 1.
        assert_eq!(s.eq_selectivity(&t, "nope"), 1.0);
    }

    #[test]
    fn nulls_excluded_from_distinct() {
        let schema = Schema::new("t", &[("a", ColType::Str)]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Datum::Null]).unwrap();
        t.insert(vec!["x".into()]).unwrap();
        let s = TableStats::compute(&t);
        assert_eq!(s.distinct, vec![1]);
    }
}
