//! Synthetic workload generators for tests, examples and benchmarks.
//!
//! The paper has no quantitative evaluation; these generators drive the
//! performance-characterization suite (EXPERIMENTS.md): scalable versions
//! of the §2 scenario with controllable size, source overlap, and
//! structural irregularity.

use crate::relational::RelationalWrapper;
use crate::semistructured::SemiStructuredSource;
use minidb::{Catalog, ColType, Schema, Table};
use oem::{ObjectBuilder, ObjectStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the scalable two-source person scenario.
#[derive(Clone, Debug)]
pub struct PersonWorkload {
    /// Number of persons in the whois source.
    pub n_whois: usize,
    /// Fraction of whois persons that also appear in the cs database
    /// (controls join selectivity and fusion overlap).
    pub overlap: f64,
    /// Probability that a whois person carries an extra irregular
    /// attribute (and that e_mail is missing) — structure irregularity.
    pub irregularity: f64,
    /// Fraction of persons that are students (the rest are employees).
    pub student_fraction: f64,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl Default for PersonWorkload {
    fn default() -> PersonWorkload {
        PersonWorkload {
            n_whois: 100,
            overlap: 0.5,
            irregularity: 0.3,
            student_fraction: 0.5,
            seed: 42,
        }
    }
}

impl PersonWorkload {
    /// Convenience: a workload of size `n` with default knobs.
    pub fn sized(n: usize) -> PersonWorkload {
        PersonWorkload {
            n_whois: n,
            ..PersonWorkload::default()
        }
    }

    /// First/last name of person `i` (unique, deterministic).
    pub fn name_of(i: usize) -> (String, String) {
        (format!("First{i}"), format!("Last{i}"))
    }

    /// Full name of person `i`.
    pub fn full_name_of(i: usize) -> String {
        let (f, l) = Self::name_of(i);
        format!("{f} {l}")
    }

    /// Generate the whois store.
    pub fn whois_store(&self) -> ObjectStore {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut store = ObjectStore::with_oid_prefix("w");
        for i in 0..self.n_whois {
            let is_student = (i as f64) < self.student_fraction * self.n_whois as f64;
            let mut b = ObjectBuilder::set("person")
                .atom("name", Self::full_name_of(i).as_str())
                .atom("dept", "CS")
                .atom("relation", if is_student { "student" } else { "employee" });
            let irregular = rng.gen_bool(self.irregularity.clamp(0.0, 1.0));
            if !irregular {
                b = b.atom("e_mail", format!("p{i}@cs").as_str());
            } else {
                // Irregular persons carry a source-specific extra attribute.
                b = b.atom("nickname", format!("nick{i}").as_str());
            }
            if is_student {
                b = b.atom("year", ((i % 5) + 1) as i64);
            }
            b.build_top(&mut store);
        }
        store
    }

    /// Generate the cs catalog: the first `overlap * n_whois` persons, plus
    /// the same number again of cs-only persons (so the join is selective
    /// on both sides).
    pub fn cs_catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        let mut employee = Table::new(
            Schema::new(
                "employee",
                &[
                    ("first_name", ColType::Str),
                    ("last_name", ColType::Str),
                    ("title", ColType::Str),
                    ("reports_to", ColType::Str),
                ],
            )
            .expect("employee schema"),
        );
        let mut student = Table::new(
            Schema::new(
                "student",
                &[
                    ("first_name", ColType::Str),
                    ("last_name", ColType::Str),
                    ("year", ColType::Int),
                ],
            )
            .expect("student schema"),
        );
        let overlapping = (self.overlap.clamp(0.0, 1.0) * self.n_whois as f64) as usize;
        let add = |i: usize, is_student: bool, employee: &mut Table, student: &mut Table| {
            let (f, l) = Self::name_of(i);
            if is_student {
                student
                    .insert(vec![f.into(), l.into(), (((i % 5) + 1) as i64).into()])
                    .expect("student row");
            } else {
                employee
                    .insert(vec![
                        f.into(),
                        l.into(),
                        "professor".into(),
                        "John Hennessy".into(),
                    ])
                    .expect("employee row");
            }
        };
        for i in 0..overlapping {
            let is_student = (i as f64) < self.student_fraction * self.n_whois as f64;
            add(i, is_student, &mut employee, &mut student);
        }
        // cs-only persons (ids beyond the whois range).
        for j in 0..overlapping {
            let i = self.n_whois + j;
            add(i, j % 2 == 0, &mut employee, &mut student);
        }
        let _ = employee.create_index("last_name");
        let _ = student.create_index("last_name");
        catalog.add_table(employee).expect("add employee");
        catalog.add_table(student).expect("add student");
        catalog
    }

    /// Both wrappers, ready to register with a mediator.
    pub fn build(&self) -> (SemiStructuredSource, RelationalWrapper) {
        (
            SemiStructuredSource::new("whois", self.whois_store()),
            RelationalWrapper::new("cs", self.cs_catalog()),
        )
    }
}

/// A deeply nested store for wildcard-search studies: a chain of `depth`
/// nested `group` objects under each of `n_top` top-level `person` objects,
/// with a `<year i%5+1>` leaf at the bottom.
pub fn deep_store(n_top: usize, depth: usize) -> ObjectStore {
    let mut store = ObjectStore::with_oid_prefix("d");
    for i in 0..n_top {
        let mut inner = ObjectBuilder::set("group").atom("year", ((i % 5) + 1) as i64);
        for _ in 1..depth {
            inner = ObjectBuilder::set("group").child(inner);
        }
        ObjectBuilder::set("person")
            .atom("name", format!("P{i}").as_str())
            .child(inner)
            .build_top(&mut store);
    }
    store
}

/// A store whose top-level objects contain `dup_factor` structural copies
/// of each logical person — for duplicate-elimination studies (paper
/// footnote 9).
pub fn duplicated_store(n_logical: usize, dup_factor: usize) -> ObjectStore {
    let mut store = ObjectStore::with_oid_prefix("dup");
    for i in 0..n_logical {
        for _ in 0..dup_factor.max(1) {
            ObjectBuilder::set("person")
                .atom("name", PersonWorkload::full_name_of(i).as_str())
                .atom("dept", "CS")
                .build_top(&mut store);
        }
    }
    store
}

/// Two bibliographic sources (the paper's §1 motivating application):
/// `lib1` exports `book` objects with `author` as 'First Last'; `lib2`
/// exports `article` objects with separate `last`/`first` subobjects and
/// occasional extra attributes. `shared` titles appear in both.
pub fn bibliography_sources(
    n_each: usize,
    shared: usize,
    seed: u64,
) -> (SemiStructuredSource, SemiStructuredSource) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s1 = ObjectStore::with_oid_prefix("b");
    let mut s2 = ObjectStore::with_oid_prefix("a");
    let shared = shared.min(n_each);
    for i in 0..n_each {
        let title = format!("Title {i}");
        ObjectBuilder::set("book")
            .atom("title", title.as_str())
            .atom("author", PersonWorkload::full_name_of(i).as_str())
            .atom("publisher", "CSP")
            .build_top(&mut s1);
    }
    for i in 0..n_each {
        // The first `shared` titles overlap with lib1.
        let id = if i < shared { i } else { n_each + i };
        let title = format!("Title {id}");
        let (f, l) = PersonWorkload::name_of(id);
        let mut b = ObjectBuilder::set("article")
            .atom("title", title.as_str())
            .child(
                ObjectBuilder::set("author")
                    .atom("last", l.as_str())
                    .atom("first", f.as_str()),
            );
        if rng.gen_bool(0.4) {
            b = b.atom("venue", "ICDE");
        }
        b.build_top(&mut s2);
    }
    (
        SemiStructuredSource::new("lib1", s1),
        SemiStructuredSource::new("lib2", s2),
    )
}

/// An electronic-mail source (the paper's §1 motivating example of
/// semi-structured data: "objects have some well defined 'fields' such as
/// the destination and source addresses, but there are others that vary
/// from one mailer to another").
///
/// Every message has `from`/`to`; `subject`, `cc`, `priority` and nested
/// `attachment` objects appear probabilistically.
pub fn email_store(n: usize, seed: u64) -> ObjectStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ObjectStore::with_oid_prefix("msg");
    for i in 0..n {
        let mut b = ObjectBuilder::set("message")
            .atom("from", format!("user{}@cs", i % 7).as_str())
            .atom("to", format!("user{}@cs", (i + 1) % 7).as_str());
        if rng.gen_bool(0.8) {
            b = b.atom("subject", format!("Re: meeting {i}").as_str());
        }
        if rng.gen_bool(0.3) {
            b = b.atom("cc", format!("user{}@cs", (i + 2) % 7).as_str());
        }
        if rng.gen_bool(0.2) {
            b = b.atom("priority", "urgent");
        }
        if rng.gen_bool(0.25) {
            b = b.child(
                ObjectBuilder::set("attachment")
                    .atom("filename", format!("paper{i}.ps").as_str())
                    .atom("bytes", ((i as i64) + 1) * 1024),
            );
        }
        b.build_top(&mut store);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::sym;

    #[test]
    fn person_workload_sizes() {
        let w = PersonWorkload {
            n_whois: 50,
            overlap: 0.4,
            ..PersonWorkload::default()
        };
        let store = w.whois_store();
        assert_eq!(store.top_level().len(), 50);
        let catalog = w.cs_catalog();
        let total: usize = catalog.tables().map(|t| t.len()).sum();
        assert_eq!(total, 40); // 20 overlapping + 20 cs-only
    }

    #[test]
    fn generation_is_deterministic() {
        let w = PersonWorkload::sized(30);
        let a = oem::printer::print_store(&w.whois_store());
        let b = oem::printer::print_store(&w.whois_store());
        assert_eq!(a, b);
    }

    #[test]
    fn irregularity_zero_means_regular() {
        let w = PersonWorkload {
            n_whois: 20,
            irregularity: 0.0,
            ..PersonWorkload::default()
        };
        let store = w.whois_store();
        for &t in store.top_level() {
            let labels: Vec<_> = store
                .children(t)
                .iter()
                .map(|&c| store.get(c).label)
                .collect();
            assert!(labels.contains(&sym("e_mail")));
            assert!(!labels.contains(&sym("nickname")));
        }
    }

    #[test]
    fn deep_store_depth() {
        let store = deep_store(3, 5);
        assert_eq!(store.top_level().len(), 3);
        // person → group^5 (year leaf inside the innermost group).
        assert_eq!(oem::path::depth(&store, store.top_level()[0]), 7);
    }

    #[test]
    fn duplicated_store_counts() {
        let store = duplicated_store(4, 3);
        assert_eq!(store.top_level().len(), 12);
        let unique = oem::eq::dedup_structural(&store, store.top_level());
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn email_store_irregular() {
        let store = email_store(40, 9);
        assert_eq!(store.top_level().len(), 40);
        // Every message has from/to; not every message has a subject.
        let mut with_subject = 0;
        for &t in store.top_level() {
            let labels: Vec<_> = store
                .children(t)
                .iter()
                .map(|&c| store.get(c).label)
                .collect();
            assert!(labels.contains(&sym("from")));
            assert!(labels.contains(&sym("to")));
            if labels.contains(&sym("subject")) {
                with_subject += 1;
            }
        }
        assert!(with_subject > 0 && with_subject < 40);
    }

    #[test]
    fn bibliography_overlap() {
        let (l1, l2) = bibliography_sources(10, 4, 7);
        assert_eq!(l1.store().top_level().len(), 10);
        assert_eq!(l2.store().top_level().len(), 10);
    }
}
