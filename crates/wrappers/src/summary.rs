//! Per-source shape summaries for whole-spec static analysis (specflow).
//!
//! A [`SchemaSummary`] describes the *shape* of the objects a source
//! exports: which top-level labels exist, which subobject labels each can
//! contain, and a value type per label drawn from a small flat lattice
//! `⊥ < int/real/string/bool/oid/object < ⊤`. Relational wrappers derive
//! summaries from their [`minidb::Catalog`] schemas (exact and closed);
//! semi-structured wrappers derive them from the current store contents
//! (exact for the data seen now). The mediator's analysis passes propagate
//! these summaries through MSL rule bodies to infer view schemas, detect
//! provably-empty joins and flag conditions on labels no source produces.

use minidb::{Catalog, ColType};
use oem::{ObjId, ObjectStore, Symbol, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Depth to which [`SchemaSummary::from_store`] explores nested sets.
/// Beyond it the summary marks the level [`LabelSummary::open`], which the
/// analysis treats as "anything may be below here".
const STORE_DEPTH_CAP: usize = 6;

/// The value-type lattice: `⊥` below the incomparable atomic/object types,
/// `⊤` above them.
///
/// `join` is used when *building* summaries (a label holding both a string
/// and an integer across objects summarizes to `⊤` — semi-structured
/// irregularity, §2 of the paper); `meet` is used when *checking* joins (two
/// occurrences of one variable with meet `⊥` can never bind the same value).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueType {
    /// No possible value (empty).
    Bottom,
    /// An atomic integer.
    Int,
    /// An atomic real.
    Real,
    /// An atomic string.
    Str,
    /// An atomic boolean.
    Bool,
    /// An object identity (oid position).
    Oid,
    /// A set of subobjects.
    Object,
    /// Any value at all.
    Top,
}

impl ValueType {
    /// Least upper bound.
    pub fn join(self, other: ValueType) -> ValueType {
        match (self, other) {
            (a, b) if a == b => a,
            (ValueType::Bottom, b) => b,
            (a, ValueType::Bottom) => a,
            _ => ValueType::Top,
        }
    }

    /// Greatest lower bound.
    pub fn meet(self, other: ValueType) -> ValueType {
        match (self, other) {
            (a, b) if a == b => a,
            (ValueType::Top, b) => b,
            (a, ValueType::Top) => a,
            _ => ValueType::Bottom,
        }
    }

    /// Can a single value inhabit both types? (`meet ≠ ⊥`.)
    pub fn compatible(self, other: ValueType) -> bool {
        self.meet(other) != ValueType::Bottom
    }

    /// The type of a concrete OEM value.
    pub fn of_value(v: &Value) -> ValueType {
        match v {
            Value::Str(_) => ValueType::Str,
            Value::Int(_) => ValueType::Int,
            Value::RealBits(_) => ValueType::Real,
            Value::Bool(_) => ValueType::Bool,
            Value::Set(_) => ValueType::Object,
        }
    }

    /// The type of a relational column.
    pub fn of_coltype(t: ColType) -> ValueType {
        match t {
            ColType::Str => ValueType::Str,
            ColType::Int => ValueType::Int,
            ColType::Real => ValueType::Real,
            ColType::Bool => ValueType::Bool,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValueType::Bottom => "none",
            ValueType::Int => "integer",
            ValueType::Real => "real",
            ValueType::Str => "string",
            ValueType::Bool => "boolean",
            ValueType::Oid => "oid",
            ValueType::Object => "object",
            ValueType::Top => "any",
        })
    }
}

/// What is known about the objects carrying one label.
#[derive(Clone, PartialEq, Debug)]
pub struct LabelSummary {
    /// Join of the value types seen (or declared) under this label.
    pub value_type: ValueType,
    /// Known subobject labels, for set-valued objects.
    pub children: BTreeMap<Symbol, LabelSummary>,
    /// When `true`, `children` may be incomplete (depth cap reached, or the
    /// shape is not fully known); absence of a label then proves nothing.
    pub open: bool,
}

impl LabelSummary {
    /// A leaf summary for an atomic type.
    pub fn atomic(t: ValueType) -> LabelSummary {
        LabelSummary {
            value_type: t,
            children: BTreeMap::new(),
            open: false,
        }
    }

    /// The empty (bottom) summary, ready to be joined into.
    pub fn bottom() -> LabelSummary {
        LabelSummary::atomic(ValueType::Bottom)
    }

    /// A set-valued summary with the given known children, closed.
    pub fn object(children: BTreeMap<Symbol, LabelSummary>) -> LabelSummary {
        LabelSummary {
            value_type: ValueType::Object,
            children,
            open: false,
        }
    }
}

/// Shape summary of one source: its known top-level labels.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SchemaSummary {
    /// Top-level label → summary of the objects carrying it.
    pub labels: BTreeMap<Symbol, LabelSummary>,
    /// When `true`, `labels` may be incomplete and absence proves nothing.
    pub open: bool,
}

impl SchemaSummary {
    /// The summary of a relational catalog: one top-level (set-valued)
    /// label per table, one atomic child per column. Exact and closed —
    /// relational sources export precisely their schema.
    pub fn from_catalog(catalog: &Catalog) -> SchemaSummary {
        let mut labels = BTreeMap::new();
        for table in catalog.tables() {
            let schema = table.schema();
            let children = schema
                .columns()
                .map(|(name, ty)| {
                    (
                        Symbol::intern(name),
                        LabelSummary::atomic(ValueType::of_coltype(ty)),
                    )
                })
                .collect();
            labels.insert(
                Symbol::intern(schema.name()),
                LabelSummary::object(children),
            );
        }
        SchemaSummary {
            labels,
            open: false,
        }
    }

    /// The summary of a semi-structured store's current contents: every
    /// top-level object contributes its label, value type and (recursively,
    /// to a depth cap) its subobject labels. Closed with respect to the
    /// data the source holds *now* — except that a store that is empty
    /// right now summarizes as *open* (its future shape is unknown, so
    /// absence proves nothing).
    pub fn from_store(store: &ObjectStore) -> SchemaSummary {
        let mut labels = BTreeMap::new();
        for &t in store.top_level() {
            add_object(&mut labels, store, t, STORE_DEPTH_CAP);
        }
        SchemaSummary {
            open: labels.is_empty(),
            labels,
        }
    }

    /// The summary for `label`, if known.
    pub fn label(&self, label: Symbol) -> Option<&LabelSummary> {
        self.labels.get(&label)
    }
}

fn add_object(
    map: &mut BTreeMap<Symbol, LabelSummary>,
    store: &ObjectStore,
    id: ObjId,
    depth: usize,
) {
    let obj = store.get(id);
    let entry = map.entry(obj.label).or_insert_with(LabelSummary::bottom);
    entry.value_type = entry.value_type.join(ValueType::of_value(&obj.value));
    if matches!(obj.value, Value::Set(_)) {
        if depth == 0 {
            entry.open = true;
        } else {
            for &c in store.children(id) {
                add_object(&mut entry.children, store, c, depth - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::parser::parse_store;
    use oem::sym;

    #[test]
    fn lattice_laws() {
        use ValueType::*;
        assert_eq!(Int.join(Int), Int);
        assert_eq!(Int.join(Str), Top);
        assert_eq!(Bottom.join(Real), Real);
        assert_eq!(Int.meet(Int), Int);
        assert_eq!(Int.meet(Str), Bottom);
        assert_eq!(Top.meet(Oid), Oid);
        assert!(Int.compatible(Top));
        assert!(!Int.compatible(Str));
        assert_eq!(Object.to_string(), "object");
    }

    #[test]
    fn catalog_summary_is_exact_and_closed() {
        let summary = SchemaSummary::from_catalog(&crate::scenario::cs_catalog());
        assert!(!summary.open);
        let student = summary.label(sym("student")).unwrap();
        assert_eq!(student.value_type, ValueType::Object);
        assert!(!student.open);
        assert_eq!(
            student.children.get(&sym("year")).unwrap().value_type,
            ValueType::Int
        );
        assert_eq!(
            student.children.get(&sym("last_name")).unwrap().value_type,
            ValueType::Str
        );
        assert!(!student.children.contains_key(&sym("title")));
        let employee = summary.label(sym("employee")).unwrap();
        assert_eq!(employee.children.len(), 4);
    }

    #[test]
    fn store_summary_joins_irregular_values() {
        let store = parse_store(
            "<&p1, person, set, {&n1,&y1}>
               <&n1, name, string, 'Joe'>
               <&y1, year, integer, 3>
             <&p2, person, set, {&n2,&y2}>
               <&n2, name, string, 'Nick'>
               <&y2, year, string, 'senior'>",
        )
        .unwrap();
        let summary = SchemaSummary::from_store(&store);
        let person = summary.label(sym("person")).unwrap();
        assert_eq!(person.value_type, ValueType::Object);
        let name = person.children.get(&sym("name")).unwrap();
        assert_eq!(name.value_type, ValueType::Str);
        // Irregular: year is integer in one object, string in another.
        let year = person.children.get(&sym("year")).unwrap();
        assert_eq!(year.value_type, ValueType::Top);
        assert!(summary.label(sym("robot")).is_none());
    }

    #[test]
    fn whois_scenario_summary() {
        let summary = SchemaSummary::from_store(crate::scenario::whois_wrapper().store());
        let person = summary.label(sym("person")).unwrap();
        for label in ["name", "dept", "relation", "e_mail"] {
            assert_eq!(
                person.children.get(&sym(label)).unwrap().value_type,
                ValueType::Str,
                "{label}"
            );
        }
        assert_eq!(
            person.children.get(&sym("year")).unwrap().value_type,
            ValueType::Int
        );
    }
}
