//! Wrapper-side instrumentation.
//!
//! The datamerge engine's [`medmaker` metrics] count traffic from the
//! mediator's point of view; the counters here are the *wrapper's* own
//! tally, visible even when a wrapper is shared between mediators or
//! queried directly. Instrumented wrappers hold a [`WrapperCounters`] and
//! bump it inside `query()`; [`crate::Wrapper::metrics`] exposes a
//! [`WrapperMetrics`] snapshot.
//!
//! Counters (all monotone, in events since construction):
//!
//! | counter                 | unit    | bumped when                        |
//! |-------------------------|---------|------------------------------------|
//! | `queries_received`      | queries | a query arrives, before any checks |
//! | `objects_exported`      | objects | per top-level result object        |
//! | `capability_rejections` | queries | the query fails the capability check (§3.5) |
//! | `faults_injected`       | queries | a fault-injection decorator failed the query on purpose |
//!
//! [`medmaker` metrics]: ../medmaker/metrics/index.html

use std::sync::atomic::{AtomicUsize, Ordering};

/// Live, thread-safe counters a wrapper bumps while answering queries
/// (`query()` takes `&self`, so these are atomics).
#[derive(Debug, Default)]
pub struct WrapperCounters {
    queries_received: AtomicUsize,
    objects_exported: AtomicUsize,
    capability_rejections: AtomicUsize,
    faults_injected: AtomicUsize,
}

impl WrapperCounters {
    /// Fresh counters, all zero.
    pub fn new() -> WrapperCounters {
        WrapperCounters::default()
    }

    /// A query arrived (count it before validation, so rejected queries
    /// are received queries too).
    pub fn query_received(&self) {
        self.queries_received.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` top-level result objects left the wrapper.
    pub fn objects_exported(&self, n: usize) {
        self.objects_exported.fetch_add(n, Ordering::Relaxed);
    }

    /// The capability check turned the query away (§3.5).
    pub fn capability_rejected(&self) {
        self.capability_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A fault-injection decorator (see [`crate::fault`]) turned the
    /// query into a deliberate failure.
    pub fn fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> WrapperMetrics {
        WrapperMetrics {
            queries_received: self.queries_received.load(Ordering::Relaxed),
            objects_exported: self.objects_exported.load(Ordering::Relaxed),
            capability_rejections: self.capability_rejections.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of a wrapper's counters (plain data, returned by
/// [`crate::Wrapper::metrics`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WrapperMetrics {
    /// Queries this wrapper has received (including rejected ones).
    pub queries_received: usize,
    /// Top-level OEM objects exported in query results.
    pub objects_exported: usize,
    /// Queries refused by the capability check.
    pub capability_rejections: usize,
    /// Queries deliberately failed by a fault-injection decorator
    /// ([`crate::fault::FaultInjectingWrapper`]).
    pub faults_injected: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = WrapperCounters::new();
        assert_eq!(c.snapshot(), WrapperMetrics::default());
        c.query_received();
        c.query_received();
        c.objects_exported(5);
        c.capability_rejected();
        c.fault_injected();
        c.fault_injected();
        let m = c.snapshot();
        assert_eq!(m.queries_received, 2);
        assert_eq!(m.objects_exported, 5);
        assert_eq!(m.capability_rejections, 1);
        assert_eq!(m.faults_injected, 2);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = WrapperCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        c.query_received();
                        c.objects_exported(2);
                    }
                });
            }
        });
        let m = c.snapshot();
        assert_eq!(m.queries_received, 400);
        assert_eq!(m.objects_exported, 800);
    }
}
