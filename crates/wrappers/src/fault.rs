//! Fault injection — deterministic source failures for testing the
//! mediator's degradation behaviour.
//!
//! The paper's §3.5 concedes that sources are autonomous; a production
//! mediator must survive a flaky or dead source. This module provides the
//! test/bench side of that story: [`FaultInjectingWrapper`] decorates any
//! [`Wrapper`] and fails (or delays) queries according to a deterministic
//! [`FaultPlan`] — fail-the-first-N, fail-every-Kth, seeded coin flips,
//! injected latency — so the executor's retry policy, deadlines and
//! circuit breaker can be exercised with *exactly* reproducible fault
//! sequences and no real sleeping.
//!
//! Time is abstracted behind [`Clock`] so latency can be virtual:
//! [`VirtualClock`] is a shared millisecond counter that the decorator
//! advances instead of sleeping, and that the datamerge engine's deadline
//! check reads instead of `Instant::now`. Tests wire the same
//! `Arc<VirtualClock>` into both, making "a source that takes 80ms against
//! a 50ms deadline" an instant, deterministic scenario.

use crate::api::{SourceStats, Wrapper, WrapperError};
use crate::capabilities::Capabilities;
use crate::metrics::{WrapperCounters, WrapperMetrics};
use msl::Rule;
use oem::{ObjectStore, Symbol};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone millisecond clock. The datamerge engine measures source-call
/// latency against per-source deadlines through this trait; production
/// uses [`SystemClock`], tests share a [`VirtualClock`] with the fault
/// injector so injected latency is visible without sleeping.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (fixed) origin.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time via [`Instant`], origin = construction.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock starting at zero now.
    pub fn new() -> SystemClock {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A manually-advanced millisecond counter, shared between a fault
/// injector (which advances it by injected latency) and the executor
/// (which reads it for deadline checks and advances it for virtual
/// backoff sleeps). Thread-safe: chains may run in parallel.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ms: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0ms.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::Relaxed)
    }
}

/// Which transient [`WrapperError`] an injected fault raises.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultKind {
    /// The source looks down ([`WrapperError::Unavailable`]).
    #[default]
    Unavailable,
    /// The source looks hung ([`WrapperError::Timeout`]).
    Timeout,
}

/// A deterministic schedule of injected faults, evaluated per query in
/// arrival order (call index 0, 1, 2, ...). All components compose: a call
/// fails if *any* active component says so.
///
/// ```
/// use wrappers::fault::FaultPlan;
/// let plan = FaultPlan::none().fail_first(2); // flaky, then recovers
/// assert!(plan.injects_fault(0) && plan.injects_fault(1));
/// assert!(!plan.injects_fault(2));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    fail_first: usize,
    fail_every: usize,
    fail_probability: f64,
    seed: u64,
    latency_ms: u64,
    kind: FaultKind,
}

impl FaultPlan {
    /// The empty plan: every query succeeds instantly.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A permanently dead source: every query fails.
    pub fn always_down() -> FaultPlan {
        FaultPlan::none().fail_first(usize::MAX)
    }

    /// Fail the first `n` queries, then recover ("flaky-then-recovers").
    pub fn fail_first(mut self, n: usize) -> FaultPlan {
        self.fail_first = n;
        self
    }

    /// Fail every `k`-th query (the k-th, 2k-th, ...; `k = 0` disables).
    pub fn fail_every(mut self, k: usize) -> FaultPlan {
        self.fail_every = k;
        self
    }

    /// Fail each query independently with probability `p`, decided by a
    /// seeded hash of the call index — deterministic for a given seed.
    pub fn flaky(mut self, p: f64, seed: u64) -> FaultPlan {
        self.fail_probability = p;
        self.seed = seed;
        self
    }

    /// Inject `ms` milliseconds of latency into every query (virtual when
    /// the decorator holds a [`VirtualClock`], real sleeping otherwise).
    pub fn latency_ms(mut self, ms: u64) -> FaultPlan {
        self.latency_ms = ms;
        self
    }

    /// Raise [`FaultKind::Timeout`] instead of the default
    /// [`FaultKind::Unavailable`].
    pub fn timeouts(mut self) -> FaultPlan {
        self.kind = FaultKind::Timeout;
        self
    }

    /// The latency this plan injects per call, in milliseconds.
    pub fn latency(&self) -> u64 {
        self.latency_ms
    }

    /// Whether the `call_index`-th query (0-based) fails under this plan.
    /// Pure and deterministic: the same plan and index always agree.
    pub fn injects_fault(&self, call_index: usize) -> bool {
        if call_index < self.fail_first {
            return true;
        }
        if self.fail_every > 0 && (call_index + 1).is_multiple_of(self.fail_every) {
            return true;
        }
        if self.fail_probability > 0.0 {
            // splitmix64 over seed ⊕ index → uniform in [0, 1).
            let mut z = self.seed ^ (call_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.fail_probability {
                return true;
            }
        }
        false
    }

    fn error(&self, source: Symbol, call_index: usize) -> WrapperError {
        match self.kind {
            FaultKind::Unavailable => WrapperError::Unavailable(format!(
                "injected fault: source '{source}' down (call #{call_index})"
            )),
            FaultKind::Timeout => WrapperError::Timeout(format!(
                "injected fault: source '{source}' hung (call #{call_index})"
            )),
        }
    }
}

/// A decorator that wraps any source and injects faults per a
/// [`FaultPlan`] — the test double for an unreliable network source.
/// Capabilities, statistics and name pass through to the inner wrapper;
/// [`Wrapper::metrics`] reports the decorator's own counters (including
/// `faults_injected`).
pub struct FaultInjectingWrapper {
    inner: Arc<dyn Wrapper>,
    plan: FaultPlan,
    clock: Option<Arc<VirtualClock>>,
    calls: AtomicUsize,
    counters: WrapperCounters,
}

impl FaultInjectingWrapper {
    /// Decorate `inner` with `plan`. Injected latency really sleeps;
    /// prefer [`FaultInjectingWrapper::with_virtual_clock`] in tests.
    pub fn new(inner: Arc<dyn Wrapper>, plan: FaultPlan) -> FaultInjectingWrapper {
        FaultInjectingWrapper {
            inner,
            plan,
            clock: None,
            calls: AtomicUsize::new(0),
            counters: WrapperCounters::new(),
        }
    }

    /// Make injected latency virtual: instead of sleeping, each query
    /// advances `clock` by the plan's latency. Share the same clock with
    /// the executor's deadline check for instant, deterministic tests.
    pub fn with_virtual_clock(mut self, clock: Arc<VirtualClock>) -> FaultInjectingWrapper {
        self.clock = Some(clock);
        self
    }

    /// Queries that have arrived at the decorator so far.
    pub fn calls_seen(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// The plan this decorator follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Wrapper for FaultInjectingWrapper {
    fn name(&self) -> Symbol {
        self.inner.name()
    }

    fn capabilities(&self) -> &Capabilities {
        self.inner.capabilities()
    }

    fn stats(&self) -> Option<SourceStats> {
        self.inner.stats()
    }

    fn metrics(&self) -> Option<WrapperMetrics> {
        Some(self.counters.snapshot())
    }

    fn schema_summary(&self) -> Option<crate::summary::SchemaSummary> {
        self.inner.schema_summary()
    }

    fn query(&self, q: &Rule) -> Result<ObjectStore, WrapperError> {
        let call_index = self.calls.fetch_add(1, Ordering::Relaxed);
        self.counters.query_received();
        if self.plan.latency_ms > 0 {
            match &self.clock {
                Some(c) => c.advance(self.plan.latency_ms),
                None => std::thread::sleep(std::time::Duration::from_millis(self.plan.latency_ms)),
            }
        }
        if self.plan.injects_fault(call_index) {
            self.counters.fault_injected();
            return Err(self.plan.error(self.inner.name(), call_index));
        }
        let result = self.inner.query(q)?;
        self.counters.objects_exported(result.top_level().len());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::whois_wrapper;
    use msl::parse_query;

    fn decorated(plan: FaultPlan) -> FaultInjectingWrapper {
        FaultInjectingWrapper::new(Arc::new(whois_wrapper()), plan)
    }

    #[test]
    fn fail_first_n_then_recovers() {
        let w = decorated(FaultPlan::none().fail_first(2));
        let q = parse_query("X :- X:<person {}>@whois").unwrap();
        assert!(matches!(
            w.query(&q).unwrap_err(),
            WrapperError::Unavailable(_)
        ));
        assert!(w.query(&q).is_err());
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 2);
        let m = w.metrics().unwrap();
        assert_eq!(m.queries_received, 3);
        assert_eq!(m.faults_injected, 2);
        assert_eq!(m.objects_exported, 2);
        assert_eq!(w.calls_seen(), 3);
    }

    #[test]
    fn fail_every_kth() {
        let plan = FaultPlan::none().fail_every(3);
        let pattern: Vec<bool> = (0..9).map(|i| plan.injects_fault(i)).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn always_down_and_timeout_kind() {
        let plan = FaultPlan::always_down().timeouts();
        assert!(plan.injects_fault(0) && plan.injects_fault(1_000_000));
        let w = decorated(plan);
        let q = parse_query("X :- X:<person {}>@whois").unwrap();
        let err = w.query(&q).unwrap_err();
        assert!(matches!(err, WrapperError::Timeout(_)), "{err}");
        assert!(err.is_transient());
    }

    #[test]
    fn seeded_flakiness_is_deterministic() {
        let a = FaultPlan::none().flaky(0.5, 42);
        let b = FaultPlan::none().flaky(0.5, 42);
        let seq_a: Vec<bool> = (0..64).map(|i| a.injects_fault(i)).collect();
        let seq_b: Vec<bool> = (0..64).map(|i| b.injects_fault(i)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same schedule");
        let fails = seq_a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fails), "p=0.5 over 64 calls: {fails}");
        // A different seed gives a different schedule.
        let c = FaultPlan::none().flaky(0.5, 43);
        let seq_c: Vec<bool> = (0..64).map(|i| c.injects_fault(i)).collect();
        assert_ne!(seq_a, seq_c);
        // Extremes are exact.
        assert!((0..64).all(|i| FaultPlan::none().flaky(1.0, 7).injects_fault(i)));
        assert!(!(0..64).any(|i| FaultPlan::none().injects_fault(i)));
    }

    #[test]
    fn virtual_latency_advances_shared_clock_without_sleeping() {
        let clock = Arc::new(VirtualClock::new());
        let w = decorated(FaultPlan::none().latency_ms(80)).with_virtual_clock(Arc::clone(&clock));
        let q = parse_query("X :- X:<person {}>@whois").unwrap();
        let wall = Instant::now();
        w.query(&q).unwrap();
        w.query(&q).unwrap();
        assert_eq!(clock.now_ms(), 160);
        assert!(wall.elapsed().as_millis() < 80, "latency must be virtual");
    }

    #[test]
    fn passthrough_of_name_caps_stats() {
        let w = decorated(FaultPlan::none());
        assert_eq!(w.name().as_str(), "whois");
        assert!(w.capabilities().wildcards);
        assert!(w.stats().is_none()); // whois exposes none by default
        assert_eq!(w.plan(), &FaultPlan::none());
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
