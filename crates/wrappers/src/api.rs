//! The wrapper interface.
//!
//! A wrapper accepts an MSL query — a single rule whose tail patterns refer
//! to this source — and returns an [`ObjectStore`] whose top-level objects
//! are the constructed results. This mirrors the paper's architecture: the
//! MSI's query and parameterized-query nodes send source queries like `Qw`
//! and `Qcs` (§3.4) and receive OEM objects back.

use crate::capabilities::Capabilities;
use msl::{Rule, TailItem};
use oem::{ObjectStore, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// Errors a wrapper can raise.
///
/// The paper's §3.5 concedes that sources are autonomous: some refuse
/// query features ([`WrapperError::Unsupported`]), and — in any deployment
/// beyond the paper's demo — some are intermittently unreachable or slow.
/// The *transient* variants ([`WrapperError::Unavailable`],
/// [`WrapperError::Timeout`]) tell the mediator that retrying may succeed;
/// the datamerge engine's retry policy acts only on those (see
/// [`WrapperError::is_transient`]).
#[derive(Clone, PartialEq, Debug)]
pub enum WrapperError {
    /// The query uses a feature this source does not support (§3.5). The
    /// planner reacts by keeping the condition in the mediator (client-side
    /// filter).
    Unsupported(String),
    /// The query was malformed for this wrapper (e.g. referencing another
    /// source, or a non-pattern tail).
    BadQuery(String),
    /// Construction of result objects failed.
    Construct(String),
    /// The source is unreachable (down, refusing connections). Transient:
    /// a later attempt may succeed.
    Unavailable(String),
    /// The source did not answer within its deadline. Transient: a later
    /// attempt may succeed.
    Timeout(String),
}

impl WrapperError {
    /// Whether the failure is transient — i.e. retrying the same query
    /// against the same source may succeed. Permanent errors (unsupported
    /// features, malformed queries, construction bugs) never are.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            WrapperError::Unavailable(_) | WrapperError::Timeout(_)
        )
    }
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapperError::Unsupported(msg) => write!(f, "unsupported by source: {msg}"),
            WrapperError::BadQuery(msg) => write!(f, "bad wrapper query: {msg}"),
            WrapperError::Construct(msg) => write!(f, "result construction failed: {msg}"),
            WrapperError::Unavailable(msg) => write!(f, "source unavailable: {msg}"),
            WrapperError::Timeout(msg) => write!(f, "source timed out: {msg}"),
        }
    }
}

impl std::error::Error for WrapperError {}

/// Statistics a wrapper may expose to the mediator's cost-based optimizer.
/// "When the wrappers do not provide cost and statistics information ...
/// the optimizer has to rely on ad-hoc heuristics" (§3.5) — hence
/// `Wrapper::stats` returns an `Option`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SourceStats {
    /// Number of top-level objects.
    pub top_level_count: usize,
    /// Top-level objects per top-level label.
    pub label_counts: BTreeMap<Symbol, usize>,
    /// Estimated selectivity of an equality condition on a subobject with
    /// the given label (1/distinct under the uniform assumption).
    pub eq_selectivity: BTreeMap<Symbol, f64>,
}

impl SourceStats {
    /// Top-level objects with the given label (or all, for a label that is
    /// a variable at planning time).
    pub fn count_for_label(&self, label: Option<Symbol>) -> usize {
        match label {
            Some(l) => self.label_counts.get(&l).copied().unwrap_or(0),
            None => self.top_level_count,
        }
    }

    /// Selectivity of an equality condition on subobject label `l`
    /// (defaults to 0.1 when unknown — a conventional guess).
    pub fn selectivity(&self, l: Symbol) -> f64 {
        self.eq_selectivity.get(&l).copied().unwrap_or(0.1)
    }
}

/// A source of OEM objects that answers MSL queries.
pub trait Wrapper: Send + Sync {
    /// The source's name (`cs`, `whois`, ...). Queries may reference it in
    /// `@source` annotations.
    fn name(&self) -> Symbol;

    /// What this source can evaluate.
    fn capabilities(&self) -> &Capabilities;

    /// Cost/statistics information, if the wrapper provides any.
    fn stats(&self) -> Option<SourceStats> {
        None
    }

    /// A snapshot of this wrapper's own traffic counters (see
    /// [`crate::metrics`]). `None` for uninstrumented wrappers.
    fn metrics(&self) -> Option<crate::metrics::WrapperMetrics> {
        None
    }

    /// A shape summary of this source's exported objects (labels and value
    /// types), for the mediator's whole-spec static analysis. `None` for
    /// sources whose shape is unknown — the analysis then assumes nothing
    /// about them.
    fn schema_summary(&self) -> Option<crate::summary::SchemaSummary> {
        None
    }

    /// Answer an MSL query. Tail `Match` items must refer to this source
    /// (their `@source` annotation equal to `self.name()` or absent);
    /// external predicates are not evaluated by wrappers.
    fn query(&self, q: &Rule) -> Result<ObjectStore, WrapperError>;
}

/// Shared validation helper: extract this wrapper's match patterns from a
/// query and reject foreign/unsupported shapes.
pub fn own_patterns(name: Symbol, q: &Rule) -> Result<Vec<&msl::Pattern>, WrapperError> {
    let mut out = Vec::new();
    for item in &q.tail {
        match item {
            TailItem::Match { pattern, source } => {
                if let Some(s) = source {
                    if *s != name {
                        return Err(WrapperError::BadQuery(format!(
                            "query references source '{s}' but was sent to '{name}'"
                        )));
                    }
                }
                out.push(pattern);
            }
            TailItem::External { name: pred, .. } => {
                return Err(WrapperError::BadQuery(format!(
                    "wrappers do not evaluate external predicates ({pred})"
                )));
            }
        }
    }
    if out.is_empty() {
        return Err(WrapperError::BadQuery("query has no match patterns".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_query;
    use oem::sym;

    #[test]
    fn own_patterns_accepts_own_and_unannotated() {
        let q = parse_query("X :- X:<person {<name N>}>@whois AND <dept {<x X2>}>").unwrap();
        let pats = own_patterns(sym("whois"), &q).unwrap();
        assert_eq!(pats.len(), 2);
    }

    #[test]
    fn own_patterns_rejects_foreign_source() {
        let q = parse_query("X :- X:<person {}>@cs").unwrap();
        let err = own_patterns(sym("whois"), &q).unwrap_err();
        assert!(matches!(err, WrapperError::BadQuery(_)));
    }

    #[test]
    fn own_patterns_rejects_externals() {
        let q = parse_query("X :- X:<p {<n N>}>@s AND ge(N, 3)").unwrap();
        assert!(own_patterns(sym("s"), &q).is_err());
    }

    #[test]
    fn transience_classification() {
        assert!(WrapperError::Unavailable("down".into()).is_transient());
        assert!(WrapperError::Timeout("slow".into()).is_transient());
        assert!(!WrapperError::Unsupported("year".into()).is_transient());
        assert!(!WrapperError::BadQuery("x".into()).is_transient());
        assert!(!WrapperError::Construct("x".into()).is_transient());
        let shown = WrapperError::Unavailable("whois down".into()).to_string();
        assert!(shown.contains("unavailable"), "{shown}");
        let shown = WrapperError::Timeout("80ms > 50ms".into()).to_string();
        assert!(shown.contains("timed out"), "{shown}");
    }

    #[test]
    fn stats_defaults() {
        let s = SourceStats {
            top_level_count: 10,
            label_counts: [(sym("person"), 7)].into_iter().collect(),
            eq_selectivity: [(sym("name"), 0.02)].into_iter().collect(),
        };
        assert_eq!(s.count_for_label(Some(sym("person"))), 7);
        assert_eq!(s.count_for_label(Some(sym("robot"))), 0);
        assert_eq!(s.count_for_label(None), 10);
        assert!((s.selectivity(sym("name")) - 0.02).abs() < 1e-12);
        assert!((s.selectivity(sym("zzz")) - 0.1).abs() < 1e-12);
    }
}
