//! The paper's running example, exactly as in §2:
//!
//! * the relational `cs` source — `employee(first_name, last_name, title,
//!   reports_to)` and `student(first_name, last_name, year)` (Figure 2.2);
//! * the semi-structured `whois` source (Figure 2.3);
//! * the `MS1` mediator specification text;
//! * the pure name-conversion functions behind the `decomp` external
//!   predicate.
//!
//! One documented correction: Figure 2.3 lists `<&y2, year, integer, 3>`
//! under `&p2` but omits `&y2` from `&p2`'s set value — an inconsistency in
//! the paper (its own Figure 3.6 run requires Nick's `year` to be a
//! subobject of `&p2`). We include `&y2` in the set.

use crate::relational::RelationalWrapper;
use crate::semistructured::SemiStructuredSource;
use minidb::{Catalog, ColType, Schema, Table};
use oem::parser::parse_store;
use oem::ObjectStore;

/// The MS1 mediator specification (§2), verbatim in our concrete syntax.
pub const MS1: &str = "\
<cs_person {<name N> <rel R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN)

decomp(bound, free, free) by name_to_lnfn
decomp(free, bound, bound) by lnfn_to_name
decomp(bound, bound, bound) by check_name_lnfn
";

/// The OEM object structure of the whois wrapper (Figure 2.3).
pub const WHOIS_OEM: &str = "\
<&p1, person, set, {&n1,&d1,&rel1,&elm1}>
  <&n1, name, string, 'Joe Chung'>
  <&d1, dept, string, 'CS'>
  <&rel1, relation, string, 'employee'>
  <&elm1, e_mail, string, 'chung@cs'>
<&p2, person, set, {&n2,&d2,&rel2,&y2}>
  <&n2, name, string, 'Nick Naive'>
  <&d2, dept, string, 'CS'>
  <&rel2, relation, string, 'student'>
  <&y2, year, integer, 3>
";

/// The whois object store (Figure 2.3).
pub fn whois_store() -> ObjectStore {
    parse_store(WHOIS_OEM).expect("figure 2.3 parses")
}

/// The whois wrapper. Full capabilities by default; §3.5-style
/// restrictions are layered on in the experiments.
pub fn whois_wrapper() -> SemiStructuredSource {
    SemiStructuredSource::new("whois", whois_store())
}

/// The relational catalog behind the cs wrapper (§2's two schemas with the
/// rows the paper's bindings imply: b_c1 binds Rest2 to title/reports_to of
/// Joe Chung; Qc1 finds student Nick Naive).
pub fn cs_catalog() -> Catalog {
    let mut catalog = Catalog::new();

    let mut employee = Table::new(
        Schema::new(
            "employee",
            &[
                ("first_name", ColType::Str),
                ("last_name", ColType::Str),
                ("title", ColType::Str),
                ("reports_to", ColType::Str),
            ],
        )
        .expect("employee schema"),
    );
    employee
        .insert(vec![
            "Joe".into(),
            "Chung".into(),
            "professor".into(),
            "John Hennessy".into(),
        ])
        .expect("employee row");

    let mut student = Table::new(
        Schema::new(
            "student",
            &[
                ("first_name", ColType::Str),
                ("last_name", ColType::Str),
                ("year", ColType::Int),
            ],
        )
        .expect("student schema"),
    );
    student
        .insert(vec!["Nick".into(), "Naive".into(), 3.into()])
        .expect("student row");

    catalog.add_table(employee).expect("add employee");
    catalog.add_table(student).expect("add student");
    catalog
}

/// The cs wrapper (Figure 2.2's exporter).
pub fn cs_wrapper() -> RelationalWrapper {
    RelationalWrapper::new("cs", cs_catalog())
}

/// `name_to_lnfn`: decompose a full name into (last, first). The paper's
/// convention: 'Joe Chung' ⇒ LN='Chung', FN='Joe'.
pub fn name_to_lnfn(full: &str) -> Option<(String, String)> {
    let idx = full.rfind(' ')?;
    let (first, last) = full.split_at(idx);
    let first = first.trim();
    let last = last.trim();
    if first.is_empty() || last.is_empty() {
        return None;
    }
    Some((last.to_string(), first.to_string()))
}

/// `lnfn_to_name`: compose (last, first) into a full name.
pub fn lnfn_to_name(last: &str, first: &str) -> String {
    format!("{first} {last}")
}

/// `check_name_lnfn`: all-bound check (§2 footnote 2).
pub fn check_name_lnfn(full: &str, last: &str, first: &str) -> bool {
    name_to_lnfn(full)
        .map(|(l, f)| l == last && f == first)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Wrapper;
    use msl::parse_query;
    use oem::printer::print_store;
    use oem::sym;

    #[test]
    fn whois_matches_figure_2_3() {
        let store = whois_store();
        store.validate().unwrap();
        assert_eq!(store.top_level().len(), 2);
        let printed = print_store(&store);
        assert!(printed.contains("<&n1, name, string, 'Joe Chung'>"));
        assert!(printed.contains("<&y2, year, integer, 3>"));
    }

    #[test]
    fn cs_exports_figure_2_2_shape() {
        let w = cs_wrapper();
        let q = parse_query("X :- X:<employee {}>@cs").unwrap();
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 1);
        let q = parse_query("X :- X:<student {}>@cs").unwrap();
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 1);
    }

    #[test]
    fn ms1_parses_and_validates() {
        let spec = msl::parse_spec(MS1).unwrap();
        msl::validate::validate_spec(&spec).unwrap();
        assert_eq!(spec.rules.len(), 1);
        assert_eq!(spec.externals.len(), 3);
        assert_eq!(spec.rules[0].sources(), vec![sym("whois"), sym("cs")]);
    }

    #[test]
    fn decomp_functions() {
        assert_eq!(
            name_to_lnfn("Joe Chung"),
            Some(("Chung".to_string(), "Joe".to_string()))
        );
        assert_eq!(lnfn_to_name("Chung", "Joe"), "Joe Chung");
        assert!(check_name_lnfn("Joe Chung", "Chung", "Joe"));
        assert!(!check_name_lnfn("Joe Chung", "Chung", "Bob"));
        assert_eq!(name_to_lnfn("Cher"), None);
        // Multi-part first names split at the last space.
        assert_eq!(
            name_to_lnfn("John von Neumann"),
            Some(("Neumann".to_string(), "John von".to_string()))
        );
    }
}
