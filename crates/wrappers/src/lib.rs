//! # wrappers — sources and their OEM wrappers
//!
//! "Wrappers convert data from each source into a common model ... The
//! wrappers also provide a common query language for extracting
//! information" (§1, Figure 1.1). This crate provides:
//!
//! * [`api`] — the [`api::Wrapper`] trait every source implements: accept
//!   an MSL query, return constructed OEM objects; advertise
//!   [`capabilities::Capabilities`] and optional [`api::SourceStats`].
//! * [`capabilities`] — which query features a source supports (§3.5's
//!   "limited query capabilities of the underlying sources").
//! * [`fault`] — fault injection: [`fault::FaultInjectingWrapper`]
//!   decorates any wrapper with a deterministic [`fault::FaultPlan`]
//!   (fail-first-N, fail-every-Kth, seeded flakiness, injected latency),
//!   plus the [`fault::Clock`] abstraction that lets latency and deadlines
//!   run on virtual time in tests.
//! * [`metrics`] — wrapper-side instrumentation: per-wrapper counters
//!   (queries received, objects exported, capability rejections) exposed
//!   through [`api::Wrapper::metrics`].
//! * [`relational`] — wraps a [`minidb`] catalog: every row is exported as
//!   a top-level OEM object labeled by its relation name (Figure 2.2),
//!   with equality conditions pushed down to the relational engine.
//! * [`semistructured`] — wraps a native [`oem::ObjectStore`] (the paper's
//!   "whois" facility, Figure 2.3), evaluating full MSL patterns.
//! * [`scenario`] — the paper's exact `cs` and `whois` sources plus the
//!   MS1 specification text.
//! * [`summary`] — per-source shape summaries ([`summary::SchemaSummary`])
//!   exported through [`api::Wrapper::schema_summary`] for the mediator's
//!   whole-spec static analysis (specflow).
//! * [`workload`] — synthetic source generators for tests and benchmarks.

#![warn(missing_docs)]

pub mod api;
pub mod capabilities;
pub mod eval;
pub mod fault;
pub mod metrics;
pub mod relational;
pub mod scenario;
pub mod semistructured;
pub mod summary;
pub mod workload;

pub use api::{SourceStats, Wrapper, WrapperError};
pub use capabilities::{CapViolation, Capabilities};
pub use fault::{Clock, FaultInjectingWrapper, FaultKind, FaultPlan, SystemClock, VirtualClock};
pub use metrics::{WrapperCounters, WrapperMetrics};
pub use relational::RelationalWrapper;
pub use semistructured::SemiStructuredWrapper;
pub use summary::{LabelSummary, SchemaSummary, ValueType};
