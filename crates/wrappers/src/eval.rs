//! Generic MSL query evaluation over one object store.
//!
//! Both concrete wrappers reduce to this routine: match the query's tail
//! patterns against (a materialized view of) the source, project the
//! bindings onto the head variables, eliminate duplicates (§2 footnote 3),
//! and construct one result object per surviving binding.

use crate::api::{own_patterns, WrapperError};
use engine::bindings::{dedup_bindings, Bindings};
use engine::construct::Constructor;
use engine::matcher::match_top_level;
use msl::Rule;
use oem::{ObjectStore, Symbol};

/// Evaluate `q` against `store` and construct its head objects into a
/// fresh result store (top-level). `name` is the answering source (used
/// for `@source` validation and the result oid prefix).
pub fn answer_msl_query(
    name: Symbol,
    store: &ObjectStore,
    q: &Rule,
) -> Result<ObjectStore, WrapperError> {
    let patterns = own_patterns(name, q)?;

    // Join the tail patterns left to right.
    let mut states = vec![Bindings::new()];
    for pat in patterns {
        let mut next = Vec::new();
        for b in &states {
            next.extend(match_top_level(store, pat, b));
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }

    // Project onto the head variables, then eliminate duplicate bindings.
    let mut head_vars = Vec::new();
    q.head.collect_vars(&mut head_vars);
    let projected: Vec<Bindings> = states.iter().map(|b| b.project(&head_vars)).collect();
    let surviving = dedup_bindings(projected);

    // Construct results.
    let mut out = ObjectStore::with_oid_prefix(&format!("{name}_r"));
    let mut ctor = Constructor::new(store);
    for b in &surviving {
        ctor.construct_head(&q.head, b, &mut out)
            .map_err(|e| WrapperError::Construct(e.to_string()))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_query;
    use oem::parser::parse_store;
    use oem::printer::compact;
    use oem::sym;

    #[test]
    fn answers_and_dedups() {
        let store = parse_store(
            "<&p1, person, set, {<&n1, name, 'A'> <&d1, dept, 'CS'>}>
             <&p2, person, set, {<&n2, name, 'A'> <&d2, dept, 'CS'>}>
             <&p3, person, set, {<&n3, name, 'B'> <&d3, dept, 'EE'>}>",
        )
        .unwrap();
        // Two persons named A produce ONE result (duplicate elimination on
        // projected bindings).
        let q = parse_query("<out {<who N>}> :- <person {<name N> <dept 'CS'>}>@src").unwrap();
        let res = answer_msl_query(sym("src"), &store, &q).unwrap();
        assert_eq!(res.top_level().len(), 1);
        assert_eq!(compact(&res, res.top_level()[0]), "<out {<who 'A'>}>");
    }

    #[test]
    fn empty_result_is_empty_store() {
        let store = parse_store("<&p1, person, set, {<&n1, name, 'A'>}>").unwrap();
        let q = parse_query("X :- X:<person {<name 'Z'>}>@src").unwrap();
        let res = answer_msl_query(sym("src"), &store, &q).unwrap();
        assert!(res.top_level().is_empty());
    }
}
