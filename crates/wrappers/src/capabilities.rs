//! Source query capabilities.
//!
//! §3.5: "the limited query capabilities of the underlying sources may
//! prohibit even simple algebraic optimizations ... For example, the source
//! whois may not be able to evaluate the condition on 'year' that appears
//! in Qw." This module lets a wrapper declare what it can evaluate; the
//! mediator's planner checks queries against the declaration and keeps
//! unsupported conditions on its own side (a client-side filter), the
//! resolution sketched in the capabilities-based-rewriting companion paper
//! \[PGH\].

use msl::{PatValue, Pattern, Rule, SetElem, TailItem, Term};
use oem::Symbol;
use std::collections::BTreeSet;

/// What query features a source supports.
#[derive(Clone, PartialEq, Debug)]
pub struct Capabilities {
    /// Variables allowed in label positions (schema retrieval)?
    pub label_variables: bool,
    /// Wildcard (any-depth) subpatterns?
    pub wildcards: bool,
    /// Conditions attached to rest variables (`| Rest:{<year 3>}`)?
    pub rest_conditions: bool,
    /// Subobject labels on which this source cannot evaluate *any*
    /// condition (value constants or bound variables). Conditions on these
    /// labels must stay in the mediator.
    pub unsupported_condition_labels: BTreeSet<Symbol>,
    /// Accepts parameterized (per-tuple) queries from the datamerge
    /// engine's parameterized-query node?
    pub parameterized: bool,
    /// Are parameterized lookups *cheap* (index-backed, sub-linear) rather
    /// than scan-per-call? The optimizer uses this as the per-call cost
    /// signal §3.5 says wrappers rarely provide: a bind join into a
    /// scan-based source costs a full scan per outer tuple.
    pub parameterized_cheap: bool,
}

impl Default for Capabilities {
    fn default() -> Capabilities {
        Capabilities::full()
    }
}

impl Capabilities {
    /// A fully capable source.
    pub fn full() -> Capabilities {
        Capabilities {
            label_variables: true,
            wildcards: true,
            rest_conditions: true,
            unsupported_condition_labels: BTreeSet::new(),
            parameterized: true,
            parameterized_cheap: false,
        }
    }

    /// A deliberately restricted profile: no wildcards, no label variables.
    /// Typical of a form-based facility like the paper's whois.
    pub fn restricted() -> Capabilities {
        Capabilities {
            label_variables: false,
            wildcards: false,
            rest_conditions: true,
            unsupported_condition_labels: BTreeSet::new(),
            parameterized: true,
            parameterized_cheap: false,
        }
    }

    /// Mark a subobject label as un-filterable at this source.
    pub fn without_condition_on(mut self, label: Symbol) -> Capabilities {
        self.unsupported_condition_labels.insert(label);
        self
    }

    /// Check a whole query. `Err(reason)` names the first violation.
    pub fn check_query(&self, q: &Rule) -> Result<(), String> {
        for item in &q.tail {
            if let TailItem::Match { pattern, .. } = item {
                self.check_pattern(pattern, true)?;
            }
        }
        Ok(())
    }

    /// Check one pattern (recursively). `top` marks the top-level pattern,
    /// whose label is the "relation" position — label variables there are
    /// judged by the same switch.
    pub fn check_pattern(&self, p: &Pattern, _top: bool) -> Result<(), String> {
        if !self.label_variables && matches!(p.label, Term::Var(_)) {
            return Err("label variables not supported by this source".into());
        }
        if let PatValue::Set(sp) = &p.value {
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(inner) => {
                        self.check_condition_label(inner)?;
                        self.check_pattern(inner, false)?;
                    }
                    SetElem::Wildcard(inner) => {
                        if !self.wildcards {
                            return Err("wildcard subpatterns not supported by this source".into());
                        }
                        self.check_condition_label(inner)?;
                        self.check_pattern(inner, false)?;
                    }
                    SetElem::Var(_) => {}
                }
            }
            if let Some(rest) = &sp.rest {
                if !rest.conditions.is_empty() && !self.rest_conditions {
                    return Err("rest-variable conditions not supported by this source".into());
                }
                for c in &rest.conditions {
                    self.check_condition_label(c)?;
                    self.check_pattern(c, false)?;
                }
            }
        }
        Ok(())
    }

    /// A *condition* is a subpattern whose value is a constant (it filters).
    /// Sources can refuse conditions on specific labels.
    fn check_condition_label(&self, p: &Pattern) -> Result<(), String> {
        let is_condition = matches!(&p.value, PatValue::Term(Term::Const(_)))
            || matches!(&p.value, PatValue::Term(Term::Param(_)));
        if !is_condition {
            return Ok(());
        }
        if let Term::Const(v) = &p.label {
            if let Some(sym) = v.as_str_sym() {
                if self.unsupported_condition_labels.contains(&sym) {
                    return Err(format!("source cannot evaluate conditions on '{sym}'"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_query;
    use oem::sym;

    #[test]
    fn full_capabilities_accept_everything() {
        let c = Capabilities::full();
        let q = parse_query("X :- X:<V {* <year 3> | R:{<gpa 4>}}>@s").unwrap();
        c.check_query(&q).unwrap();
    }

    #[test]
    fn restricted_rejects_wildcards_and_label_vars() {
        let c = Capabilities::restricted();
        let wild = parse_query("X :- X:<p {* <year 3>}>@s").unwrap();
        assert!(c.check_query(&wild).is_err());
        let labelvar = parse_query("X :- X:<V {}>@s").unwrap();
        assert!(c.check_query(&labelvar).is_err());
        let nested_labelvar = parse_query("X :- X:<p {<L V>}>@s").unwrap();
        assert!(c.check_query(&nested_labelvar).is_err());
    }

    #[test]
    fn unsupported_condition_labels() {
        // The paper's example: whois cannot evaluate the 'year' condition.
        let c = Capabilities::full().without_condition_on(sym("year"));
        let q = parse_query("X :- X:<person {<year 3>}>@whois").unwrap();
        let err = c.check_query(&q).unwrap_err();
        assert!(err.contains("year"), "{err}");
        // Retrieving year values (no condition) is still fine.
        let retrieve = parse_query("X :- X:<person {<year Y>}>@whois").unwrap();
        c.check_query(&retrieve).unwrap();
        // The condition hidden inside rest conditions is also caught (Qw!).
        let qw = parse_query("X :- X:<person {<name N> | R:{<year 3>}}>@whois").unwrap();
        assert!(c.check_query(&qw).is_err());
    }
}
