//! Source query capabilities.
//!
//! §3.5: "the limited query capabilities of the underlying sources may
//! prohibit even simple algebraic optimizations ... For example, the source
//! whois may not be able to evaluate the condition on 'year' that appears
//! in Qw." This module lets a wrapper declare what it can evaluate; the
//! mediator's planner checks queries against the declaration and keeps
//! unsupported conditions on its own side (a client-side filter), the
//! resolution sketched in the capabilities-based-rewriting companion paper
//! \[PGH\].
//!
//! Checks report **all** violations of a query as structured
//! [`CapViolation`] values (not just the first), so the mediator's lint
//! can surface every capability problem in one pass.

use msl::{PatValue, Pattern, Rule, SetElem, TailItem, Term};
use oem::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// What query features a source supports.
#[derive(Clone, PartialEq, Debug)]
pub struct Capabilities {
    /// Variables allowed in label positions (schema retrieval)?
    pub label_variables: bool,
    /// Wildcard (any-depth) subpatterns?
    pub wildcards: bool,
    /// Conditions attached to rest variables (`| Rest:{<year 3>}`)?
    pub rest_conditions: bool,
    /// Subobject labels on which this source cannot evaluate *any*
    /// condition (value constants or bound variables). Conditions on these
    /// labels must stay in the mediator.
    pub unsupported_condition_labels: BTreeSet<Symbol>,
    /// Subobject labels on which every query **must** carry a condition
    /// (a constant or `$param` value). Models form-based facilities that
    /// refuse to enumerate their contents — e.g. a whois front-end whose
    /// form requires a name to search for (the binding-pattern
    /// restrictions of Békés & Szeredi's integration system). Empty for
    /// ordinary sources.
    pub required_condition_labels: BTreeSet<Symbol>,
    /// Accepts parameterized (per-tuple) queries from the datamerge
    /// engine's parameterized-query node?
    pub parameterized: bool,
    /// Are parameterized lookups *cheap* (index-backed, sub-linear) rather
    /// than scan-per-call? The optimizer uses this as the per-call cost
    /// signal §3.5 says wrappers rarely provide: a bind join into a
    /// scan-based source costs a full scan per outer tuple.
    pub parameterized_cheap: bool,
}

/// One violation of a source's declared capabilities, found in a query.
///
/// [`CapViolation::compensable`] distinguishes violations the mediator can
/// repair by stripping the condition into a client-side filter (§3.5's
/// `year` example) from those that make the pattern unanswerable outright.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CapViolation {
    /// A variable in a label position at a source without label-variable
    /// (schema query) support.
    LabelVariable {
        /// The offending label variable.
        var: Symbol,
    },
    /// A wildcard (any-depth) subpattern at a source without wildcard
    /// support.
    Wildcard,
    /// A condition attached to a rest variable at a source that cannot
    /// evaluate rest conditions.
    RestConditions,
    /// A condition (constant- or parameter-valued subpattern) on a label
    /// the source refuses to filter on. Compensable: the planner strips
    /// the condition and the mediator post-filters.
    ConditionLabel {
        /// The label the source cannot filter on.
        label: Symbol,
    },
    /// The query carries no condition on a label the source requires one
    /// on (a form-based source's mandatory input field).
    MissingRequiredCondition {
        /// The label that must be bound.
        label: Symbol,
    },
}

impl CapViolation {
    /// Can the mediator repair this violation with a client-side filter?
    pub fn compensable(&self) -> bool {
        matches!(self, CapViolation::ConditionLabel { .. })
    }
}

impl fmt::Display for CapViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapViolation::LabelVariable { var } => write!(
                f,
                "label variables not supported by this source (schema query on '{var}')"
            ),
            CapViolation::Wildcard => {
                f.write_str("wildcard subpatterns not supported by this source")
            }
            CapViolation::RestConditions => {
                f.write_str("rest-variable conditions not supported by this source")
            }
            CapViolation::ConditionLabel { label } => {
                write!(f, "source cannot evaluate conditions on '{label}'")
            }
            CapViolation::MissingRequiredCondition { label } => {
                write!(f, "source requires a bound condition on '{label}'")
            }
        }
    }
}

impl Default for Capabilities {
    fn default() -> Capabilities {
        Capabilities::full()
    }
}

impl Capabilities {
    /// A fully capable source.
    pub fn full() -> Capabilities {
        Capabilities {
            label_variables: true,
            wildcards: true,
            rest_conditions: true,
            unsupported_condition_labels: BTreeSet::new(),
            required_condition_labels: BTreeSet::new(),
            parameterized: true,
            parameterized_cheap: false,
        }
    }

    /// A deliberately restricted profile: no wildcards, no label variables.
    /// Typical of a form-based facility like the paper's whois.
    pub fn restricted() -> Capabilities {
        Capabilities {
            label_variables: false,
            wildcards: false,
            rest_conditions: true,
            unsupported_condition_labels: BTreeSet::new(),
            required_condition_labels: BTreeSet::new(),
            parameterized: true,
            parameterized_cheap: false,
        }
    }

    /// Mark a subobject label as un-filterable at this source.
    pub fn without_condition_on(mut self, label: Symbol) -> Capabilities {
        self.unsupported_condition_labels.insert(label);
        self
    }

    /// Require every query to carry a condition on `label` (a mandatory
    /// form field).
    pub fn with_required_condition_on(mut self, label: Symbol) -> Capabilities {
        self.required_condition_labels.insert(label);
        self
    }

    /// All capability violations in a whole query, in pattern order.
    pub fn query_violations(&self, q: &Rule) -> Vec<CapViolation> {
        let mut out = Vec::new();
        for item in &q.tail {
            if let TailItem::Match { pattern, .. } = item {
                self.collect_pattern(pattern, true, &mut out);
            }
        }
        out
    }

    /// All capability violations in one pattern. `top` marks a top-level
    /// pattern, where required-condition labels are enforced.
    pub fn pattern_violations(&self, p: &Pattern, top: bool) -> Vec<CapViolation> {
        let mut out = Vec::new();
        self.collect_pattern(p, top, &mut out);
        out
    }

    /// Check a whole query. `Err(reasons)` lists **every** violation,
    /// separated by `"; "`.
    pub fn check_query(&self, q: &Rule) -> Result<(), String> {
        render_violations(self.query_violations(q))
    }

    /// Check one pattern (recursively). `top` marks the top-level pattern,
    /// whose label is the "relation" position — label variables there are
    /// judged by the same switch.
    pub fn check_pattern(&self, p: &Pattern, top: bool) -> Result<(), String> {
        render_violations(self.pattern_violations(p, top))
    }

    fn collect_pattern(&self, p: &Pattern, top: bool, out: &mut Vec<CapViolation>) {
        if !self.label_variables {
            if let Term::Var(v) = &p.label {
                out.push(CapViolation::LabelVariable { var: *v });
            }
        }
        if let PatValue::Set(sp) = &p.value {
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(inner) => {
                        self.collect_condition_label(inner, out);
                        self.collect_pattern(inner, false, out);
                    }
                    SetElem::Wildcard(inner) => {
                        if !self.wildcards {
                            out.push(CapViolation::Wildcard);
                        }
                        self.collect_condition_label(inner, out);
                        self.collect_pattern(inner, false, out);
                    }
                    SetElem::Var(_) => {}
                }
            }
            if let Some(rest) = &sp.rest {
                for c in &rest.conditions {
                    // A condition the source cannot evaluate by label gets
                    // stripped into a client-side filter before the source
                    // ever sees it, so report only the (compensable)
                    // condition-label violation for it.
                    if let Some(label) = self.unsupported_condition_label(c) {
                        out.push(CapViolation::ConditionLabel { label });
                    } else if !self.rest_conditions {
                        out.push(CapViolation::RestConditions);
                    }
                    self.collect_pattern(c, false, out);
                }
            }
        }
        if top {
            for &label in &self.required_condition_labels {
                if !pattern_has_condition_on(p, label) {
                    out.push(CapViolation::MissingRequiredCondition { label });
                }
            }
        }
    }

    /// A *condition* is a subpattern whose value is a constant or `$param`
    /// (it filters). Sources can refuse conditions on specific labels.
    fn collect_condition_label(&self, p: &Pattern, out: &mut Vec<CapViolation>) {
        if let Some(label) = self.unsupported_condition_label(p) {
            out.push(CapViolation::ConditionLabel { label });
        }
    }

    /// If `p` is a condition whose label this source cannot filter on, the
    /// label.
    fn unsupported_condition_label(&self, p: &Pattern) -> Option<Symbol> {
        condition_label(p).filter(|sym| self.unsupported_condition_labels.contains(sym))
    }
}

/// If `p` is a condition (constant- or parameter-valued subpattern) with a
/// constant label, that label.
pub fn condition_label(p: &Pattern) -> Option<Symbol> {
    let is_condition = matches!(&p.value, PatValue::Term(Term::Const(_) | Term::Param(_)));
    if !is_condition {
        return None;
    }
    let Term::Const(v) = &p.label else {
        return None;
    };
    v.as_str_sym()
}

/// Does the top-level pattern `p` carry a condition on `label`, either as
/// an explicit subpattern or as a rest condition?
pub fn pattern_has_condition_on(p: &Pattern, label: Symbol) -> bool {
    let PatValue::Set(sp) = &p.value else {
        return false;
    };
    let elem_conditions = sp.elements.iter().filter_map(|e| match e {
        SetElem::Pattern(inner) | SetElem::Wildcard(inner) => Some(inner),
        SetElem::Var(_) => None,
    });
    let rest_conditions = sp.rest.iter().flat_map(|r| r.conditions.iter());
    elem_conditions
        .chain(rest_conditions)
        .any(|c| condition_label(c) == Some(label))
}

fn render_violations(violations: Vec<CapViolation>) -> Result<(), String> {
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_query;
    use oem::sym;

    #[test]
    fn full_capabilities_accept_everything() {
        let c = Capabilities::full();
        let q = parse_query("X :- X:<V {* <year 3> | R:{<gpa 4>}}>@s").unwrap();
        c.check_query(&q).unwrap();
        assert!(c.query_violations(&q).is_empty());
    }

    #[test]
    fn restricted_rejects_wildcards_and_label_vars() {
        let c = Capabilities::restricted();
        let wild = parse_query("X :- X:<p {* <year 3>}>@s").unwrap();
        assert!(c.check_query(&wild).is_err());
        let labelvar = parse_query("X :- X:<V {}>@s").unwrap();
        assert!(c.check_query(&labelvar).is_err());
        let nested_labelvar = parse_query("X :- X:<p {<L V>}>@s").unwrap();
        assert!(c.check_query(&nested_labelvar).is_err());
    }

    #[test]
    fn unsupported_condition_labels() {
        // The paper's example: whois cannot evaluate the 'year' condition.
        let c = Capabilities::full().without_condition_on(sym("year"));
        let q = parse_query("X :- X:<person {<year 3>}>@whois").unwrap();
        let err = c.check_query(&q).unwrap_err();
        assert!(err.contains("year"), "{err}");
        // Retrieving year values (no condition) is still fine.
        let retrieve = parse_query("X :- X:<person {<year Y>}>@whois").unwrap();
        c.check_query(&retrieve).unwrap();
        // The condition hidden inside rest conditions is also caught (Qw!).
        let qw = parse_query("X :- X:<person {<name N> | R:{<year 3>}}>@whois").unwrap();
        assert!(c.check_query(&qw).is_err());
    }

    #[test]
    fn all_violations_are_collected_not_just_the_first() {
        let c = Capabilities::restricted().without_condition_on(sym("year"));
        let q = parse_query("X :- X:<V {<L W> <year 3> | R:{<gpa 4>}}>@s").unwrap();
        let vs = c.query_violations(&q);
        assert_eq!(
            vs,
            vec![
                CapViolation::LabelVariable { var: sym("V") },
                CapViolation::LabelVariable { var: sym("L") },
                CapViolation::ConditionLabel { label: sym("year") },
            ],
            "{vs:?}"
        );
        // restricted() still supports rest conditions, so <gpa 4> is fine.
        let err = c.check_query(&q).unwrap_err();
        assert!(
            err.contains("'V'") && err.contains("'L'") && err.contains("year"),
            "{err}"
        );
        assert!(vs[2].compensable() && !vs[0].compensable());
    }

    #[test]
    fn strippable_rest_condition_is_only_a_condition_label_violation() {
        // Without rest-condition support, a rest condition the planner
        // would strip anyway (unsupported label) reports as compensable.
        let mut c = Capabilities::full().without_condition_on(sym("year"));
        c.rest_conditions = false;
        let q = parse_query("X :- X:<person {<name N> | R:{<year 3> <gpa 4>}}>@s").unwrap();
        let vs = c.query_violations(&q);
        assert_eq!(
            vs,
            vec![
                CapViolation::ConditionLabel { label: sym("year") },
                CapViolation::RestConditions,
            ]
        );
    }

    #[test]
    fn required_condition_labels() {
        let c = Capabilities::restricted().with_required_condition_on(sym("name"));
        // Enumerating the form-based source without a name is refused...
        let enumerate = parse_query("X :- X:<person {<dept 'CS'>}>@whois").unwrap();
        let err = c.check_query(&enumerate).unwrap_err();
        assert!(
            err.contains("requires a bound condition on 'name'"),
            "{err}"
        );
        // ...a constant condition satisfies it...
        let by_const = parse_query("X :- X:<person {<name 'Joe Chung'>}>@whois").unwrap();
        c.check_query(&by_const).unwrap();
        // ...and so does a $param slot (bind-join parameterization) or a
        // rest condition.
        let by_param = parse_query("X :- X:<person {<name $n>}>@whois").unwrap();
        c.check_query(&by_param).unwrap();
        let by_rest = parse_query("X :- X:<person {<dept D> | R:{<name 'Joe'>}}>@whois").unwrap();
        c.check_query(&by_rest).unwrap();
        // A free variable on the label does not count as a condition.
        let free = parse_query("X :- X:<person {<name N>}>@whois").unwrap();
        assert!(c.check_query(&free).is_err());
    }
}
