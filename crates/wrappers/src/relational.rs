//! The relational source wrapper.
//!
//! "A wrapper, named cs, exports this information as a set of OEM objects
//! ... Notice how the schema information has now been incorporated into the
//! individual OEM objects" (§2, Figure 2.2): every row of relation `R`
//! becomes a top-level OEM object labeled `R` whose subobjects are the
//! row's non-null columns.
//!
//! Query evaluation pushes equality conditions down to the relational
//! engine ("push selections down", §3.3): constant-valued subpatterns with
//! constant labels translate to [`minidb`] predicates, and only the
//! surviving rows are materialized as OEM objects before generic MSL
//! matching finishes the job (label variables, shared variables, rest
//! variables).
//!
//! A label *variable* in the top-level pattern position ranges over the
//! relations of the catalog — that is how the paper's `<R {...}>@cs`
//! pattern binds `R` to `employee`/`student`, turning schema into data
//! (schematic discrepancy, §2).

use crate::api::{own_patterns, SourceStats, Wrapper, WrapperError};
use crate::capabilities::Capabilities;
use crate::metrics::{WrapperCounters, WrapperMetrics};
use engine::bindings::{dedup_bindings, Bindings};
use engine::construct::Constructor;
use engine::matcher::match_top_level;
use minidb::{Catalog, Condition, Datum, Predicate, TableStats};
use msl::{PatValue, Pattern, Rule, SetElem, Term};
use oem::{ObjectStore, Symbol, Value};
use std::collections::{BTreeMap, HashMap};

/// A relational database behind an OEM wrapper.
pub struct RelationalWrapper {
    name: Symbol,
    catalog: Catalog,
    caps: Capabilities,
    counters: WrapperCounters,
}

impl RelationalWrapper {
    /// Wrap `catalog` under source name `name`. Relational sources have a
    /// regular structure, so label variables are supported (they enumerate
    /// relations/columns) but wildcards are not — the engine's query
    /// surface has no recursive search.
    pub fn new(name: &str, catalog: Catalog) -> RelationalWrapper {
        let mut caps = Capabilities::full();
        caps.wildcards = false;
        // The engine probes hash indexes (or small tables) per call.
        caps.parameterized_cheap = true;
        RelationalWrapper {
            name: Symbol::intern(name),
            catalog,
            caps,
            counters: WrapperCounters::new(),
        }
    }

    /// Replace the capability profile (for capability-restriction studies).
    pub fn with_capabilities(mut self, caps: Capabilities) -> RelationalWrapper {
        self.caps = caps;
        self
    }

    /// The wrapped catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (schema-evolution demos).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Candidate tables for a top-level pattern: the named one, or all.
    fn candidate_tables(&self, pattern: &Pattern) -> Vec<String> {
        match &pattern.label {
            Term::Const(v) => match v.as_str_sym() {
                Some(s) => {
                    let name = s.as_str();
                    if self.catalog.table_names().any(|t| t == name) {
                        vec![name]
                    } else {
                        Vec::new()
                    }
                }
                None => Vec::new(),
            },
            Term::Var(_) => self.catalog.table_names().map(|s| s.to_string()).collect(),
            Term::Param(_) | Term::Func(..) => Vec::new(),
        }
    }

    /// Equality conditions pushable to the engine: subpatterns with a
    /// constant label (a column name) and a constant value. Returns `None`
    /// if some pushable condition references a column the table lacks — the
    /// pattern can never match a row of that table.
    fn pushdown(&self, table: &str, pattern: &Pattern) -> Option<Predicate> {
        let schema = self.catalog.table(table).ok()?.schema();
        let mut pred = Predicate::all();
        if let PatValue::Set(sp) = &pattern.value {
            for e in &sp.elements {
                let SetElem::Pattern(sub) = e else { continue };
                let (Term::Const(label), PatValue::Term(Term::Const(value))) =
                    (&sub.label, &sub.value)
                else {
                    continue;
                };
                let col = label.as_str_sym()?;
                let col_name = col.as_str();
                // A required column that is absent means no row matches.
                schema.column_index(&col_name)?;
                pred = pred.and(Condition::eq(&col_name, value_to_datum(value)?));
            }
        }
        Some(pred)
    }

    /// Materialize a row as a top-level OEM object (memoized per query so a
    /// row referenced by several tail patterns is built once).
    fn materialize_row(
        &self,
        table: &str,
        rid: usize,
        store: &mut ObjectStore,
        memo: &mut HashMap<(String, usize), oem::ObjId>,
    ) -> oem::ObjId {
        if let Some(&done) = memo.get(&(table.to_string(), rid)) {
            return done;
        }
        let t = self.catalog.table(table).expect("table exists");
        let row = t.row(rid);
        let mut kids = Vec::with_capacity(row.len());
        for (i, d) in row.iter().enumerate() {
            if d.is_null() {
                continue; // NULL ⇒ absent subobject (OEM irregularity)
            }
            let col = t.schema().column_name(i).unwrap();
            kids.push(store.insert_auto(Symbol::intern(col), datum_to_value(d)));
        }
        let top = store.insert_auto(Symbol::intern(table), Value::Set(kids));
        store.add_top(top);
        memo.insert((table.to_string(), rid), top);
        top
    }
}

/// OEM value → relational datum (for pushdown). Sets cannot be compared.
pub fn value_to_datum(v: &Value) -> Option<Datum> {
    Some(match v {
        Value::Str(s) => Datum::Str(s.as_str()),
        Value::Int(i) => Datum::Int(*i),
        Value::RealBits(b) => Datum::RealBits(*b),
        Value::Bool(b) => Datum::Bool(*b),
        Value::Set(_) => return None,
    })
}

/// Relational datum → OEM value. `Null` has no OEM equivalent (callers skip
/// null columns).
pub fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Str(s) => Value::str(s),
        Datum::Int(i) => Value::Int(*i),
        Datum::RealBits(b) => Value::RealBits(*b),
        Datum::Bool(b) => Value::Bool(*b),
        Datum::Null => unreachable!("null columns are skipped"),
    }
}

impl Wrapper for RelationalWrapper {
    fn name(&self) -> Symbol {
        self.name
    }

    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn stats(&self) -> Option<SourceStats> {
        // Relational engines know their statistics (§3.5's easy branch).
        let mut label_counts: BTreeMap<Symbol, usize> = BTreeMap::new();
        let mut eq_selectivity: BTreeMap<Symbol, f64> = BTreeMap::new();
        let mut total = 0usize;
        for t in self.catalog.tables() {
            let stats = TableStats::compute(t);
            total += stats.row_count;
            label_counts.insert(Symbol::intern(t.schema().name()), stats.row_count);
            for (i, col) in t.schema().column_names().enumerate() {
                let sel = if stats.distinct[i] > 0 {
                    1.0 / stats.distinct[i] as f64
                } else {
                    1.0
                };
                // If two tables share a column name keep the larger
                // (more conservative) selectivity.
                eq_selectivity
                    .entry(Symbol::intern(col))
                    .and_modify(|s| *s = s.max(sel))
                    .or_insert(sel);
            }
        }
        Some(SourceStats {
            top_level_count: total,
            label_counts,
            eq_selectivity,
        })
    }

    fn metrics(&self) -> Option<WrapperMetrics> {
        Some(self.counters.snapshot())
    }

    fn schema_summary(&self) -> Option<crate::summary::SchemaSummary> {
        Some(crate::summary::SchemaSummary::from_catalog(&self.catalog))
    }

    fn query(&self, q: &Rule) -> Result<ObjectStore, WrapperError> {
        self.counters.query_received();
        if let Err(e) = self.caps.check_query(q) {
            self.counters.capability_rejected();
            return Err(WrapperError::Unsupported(e));
        }
        let patterns = own_patterns(self.name, q)?;

        // Materialize, per tail pattern, only rows surviving pushdown.
        let mut view = ObjectStore::with_oid_prefix(&format!("{}_t", self.name));
        let mut memo: HashMap<(String, usize), oem::ObjId> = HashMap::new();
        for pattern in &patterns {
            for table in self.candidate_tables(pattern) {
                let Some(pred) = self.pushdown(&table, pattern) else {
                    continue;
                };
                let t = self.catalog.table(&table).expect("candidate exists");
                let rids =
                    minidb::select(t, &pred).map_err(|e| WrapperError::BadQuery(e.to_string()))?;
                for rid in rids {
                    self.materialize_row(&table, rid, &mut view, &mut memo);
                }
            }
        }

        // Finish with generic MSL matching over the materialized view.
        let mut states = vec![Bindings::new()];
        for pattern in &patterns {
            let mut next = Vec::new();
            for b in &states {
                next.extend(match_top_level(&view, pattern, b));
            }
            states = next;
            if states.is_empty() {
                break;
            }
        }
        let mut head_vars = Vec::new();
        q.head.collect_vars(&mut head_vars);
        let projected: Vec<Bindings> = states.iter().map(|b| b.project(&head_vars)).collect();
        let surviving = dedup_bindings(projected);

        let mut out = ObjectStore::with_oid_prefix(&format!("{}_r", self.name));
        let mut ctor = Constructor::new(&view);
        for b in &surviving {
            ctor.construct_head(&q.head, b, &mut out)
                .map_err(|e| WrapperError::Construct(e.to_string()))?;
        }
        self.counters.objects_exported(out.top_level().len());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{ColType, Schema, Table};
    use msl::parse_query;
    use oem::printer::compact;
    use oem::sym;

    /// The paper's cs source: employee + student (§2, Figure 2.2).
    fn cs() -> RelationalWrapper {
        let mut catalog = Catalog::new();
        let mut employee = Table::new(
            Schema::new(
                "employee",
                &[
                    ("first_name", ColType::Str),
                    ("last_name", ColType::Str),
                    ("title", ColType::Str),
                    ("reports_to", ColType::Str),
                ],
            )
            .unwrap(),
        );
        employee
            .insert_all([vec![
                "Joe".into(),
                "Chung".into(),
                "professor".into(),
                "John Hennessy".into(),
            ]])
            .unwrap();
        let mut student = Table::new(
            Schema::new(
                "student",
                &[
                    ("first_name", ColType::Str),
                    ("last_name", ColType::Str),
                    ("year", ColType::Int),
                ],
            )
            .unwrap(),
        );
        student
            .insert_all([vec!["Nick".into(), "Naive".into(), 3.into()]])
            .unwrap();
        catalog.add_table(employee).unwrap();
        catalog.add_table(student).unwrap();
        RelationalWrapper::new("cs", catalog)
    }

    #[test]
    fn exports_rows_as_figure_2_2_objects() {
        let w = cs();
        let q = parse_query("X :- X:<employee {}>@cs").unwrap();
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 1);
        assert_eq!(
            compact(&res, res.top_level()[0]),
            "<employee {<first_name 'Joe'> <last_name 'Chung'> <title 'professor'> \
             <reports_to 'John Hennessy'>}>"
        );
    }

    #[test]
    fn label_variable_ranges_over_relations() {
        // The MS1 pattern <R {<first_name FN> <last_name LN> | Rest2}>@cs:
        // R binds to relation names — data in the mediator, schema here.
        let w = cs();
        let q = parse_query(
            "<row {<rel R> <fn FN> <ln LN>}> :- \
             <R {<first_name FN> <last_name LN> | Rest2}>@cs",
        )
        .unwrap();
        let res = w.query(&q).unwrap();
        let printed: Vec<String> = res.top_level().iter().map(|&t| compact(&res, t)).collect();
        assert_eq!(printed.len(), 2);
        assert!(printed.iter().any(|s| s.contains("<rel 'employee'>")
            && s.contains("<fn 'Joe'>")
            && s.contains("<ln 'Chung'>")));
        assert!(printed
            .iter()
            .any(|s| s.contains("<rel 'student'>") && s.contains("<fn 'Nick'>")));
    }

    #[test]
    fn qcs_parameter_style_query() {
        // Qc2 of §3.4: fixed relation + last/first name conditions.
        let w = cs();
        let q = parse_query(
            "<bind_for_Rest2 Rest2> :- \
             <employee {<last_name 'Chung'> <first_name 'Joe'> | Rest2}>@cs",
        )
        .unwrap();
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 1);
        let printed = compact(&res, res.top_level()[0]);
        assert!(printed.contains("<title 'professor'>"), "{printed}");
        assert!(
            printed.contains("<reports_to 'John Hennessy'>"),
            "{printed}"
        );
        assert!(!printed.contains("first_name"), "{printed}");
    }

    #[test]
    fn condition_on_missing_column_matches_nothing() {
        let w = cs();
        let q = parse_query("X :- X:<employee {<year 3>}>@cs").unwrap();
        assert!(w.query(&q).unwrap().top_level().is_empty());
    }

    #[test]
    fn pushdown_filters_rows() {
        let w = cs();
        // 'student' with year 3 exists; year 4 does not.
        let hit = parse_query("X :- X:<student {<year 3>}>@cs").unwrap();
        assert_eq!(w.query(&hit).unwrap().top_level().len(), 1);
        let miss = parse_query("X :- X:<student {<year 4>}>@cs").unwrap();
        assert!(w.query(&miss).unwrap().top_level().is_empty());
    }

    #[test]
    fn nulls_become_absent_subobjects() {
        let mut catalog = Catalog::new();
        let mut t = Table::new(
            Schema::new("person", &[("name", ColType::Str), ("email", ColType::Str)]).unwrap(),
        );
        t.insert(vec!["A".into(), Datum::Null]).unwrap();
        t.insert(vec!["B".into(), "b@x".into()]).unwrap();
        catalog.add_table(t).unwrap();
        let w = RelationalWrapper::new("src", catalog);
        let q = parse_query("X :- X:<person {<email E>}>@src").unwrap();
        // Only B has an email subobject.
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 1);
        assert!(compact(&res, res.top_level()[0]).contains("'B'"));
    }

    #[test]
    fn stats_reported() {
        let w = cs();
        let s = w.stats().unwrap();
        assert_eq!(s.top_level_count, 2);
        assert_eq!(s.label_counts.get(&sym("employee")), Some(&1));
        assert_eq!(s.label_counts.get(&sym("student")), Some(&1));
        assert!(s.eq_selectivity.contains_key(&sym("last_name")));
    }

    #[test]
    fn wildcards_rejected() {
        let w = cs();
        let q = parse_query("X :- X:<employee {* <title T>}>@cs").unwrap();
        assert!(matches!(w.query(&q), Err(WrapperError::Unsupported(_))));
    }

    #[test]
    fn metrics_count_traffic() {
        let w = cs();
        let q = parse_query("X :- X:<employee {}>@cs").unwrap();
        w.query(&q).unwrap();
        let rejected = parse_query("X :- X:<employee {* <title T>}>@cs").unwrap();
        w.query(&rejected).unwrap_err();
        let m = w.metrics().unwrap();
        assert_eq!(m.queries_received, 2);
        assert_eq!(m.objects_exported, 1);
        assert_eq!(m.capability_rejections, 1);
    }

    #[test]
    fn schema_evolution_new_column_flows_through() {
        // Adding a 'birthday' column requires no wrapper/mediator change:
        // it simply appears as one more subobject.
        let mut catalog = Catalog::new();
        let mut t = Table::new(
            Schema::new(
                "employee",
                &[
                    ("first_name", ColType::Str),
                    ("last_name", ColType::Str),
                    ("birthday", ColType::Str),
                ],
            )
            .unwrap(),
        );
        t.insert(vec!["Joe".into(), "Chung".into(), "1970-01-01".into()])
            .unwrap();
        catalog.add_table(t).unwrap();
        let w = RelationalWrapper::new("cs", catalog);
        let q = parse_query("<out {Rest}> :- <employee {<first_name 'Joe'> | Rest}>@cs").unwrap();
        let res = w.query(&q).unwrap();
        let printed = compact(&res, res.top_level()[0]);
        assert!(printed.contains("<birthday '1970-01-01'>"), "{printed}");
    }
}
