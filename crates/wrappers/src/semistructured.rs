//! The semi-structured source wrapper.
//!
//! Wraps a native [`ObjectStore`] — irregular objects with no schema, like
//! the paper's university "whois" facility (Figure 2.3). Evaluation is
//! full MSL pattern matching, optionally restricted by a
//! [`Capabilities`] profile (e.g. "cannot evaluate conditions on `year`",
//! the §3.5 example).

use crate::api::{SourceStats, Wrapper, WrapperError};
use crate::capabilities::Capabilities;
use crate::eval::answer_msl_query;
use crate::metrics::{WrapperCounters, WrapperMetrics};
use msl::Rule;
use oem::{ObjectStore, Symbol};
use std::collections::BTreeMap;

/// A source holding OEM objects directly.
pub struct SemiStructuredSource {
    name: Symbol,
    store: ObjectStore,
    caps: Capabilities,
    provide_stats: bool,
    counters: WrapperCounters,
}

/// Alias used throughout docs/tests.
pub type SemiStructuredWrapper = SemiStructuredSource;

impl SemiStructuredSource {
    /// A fully-capable source named `name` over `store`. By default it
    /// provides **no** statistics — the paper treats that as the common
    /// case for loosely structured facilities (§3.5).
    pub fn new(name: &str, store: ObjectStore) -> SemiStructuredSource {
        SemiStructuredSource {
            name: Symbol::intern(name),
            store,
            caps: Capabilities::full(),
            provide_stats: false,
            counters: WrapperCounters::new(),
        }
    }

    /// Replace the capability profile.
    pub fn with_capabilities(mut self, caps: Capabilities) -> SemiStructuredSource {
        self.caps = caps;
        self
    }

    /// Make the wrapper compute and expose statistics.
    pub fn with_stats(mut self) -> SemiStructuredSource {
        self.provide_stats = true;
        self
    }

    /// Direct access to the underlying store (tests, experiments).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable access (schema-evolution demos add attributes at runtime).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    fn compute_stats(&self) -> SourceStats {
        let mut label_counts: BTreeMap<Symbol, usize> = BTreeMap::new();
        for &t in self.store.top_level() {
            *label_counts.entry(self.store.get(t).label).or_insert(0) += 1;
        }
        // Distinct values per subobject label across top-level children.
        let mut values: BTreeMap<Symbol, std::collections::HashSet<oem::Value>> = BTreeMap::new();
        for &t in self.store.top_level() {
            for &c in self.store.children(t) {
                let obj = self.store.get(c);
                if obj.value.is_atomic() {
                    values
                        .entry(obj.label)
                        .or_default()
                        .insert(obj.value.clone());
                }
            }
        }
        // Uniform assumption: an equality condition on label l keeps
        // 1/distinct(l) of the objects.
        let eq_selectivity = values
            .into_iter()
            .map(|(l, set)| (l, 1.0 / set.len().max(1) as f64))
            .collect();
        SourceStats {
            top_level_count: self.store.top_level().len(),
            label_counts,
            eq_selectivity,
        }
    }
}

impl Wrapper for SemiStructuredSource {
    fn name(&self) -> Symbol {
        self.name
    }

    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn stats(&self) -> Option<SourceStats> {
        if self.provide_stats {
            Some(self.compute_stats())
        } else {
            None
        }
    }

    fn metrics(&self) -> Option<WrapperMetrics> {
        Some(self.counters.snapshot())
    }

    fn schema_summary(&self) -> Option<crate::summary::SchemaSummary> {
        Some(crate::summary::SchemaSummary::from_store(&self.store))
    }

    fn query(&self, q: &Rule) -> Result<ObjectStore, WrapperError> {
        self.counters.query_received();
        if let Err(e) = self.caps.check_query(q) {
            self.counters.capability_rejected();
            return Err(WrapperError::Unsupported(e));
        }
        let result = answer_msl_query(self.name, &self.store, q)?;
        self.counters.objects_exported(result.top_level().len());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_query;
    use oem::parser::parse_store;
    use oem::printer::compact;
    use oem::sym;

    fn whois() -> SemiStructuredSource {
        let store = parse_store(
            "<&p1, person, set, {&n1,&d1,&rel1,&elm1}>
               <&n1, name, string, 'Joe Chung'>
               <&d1, dept, string, 'CS'>
               <&rel1, relation, string, 'employee'>
               <&elm1, e_mail, string, 'chung@cs'>
             <&p2, person, set, {&n2,&d2,&rel2,&y2}>
               <&n2, name, string, 'Nick Naive'>
               <&d2, dept, string, 'CS'>
               <&rel2, relation, string, 'student'>
               <&y2, year, integer, 3>",
        )
        .unwrap();
        SemiStructuredSource::new("whois", store)
    }

    #[test]
    fn answers_qw_style_queries() {
        // Qw from §3.4 (with its rest-variable condition).
        let w = whois();
        let q = parse_query(
            "<bind_for_whois {<bind_for_N N> <bind_for_R R> <bind_for_Rest1 Rest1>}> :- \
             <person {<name N> <dept 'CS'> <relation R> | Rest1:{<year 3>}}>@whois",
        )
        .unwrap();
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 1);
        let top = res.top_level()[0];
        let printed = compact(&res, top);
        assert!(printed.contains("<bind_for_N 'Nick Naive'>"), "{printed}");
        assert!(printed.contains("<bind_for_R 'student'>"), "{printed}");
        assert!(printed.contains("<year 3>"), "{printed}");
    }

    #[test]
    fn capability_restriction_rejects() {
        let w = whois().with_capabilities(Capabilities::full().without_condition_on(sym("year")));
        let q = parse_query("X :- X:<person {<name N> | R:{<year 3>}}>@whois").unwrap();
        let err = w.query(&q).unwrap_err();
        assert!(matches!(err, WrapperError::Unsupported(_)));
        // Without the year condition the source still answers.
        let ok = parse_query("X :- X:<person {<name N>}>@whois").unwrap();
        assert_eq!(w.query(&ok).unwrap().top_level().len(), 2);
    }

    #[test]
    fn stats_disabled_by_default() {
        let w = whois();
        assert!(w.stats().is_none());
        let w = whois().with_stats();
        let s = w.stats().unwrap();
        assert_eq!(s.top_level_count, 2);
        assert_eq!(s.label_counts.get(&sym("person")), Some(&2));
        // Two distinct names → selectivity 1/2.
        assert!((s.selectivity(sym("name")) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn metrics_count_queries_exports_and_rejections() {
        let w = whois().with_capabilities(Capabilities::full().without_condition_on(sym("year")));
        let ok = parse_query("X :- X:<person {<name N>}>@whois").unwrap();
        let bad = parse_query("X :- X:<person {<name N> | R:{<year 3>}}>@whois").unwrap();
        assert_eq!(
            w.metrics().unwrap(),
            crate::metrics::WrapperMetrics::default()
        );
        w.query(&ok).unwrap();
        w.query(&bad).unwrap_err();
        let m = w.metrics().unwrap();
        assert_eq!(m.queries_received, 2);
        assert_eq!(m.objects_exported, 2); // the ok query matched 2 people
        assert_eq!(m.capability_rejections, 1);
    }

    #[test]
    fn object_variable_query_returns_whole_objects() {
        let w = whois();
        let q = parse_query("JC :- JC:<person {<name 'Joe Chung'>}>@whois").unwrap();
        let res = w.query(&q).unwrap();
        assert_eq!(res.top_level().len(), 1);
        let printed = compact(&res, res.top_level()[0]);
        assert!(printed.contains("<e_mail 'chung@cs'>"), "{printed}");
    }
}
