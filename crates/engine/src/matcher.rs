//! Matching MSL patterns against OEM object structures.
//!
//! "Intuitively, we may think of the process of 'creating' the virtual
//! objects of the mediator as pattern matching. First, we match the
//! patterns that appear in the tail against the object structure ...,
//! trying to bind the variables to object components" (§2).
//!
//! Matching is **open**: an object may have more subobjects than the
//! pattern mentions — that is how MSL tolerates structure irregularities
//! and schema evolution. A rest variable (`| Rest`) captures exactly the
//! subobjects not consumed by the explicit subpatterns of its set pattern.
//! All alternative matchings are enumerated (a subpattern may be satisfied
//! by several subobjects); callers deduplicate solutions per MSL's
//! set-oriented semantics.

use crate::bindings::{dedup_bindings, Bindings, BoundValue};
use msl::{PatValue, Pattern, SetElem, SetPattern, Term};
use oem::{path, ObjId, ObjectStore, Value};
use std::collections::BTreeSet;

/// Match `pat` against the object `id` in `store`, extending `base`.
/// Returns every consistent binding (empty vector = no match).
pub fn match_pattern(
    store: &ObjectStore,
    id: ObjId,
    pat: &Pattern,
    base: &Bindings,
) -> Vec<Bindings> {
    let obj = store.get(id);

    // Constant-field pre-checks reject before any allocation — the
    // overwhelmingly common outcome when scanning a candidate set is a
    // label mismatch, which must not cost a clone of the base bindings.
    if let Term::Const(c) = &pat.label {
        if !atomic_eq(c, &Value::Str(obj.label)) {
            return Vec::new();
        }
    }
    if let Some(Term::Const(c)) = &pat.oid {
        if !atomic_eq(c, &Value::Str(obj.oid)) {
            return Vec::new();
        }
    }
    if let PatValue::Term(Term::Const(c)) = &pat.value {
        if !atomic_eq(c, &obj.value) {
            return Vec::new();
        }
    }

    // One clone of the base; every field below extends it in place.
    let mut b = base.clone();

    // Object variable: X:<...> binds X to the object itself.
    if let Some(ov) = pat.obj_var {
        if !b.bind_mut(ov, BoundValue::Obj(id)) {
            return Vec::new();
        }
    }

    // Oid field: variables bind to the oid as a string value; constants
    // must equal it.
    if let Some(oid_term) = &pat.oid {
        if !unify_term_value(oid_term, &Value::Str(obj.oid), &mut b) {
            return Vec::new();
        }
    }

    // Label field: labels are matched as string values so that the same
    // variable can bind a label here and a value elsewhere (schematic
    // discrepancy, §2).
    if !unify_term_value(&pat.label, &Value::Str(obj.label), &mut b) {
        return Vec::new();
    }

    // Type field.
    if let Some(typ_term) = &pat.typ {
        let tv = Value::str(obj.oem_type().keyword());
        if !unify_term_value(typ_term, &tv, &mut b) {
            return Vec::new();
        }
    }

    // Value field.
    match (&pat.value, &obj.value) {
        (PatValue::Term(t), Value::Set(children)) => {
            // A variable in value position binds the set of subobjects.
            match t {
                Term::Var(v) => {
                    if b.bind_mut(*v, BoundValue::ObjSet(children.clone())) {
                        vec![b]
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            }
        }
        (PatValue::Term(t), atomic) => {
            if unify_term_value(t, atomic, &mut b) {
                vec![b]
            } else {
                Vec::new()
            }
        }
        (PatValue::Set(sp), Value::Set(children)) => match_set(store, id, children, sp, &b),
        (PatValue::Set(_), _) => Vec::new(),
    }
}

/// Match a set pattern against the children of an object.
fn match_set(
    store: &ObjectStore,
    parent: ObjId,
    children: &[ObjId],
    sp: &SetPattern,
    base: &Bindings,
) -> Vec<Bindings> {
    // Each state: bindings so far + the set of child indices consumed by
    // explicit subpatterns (needed to compute the rest).
    let mut states: Vec<(Bindings, BTreeSet<usize>)> = vec![(base.clone(), BTreeSet::new())];

    for elem in &sp.elements {
        let mut next_states = Vec::new();
        for (b, consumed) in &states {
            match elem {
                SetElem::Pattern(p) => {
                    for (i, &c) in children.iter().enumerate() {
                        for nb in match_pattern(store, c, p, b) {
                            let mut nc = consumed.clone();
                            nc.insert(i);
                            next_states.push((nb, nc));
                        }
                    }
                }
                SetElem::Wildcard(p) => {
                    // Any object strictly below the parent, at any depth.
                    // Wildcard matches do not consume direct children, so
                    // they do not affect the rest variable.
                    for d in path::descendants(store, parent).skip(1) {
                        for nb in match_pattern(store, d, p, b) {
                            next_states.push((nb, consumed.clone()));
                        }
                    }
                }
                SetElem::Var(v) => {
                    // A set-valued variable: its bound contents must all be
                    // present among the children; they are consumed.
                    let Some(BoundValue::ObjSet(ids)) = b.get(*v) else {
                        // Unbound set variables cannot be matched against
                        // data (they only make sense in rule heads).
                        continue;
                    };
                    let mut nc = consumed.clone();
                    let mut ok = true;
                    for idv in ids {
                        match children.iter().position(|c| c == idv) {
                            Some(i) => {
                                nc.insert(i);
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        next_states.push((b.clone(), nc));
                    }
                }
            }
        }
        states = next_states;
        if states.is_empty() {
            return Vec::new();
        }
    }

    // Rest variable: binds the unconsumed children; attached conditions
    // must each be satisfied by some object in the rest.
    let mut out = Vec::new();
    'state: for (b, consumed) in states {
        match &sp.rest {
            None => out.push(b),
            Some(rest) => {
                let rest_ids: Vec<ObjId> = children
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !consumed.contains(i))
                    .map(|(_, &c)| c)
                    .collect();
                let Some(with_rest) = b.bind(rest.var, BoundValue::ObjSet(rest_ids.clone())) else {
                    continue 'state;
                };
                // Conditions pushed into the rest (§3.3): each must match
                // some member of the rest set.
                let mut cond_states = vec![with_rest];
                for cond in &rest.conditions {
                    // Var-free flat conditions bind nothing, so they
                    // collapse to a membership test: the state either
                    // survives unchanged or dies. (The recursive path
                    // would yield one identical state per witness; callers
                    // deduplicate, so only the multiplicity differs.)
                    if let Some(flat) = crate::batch::FlatCond::compile(cond) {
                        if rest_ids.iter().any(|&rid| flat.matches(store, rid)) {
                            continue;
                        }
                        continue 'state;
                    }
                    let mut next = Vec::new();
                    for cb in &cond_states {
                        for &rid in &rest_ids {
                            next.extend(match_pattern(store, rid, cond, cb));
                        }
                    }
                    cond_states = next;
                    if cond_states.is_empty() {
                        continue 'state;
                    }
                }
                out.extend(cond_states);
            }
        }
    }
    out
}

/// Unify a term with an atomic OEM value, extending `b` in place. Returns
/// `false` (bindings possibly left partially extended — callers discard on
/// failure) when the term cannot unify.
fn unify_term_value(term: &Term, value: &Value, b: &mut Bindings) -> bool {
    match term {
        Term::Const(c) => atomic_eq(c, value),
        Term::Var(v) => match b.get(*v) {
            Some(BoundValue::Atom(existing)) => atomic_eq(existing, value),
            Some(_) => false,
            None => b.bind_mut(*v, BoundValue::Atom(value.clone())),
        },
        // Parameters must be substituted before matching; function terms
        // never match data.
        Term::Param(_) | Term::Func(..) => false,
    }
}

/// Atomic equality with numeric promotion (3 matches 3.0).
pub fn atomic_eq(a: &Value, b: &Value) -> bool {
    a == b || a.compare_atomic(b) == Some(std::cmp::Ordering::Equal)
}

/// Match a pattern against every top-level object of a store. Solutions
/// are deduplicated.
///
/// ```
/// use engine::bindings::Bindings;
/// let store = oem::parser::parse_store(
///     "<&p, person, set, {<&n, name, 'Ann'>}>",
/// ).unwrap();
/// let query = msl::parse_query("X :- <person {<name N>}>@s").unwrap();
/// let msl::TailItem::Match { pattern, .. } = &query.tail[0] else { unreachable!() };
/// let solutions = engine::match_top_level(&store, pattern, &Bindings::new());
/// assert_eq!(solutions.len(), 1);
/// ```
pub fn match_top_level(store: &ObjectStore, pat: &Pattern, base: &Bindings) -> Vec<Bindings> {
    let mut out = Vec::new();
    for &t in store.top_level() {
        out.extend(match_pattern(store, t, pat, base));
    }
    dedup_bindings(out)
}

/// Match a conjunction of patterns against one store (each pattern against
/// the store's top-level objects), threading bindings left to right.
pub fn match_tail_patterns(
    store: &ObjectStore,
    patterns: &[&Pattern],
    base: &Bindings,
) -> Vec<Bindings> {
    let mut states = vec![base.clone()];
    for pat in patterns {
        let mut next = Vec::new();
        for b in &states {
            next.extend(match_top_level(store, pat, b));
        }
        states = next;
        if states.is_empty() {
            break;
        }
    }
    dedup_bindings(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_query;
    use msl::TailItem;
    use oem::parser::parse_store;
    use oem::{sym, Symbol};

    /// The whois source of Figure 2.3.
    fn whois() -> ObjectStore {
        parse_store(
            "<&p1, person, set, {&n1,&d1,&rel1,&elm1}>
               <&n1, name, string, 'Joe Chung'>
               <&d1, dept, string, 'CS'>
               <&rel1, relation, string, 'employee'>
               <&elm1, e_mail, string, 'chung@cs'>
             <&p2, person, set, {&n2,&d2,&rel2,&y2}>
               <&n2, name, string, 'Nick Naive'>
               <&d2, dept, string, 'CS'>
               <&rel2, relation, string, 'student'>
               <&y2, year, integer, 3>",
        )
        .unwrap()
    }

    fn tail_pattern(query: &str) -> Pattern {
        let q = parse_query(query).unwrap();
        match q.tail.into_iter().next().unwrap() {
            TailItem::Match { pattern, .. } => pattern,
            _ => panic!("expected match item"),
        }
    }

    fn atom(b: &Bindings, var: &str) -> Value {
        b.get(sym(var)).unwrap().as_atom().unwrap().clone()
    }

    #[test]
    fn paper_binding_bw1() {
        // Matching MS1's whois pattern produces the paper's b_w1 binding:
        // N='Joe Chung', R='employee', Rest1={e_mail object}.
        let store = whois();
        let pat = tail_pattern("X :- <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 2);

        let joe = sols
            .iter()
            .find(|b| atom(b, "N") == Value::str("Joe Chung"))
            .expect("b_w1 exists");
        assert_eq!(atom(joe, "R"), Value::str("employee"));
        let rest = joe.get(sym("Rest1")).unwrap().as_obj_set().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(store.get(rest[0]).label, sym("e_mail"));

        // b_w2: Nick, student, Rest1 = {year object}.
        let nick = sols
            .iter()
            .find(|b| atom(b, "N") == Value::str("Nick Naive"))
            .expect("b_w2 exists");
        assert_eq!(atom(nick, "R"), Value::str("student"));
        let rest = nick.get(sym("Rest1")).unwrap().as_obj_set().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(store.get(rest[0]).label, sym("year"));
    }

    #[test]
    fn label_variable_binds_schema_information() {
        // Variables in label position retrieve schema information (§2,
        // "Other Features").
        let store = whois();
        let pat = tail_pattern("X :- <person {<L V>}>@whois");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        let labels: std::collections::HashSet<Value> = sols.iter().map(|b| atom(b, "L")).collect();
        assert!(labels.contains(&Value::str("name")));
        assert!(labels.contains(&Value::str("e_mail")));
        assert!(labels.contains(&Value::str("year")));
    }

    #[test]
    fn irregular_structure_tolerated() {
        // &p2 has no e_mail; a pattern requiring one matches only &p1 —
        // with no "erroneous or unexpected results".
        let store = whois();
        let pat = tail_pattern("X :- <person {<e_mail E>}>@whois");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(atom(&sols[0], "E"), Value::str("chung@cs"));
    }

    #[test]
    fn rest_can_be_empty() {
        let store = parse_store("<&p, person, set, {<&n, name, 'A'>}>").unwrap();
        let pat = tail_pattern("X :- <person {<name N> | Rest}>@s");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols[0].get(sym("Rest")).unwrap(),
            &BoundValue::ObjSet(vec![])
        );
    }

    #[test]
    fn rest_conditions_filter() {
        // Qw pushes <year 3> into Rest1: only Nick matches.
        let store = whois();
        let pat = tail_pattern(
            "X :- <person {<name N> <dept 'CS'> <relation R> | Rest1:{<year 3>}}>@whois",
        );
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(atom(&sols[0], "N"), Value::str("Nick Naive"));
    }

    #[test]
    fn object_variable_binds_object() {
        let store = whois();
        let pat = tail_pattern("X :- X:<person {<name 'Joe Chung'>}>@whois");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 1);
        let id = sols[0].get(sym("X")).unwrap().as_obj().unwrap();
        assert_eq!(store.get(id).oid, sym("p1"));
    }

    #[test]
    fn oid_field_matches_as_string() {
        let store = whois();
        let pat = tail_pattern("X :- <Oid name 'Joe Chung'>@whois");
        // names are not top-level; match against all objects directly.
        let mut sols = Vec::new();
        for id in store.ids() {
            sols.extend(match_pattern(&store, id, &pat, &Bindings::new()));
        }
        assert_eq!(sols.len(), 1);
        assert_eq!(atom(&sols[0], "Oid"), Value::str("n1"));
    }

    #[test]
    fn type_field_matching() {
        let store = whois();
        let pat = tail_pattern("X :- <person {<Oid year T 3>}>@whois");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(atom(&sols[0], "T"), Value::str("integer"));
    }

    #[test]
    fn numeric_promotion_in_value_match() {
        let store = parse_store("<&p, reading, set, {<&v, val, 3.0>}>").unwrap();
        let pat = tail_pattern("X :- <reading {<val 3>}>@s");
        assert_eq!(match_top_level(&store, &pat, &Bindings::new()).len(), 1);
    }

    #[test]
    fn wildcard_matches_at_depth() {
        let store =
            parse_store("<&p, person, set, {<&a, affil, set, {<&g, grp, set, {<&y, year, 3>}>}>}>")
                .unwrap();
        // Direct pattern fails (year is 3 levels down) ...
        let direct = tail_pattern("X :- <person {<year 3>}>@s");
        assert!(match_top_level(&store, &direct, &Bindings::new()).is_empty());
        // ... wildcard succeeds.
        let wild = tail_pattern("X :- <person {* <year Y>}>@s");
        let sols = match_top_level(&store, &wild, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(atom(&sols[0], "Y"), Value::Int(3));
    }

    #[test]
    fn wildcard_does_not_consume_rest() {
        let store = parse_store("<&p, person, set, {<&y, year, 3>}>").unwrap();
        let pat = tail_pattern("X :- <person {* <year 3> | Rest}>@s");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 1);
        // year object is still in the rest: wildcard matched it at depth 1
        // but wildcards do not consume.
        let rest = sols[0].get(sym("Rest")).unwrap().as_obj_set().unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn multiple_matches_enumerated() {
        let store =
            parse_store("<&p, person, set, {<&c1, child, 'Ann'> <&c2, child, 'Bob'>}>").unwrap();
        let pat = tail_pattern("X :- <person {<child C>}>@s");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn shared_variable_constrains_across_subpatterns() {
        let store = parse_store(
            "<&p, pair, set, {<&a, left, 'x'> <&b, right, 'x'>}>
             <&q, pair, set, {<&c, left, 'x'> <&d, right, 'y'>}>",
        )
        .unwrap();
        let pat = tail_pattern("X :- <pair {<left V> <right V>}>@s");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(atom(&sols[0], "V"), Value::str("x"));
    }

    #[test]
    fn value_variable_binds_subobject_set() {
        let store = whois();
        let pat = tail_pattern("X :- <person V>@whois");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        assert_eq!(sols.len(), 2);
        for s in &sols {
            assert!(s.get(sym("V")).unwrap().as_obj_set().unwrap().len() >= 4);
        }
    }

    #[test]
    fn set_pattern_against_atomic_value_fails() {
        let store = parse_store("<&n, name, 'Joe'>").unwrap();
        let pat = tail_pattern("X :- <name {<x 1>}>@s");
        assert!(match_top_level(&store, &pat, &Bindings::new()).is_empty());
    }

    #[test]
    fn cyclic_data_terminates() {
        let mut store = ObjectStore::new();
        let a = store
            .insert(sym("a"), sym("node"), Value::Set(vec![]))
            .unwrap();
        let b = store
            .insert(sym("b"), sym("node"), Value::Set(vec![a]))
            .unwrap();
        store.add_child(a, b).unwrap();
        store.add_top(a);
        let pat = tail_pattern("X :- <node {* <node V>}>@s");
        let sols = match_top_level(&store, &pat, &Bindings::new());
        // Both nodes are descendants of a (cycle), each binds V to a set.
        assert!(!sols.is_empty());
    }

    #[test]
    fn match_tail_patterns_joins_within_store() {
        let store = parse_store(
            "<&e1, emp, set, {<&n1, name, 'A'> <&m1, mgr, 'B'>}>
             <&e2, emp, set, {<&n2, name, 'B'> <&m2, mgr, 'C'>}>",
        )
        .unwrap();
        // Find employee X whose manager is also an employee.
        let p1 = tail_pattern("X :- <emp {<name N> <mgr M>}>@s");
        let p2 = tail_pattern("X :- <emp {<name M>}>@s");
        let sols = match_tail_patterns(&store, &[&p1, &p2], &Bindings::new());
        assert_eq!(sols.len(), 1);
        assert_eq!(atom(&sols[0], "N"), Value::str("A"));
        assert_eq!(atom(&sols[0], "M"), Value::str("B"));
    }

    #[test]
    fn bound_base_bindings_constrain() {
        let store = whois();
        let pat = tail_pattern("X :- <person {<name N>}>@whois");
        let base = Bindings::new()
            .bind(
                Symbol::intern("N"),
                BoundValue::Atom(Value::str("Nick Naive")),
            )
            .unwrap();
        let sols = match_top_level(&store, &pat, &base);
        assert_eq!(sols.len(), 1);
    }
}
