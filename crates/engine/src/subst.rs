//! Substitution: applying variable→term maps and parameter values to MSL
//! structures. Used by the view expander (applying unifiers, §3.2) and by
//! the datamerge engine's parameterized-query nodes (filling `$R`, `$LN`,
//! `$FN` slots in `Qcs`, §3.4).

use msl::{Head, PatValue, Pattern, RestSpec, Rule, SetElem, SetPattern, TailItem, Term};
use oem::{Symbol, Value};
use std::collections::HashMap;

/// A variable→term substitution.
pub type Subst = HashMap<Symbol, Term>;

/// Apply a substitution to a term. Unmapped variables stay variables.
pub fn subst_term(t: &Term, s: &Subst) -> Term {
    if s.is_empty() {
        return t.clone();
    }
    match t {
        Term::Var(v) => match s.get(v) {
            Some(mapped) => subst_term(mapped, s),
            None => t.clone(),
        },
        Term::Func(f, args) => Term::Func(*f, args.iter().map(|a| subst_term(a, s)).collect()),
        Term::Const(_) | Term::Param(_) => t.clone(),
    }
}

/// Apply a substitution to a pattern.
pub fn subst_pattern(p: &Pattern, s: &Subst) -> Pattern {
    // The unifier applies plenty of empty substitutions (rules without
    // shared variables); skip the recursive rebuild for those.
    if s.is_empty() {
        return p.clone();
    }
    Pattern {
        obj_var: p.obj_var,
        oid: p.oid.as_ref().map(|t| subst_term(t, s)),
        label: subst_term(&p.label, s),
        typ: p.typ.as_ref().map(|t| subst_term(t, s)),
        value: subst_pat_value(&p.value, s),
    }
}

/// Apply a substitution to a pattern value.
pub fn subst_pat_value(v: &PatValue, s: &Subst) -> PatValue {
    match v {
        PatValue::Term(t) => PatValue::Term(subst_term(t, s)),
        PatValue::Set(sp) => PatValue::Set(subst_set_pattern(sp, s)),
    }
}

/// Apply a substitution to a set pattern.
pub fn subst_set_pattern(sp: &SetPattern, s: &Subst) -> SetPattern {
    SetPattern {
        elements: sp
            .elements
            .iter()
            .map(|e| match e {
                SetElem::Pattern(p) => SetElem::Pattern(subst_pattern(p, s)),
                SetElem::Wildcard(p) => SetElem::Wildcard(subst_pattern(p, s)),
                SetElem::Var(v) => SetElem::Var(*v),
            })
            .collect(),
        rest: sp.rest.as_ref().map(|r| RestSpec {
            var: r.var,
            conditions: r.conditions.iter().map(|c| subst_pattern(c, s)).collect(),
        }),
    }
}

/// Apply a substitution to a whole rule.
pub fn subst_rule(r: &Rule, s: &Subst) -> Rule {
    if s.is_empty() {
        return r.clone();
    }
    Rule {
        head: match &r.head {
            Head::Var(v) => Head::Var(*v),
            Head::Pattern(p) => Head::Pattern(subst_pattern(p, s)),
        },
        tail: r.tail.iter().map(|t| subst_tail_item(t, s)).collect(),
    }
}

/// Apply a substitution to a tail item.
pub fn subst_tail_item(t: &TailItem, s: &Subst) -> TailItem {
    match t {
        TailItem::Match { pattern, source } => TailItem::Match {
            pattern: subst_pattern(pattern, s),
            source: *source,
        },
        TailItem::External { name, args } => TailItem::External {
            name: *name,
            args: args.iter().map(|a| subst_term(a, s)).collect(),
        },
    }
}

/// Replace `$name` parameters with constant values (parameterized query
/// instantiation, §3.4). Missing parameters are left in place so callers
/// can detect under-instantiation.
pub fn fill_params_term(t: &Term, params: &HashMap<Symbol, Value>) -> Term {
    match t {
        Term::Param(p) => match params.get(p) {
            Some(v) => Term::Const(v.clone()),
            None => t.clone(),
        },
        Term::Func(f, args) => Term::Func(
            *f,
            args.iter().map(|a| fill_params_term(a, params)).collect(),
        ),
        _ => t.clone(),
    }
}

/// Fill parameters throughout a pattern.
pub fn fill_params_pattern(p: &Pattern, params: &HashMap<Symbol, Value>) -> Pattern {
    Pattern {
        obj_var: p.obj_var,
        oid: p.oid.as_ref().map(|t| fill_params_term(t, params)),
        label: fill_params_term(&p.label, params),
        typ: p.typ.as_ref().map(|t| fill_params_term(t, params)),
        value: match &p.value {
            PatValue::Term(t) => PatValue::Term(fill_params_term(t, params)),
            PatValue::Set(sp) => PatValue::Set(SetPattern {
                elements: sp
                    .elements
                    .iter()
                    .map(|e| match e {
                        SetElem::Pattern(q) => SetElem::Pattern(fill_params_pattern(q, params)),
                        SetElem::Wildcard(q) => SetElem::Wildcard(fill_params_pattern(q, params)),
                        SetElem::Var(v) => SetElem::Var(*v),
                    })
                    .collect(),
                rest: sp.rest.as_ref().map(|r| RestSpec {
                    var: r.var,
                    conditions: r
                        .conditions
                        .iter()
                        .map(|c| fill_params_pattern(c, params))
                        .collect(),
                }),
            }),
        },
    }
}

/// Fill parameters throughout a rule.
pub fn fill_params_rule(r: &Rule, params: &HashMap<Symbol, Value>) -> Rule {
    if params.is_empty() {
        return r.clone();
    }
    Rule {
        head: match &r.head {
            Head::Var(v) => Head::Var(*v),
            Head::Pattern(p) => Head::Pattern(fill_params_pattern(p, params)),
        },
        tail: r
            .tail
            .iter()
            .map(|t| match t {
                TailItem::Match { pattern, source } => TailItem::Match {
                    pattern: fill_params_pattern(pattern, params),
                    source: *source,
                },
                TailItem::External { name, args } => TailItem::External {
                    name: *name,
                    args: args.iter().map(|a| fill_params_term(a, params)).collect(),
                },
            })
            .collect(),
    }
}

/// Does the structure still contain any `$param` slots?
pub fn has_params_pattern(p: &Pattern) -> bool {
    fn term_has(t: &Term) -> bool {
        match t {
            Term::Param(_) => true,
            Term::Func(_, args) => args.iter().any(term_has),
            _ => false,
        }
    }
    fn value_has(v: &PatValue) -> bool {
        match v {
            PatValue::Term(t) => term_has(t),
            PatValue::Set(sp) => {
                sp.elements.iter().any(|e| match e {
                    SetElem::Pattern(q) | SetElem::Wildcard(q) => has_params_pattern(q),
                    SetElem::Var(_) => false,
                }) || sp
                    .rest
                    .as_ref()
                    .is_some_and(|r| r.conditions.iter().any(has_params_pattern))
            }
        }
    }
    p.oid.as_ref().is_some_and(term_has)
        || term_has(&p.label)
        || p.typ.as_ref().is_some_and(term_has)
        || value_has(&p.value)
}

/// Turn the atomic bindings of `b` into a substitution (object and set
/// bindings have no term form and are skipped). Used to push already-bound
/// variables into source queries as constants.
pub fn bindings_to_subst(b: &crate::bindings::Bindings) -> Subst {
    let mut s = Subst::with_capacity(b.len());
    for (var, val) in b.iter() {
        if let crate::bindings::BoundValue::Atom(v) = val {
            s.insert(var, Term::Const(v.clone()));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_rule;
    use msl::printer;
    use oem::sym;

    #[test]
    fn subst_chases_chains() {
        let mut s = Subst::new();
        s.insert(sym("A"), Term::var("B"));
        s.insert(sym("B"), Term::str("x"));
        assert_eq!(subst_term(&Term::var("A"), &s), Term::str("x"));
    }

    #[test]
    fn subst_rule_rewrites_tail() {
        // θ1 of §3.2: N ↦ 'Joe Chung' applied to the MS1 tail.
        let rule = parse_rule(
            "<cs_person {<name N> <rel R> Rest1 Rest2}> :- \
             <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois \
             AND decomp(N, LN, FN)",
        )
        .unwrap();
        let mut s = Subst::new();
        s.insert(sym("N"), Term::str("Joe Chung"));
        let out = subst_rule(&rule, &s);
        let printed = printer::rule(&out);
        assert!(printed.contains("<name 'Joe Chung'>"), "{printed}");
        assert!(printed.contains("decomp('Joe Chung', LN, FN)"), "{printed}");
        assert!(!printed.contains("<name N>"));
    }

    #[test]
    fn fill_params_instantiates_qcs() {
        // Qcs with R='employee', LN='Chung', FN='Joe' becomes Qc2.
        let qcs = parse_rule(
            "<bind_for_Rest2 Rest2> :- <$R {<last_name $LN> <first_name $FN> | Rest2}>@cs",
        )
        .unwrap();
        let mut params = HashMap::new();
        params.insert(sym("R"), Value::str("employee"));
        params.insert(sym("LN"), Value::str("Chung"));
        params.insert(sym("FN"), Value::str("Joe"));
        let filled = fill_params_rule(&qcs, &params);
        let printed = printer::rule(&filled);
        assert!(printed.contains("<employee {"), "{printed}");
        assert!(printed.contains("<last_name 'Chung'>"), "{printed}");
        assert!(printed.contains("<first_name 'Joe'>"), "{printed}");
        if let msl::Head::Pattern(p) = &filled.head {
            assert!(!has_params_pattern(p));
        }
    }

    #[test]
    fn missing_params_left_in_place() {
        let pat = match parse_rule("X :- <$R {<a $B>}>@s").unwrap().tail.remove(0) {
            msl::TailItem::Match { pattern, .. } => pattern,
            _ => panic!(),
        };
        let mut params = HashMap::new();
        params.insert(sym("R"), Value::str("emp"));
        let filled = fill_params_pattern(&pat, &params);
        assert!(has_params_pattern(&filled));
        assert_eq!(filled.label, Term::str("emp"));
    }

    #[test]
    fn rest_conditions_substituted() {
        let rule = parse_rule("X :- X:<p {<a A> | R:{<year Y>}}>@s").unwrap();
        let mut s = Subst::new();
        s.insert(sym("Y"), Term::int(3));
        let out = subst_rule(&rule, &s);
        let printed = printer::rule(&out);
        assert!(printed.contains("R:{<year 3>}"), "{printed}");
    }
}
