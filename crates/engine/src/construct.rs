//! Constructing OEM objects from rule heads and bindings.
//!
//! "For each set of matching bindings from the tail patterns, we
//! conceptually create an object in the med view. ... When variables that
//! have been bound to sets appear inside curly braces in a rule head, the
//! first level of their contents is 'flattened out' and included in the set
//! value. ... The types are simply set to the types of the bound variables.
//! For the object-ids, any arbitrary unique strings can be used." (§2)
//!
//! **Semantic object-ids** (head oid = a function term `f(X,...)`) give the
//! constructed object an identity with "meaning beyond the mediator call":
//! two constructions with the same semantic oid **fuse** — their subobject
//! sets are unioned. This is the object-fusion mechanism of §2 "Other
//! Features" (detailed in the companion paper \[PGM\]).

use crate::bindings::{Bindings, BoundValue};
use msl::{Head, PatValue, Pattern, SetElem, Term};
use oem::{ObjId, ObjectStore, Symbol, Value};
use std::collections::HashMap;
use std::fmt;

/// Errors during head instantiation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConstructError {
    /// A head variable had no binding (validation should prevent this).
    UnboundVariable(Symbol),
    /// A term that must be an atomic string (e.g. a label) resolved to
    /// something else.
    NotAString(String),
    /// A parameter slot survived to construction time.
    UnresolvedParam(Symbol),
    /// The head shape was not constructible (e.g. a wildcard element).
    BadHead(String),
    /// An attempt to fuse an atomic object with different values.
    FusionConflict(String),
}

impl fmt::Display for ConstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructError::UnboundVariable(v) => write!(f, "unbound head variable {v}"),
            ConstructError::NotAString(t) => write!(f, "expected an atomic string, found {t}"),
            ConstructError::UnresolvedParam(p) => write!(f, "unresolved parameter ${p}"),
            ConstructError::BadHead(msg) => write!(f, "unconstructible head: {msg}"),
            ConstructError::FusionConflict(msg) => write!(f, "fusion conflict: {msg}"),
        }
    }
}

impl std::error::Error for ConstructError {}

/// A constructor instantiates rule heads into a destination store,
/// remembering semantic oids so repeated constructions fuse.
pub struct Constructor<'a> {
    /// Store the bindings' object ids refer to (the mediator's memory).
    pub src: &'a ObjectStore,
    /// Copy map shared across constructions so shared source objects stay
    /// shared in the output.
    copy_map: HashMap<ObjId, ObjId>,
    /// Semantic oid → already-constructed object.
    fused: HashMap<Symbol, ObjId>,
}

impl<'a> Constructor<'a> {
    /// A constructor reading bound objects from `src`.
    pub fn new(src: &'a ObjectStore) -> Constructor<'a> {
        Constructor {
            src,
            copy_map: HashMap::new(),
            fused: HashMap::new(),
        }
    }

    /// Instantiate a rule head under one binding, adding the object(s) to
    /// `dst` as top-level objects. Returns the root id.
    pub fn construct_head(
        &mut self,
        head: &Head,
        b: &Bindings,
        dst: &mut ObjectStore,
    ) -> Result<ObjId, ConstructError> {
        let id = match head {
            Head::Var(v) => match b.get(*v) {
                Some(BoundValue::Obj(src_id)) => self.copy_obj(*src_id, dst),
                Some(BoundValue::Atom(value)) => {
                    dst.insert_auto(Symbol::intern("result"), value.clone())
                }
                Some(BoundValue::ObjSet(ids)) => {
                    let kids: Vec<ObjId> =
                        ids.clone().iter().map(|&i| self.copy_obj(i, dst)).collect();
                    dst.insert_auto(Symbol::intern("result"), Value::Set(kids))
                }
                None => return Err(ConstructError::UnboundVariable(*v)),
            },
            Head::Pattern(p) => self.construct_pattern(p, b, dst)?,
        };
        dst.add_top(id);
        Ok(id)
    }

    /// Instantiate one head pattern under a binding.
    pub fn construct_pattern(
        &mut self,
        p: &Pattern,
        b: &Bindings,
        dst: &mut ObjectStore,
    ) -> Result<ObjId, ConstructError> {
        let label = self.resolve_string(&p.label, b)?;

        // Semantic oid?
        let semantic_oid = match &p.oid {
            Some(Term::Func(f, args)) => {
                let mut parts = Vec::with_capacity(args.len());
                for a in args {
                    parts.push(self.resolve_atom(a, b)?.render_atomic());
                }
                Some(Symbol::intern(&format!("{f}({})", parts.join(","))))
            }
            Some(Term::Const(Value::Str(s))) => Some(*s),
            Some(Term::Var(v)) => match b.get(*v) {
                Some(BoundValue::Atom(Value::Str(s))) => Some(*s),
                Some(other) => return Err(ConstructError::NotAString(format!("{other:?}"))),
                None => None, // unconstrained: generate
            },
            Some(Term::Param(p)) => return Err(ConstructError::UnresolvedParam(*p)),
            Some(Term::Const(other)) => {
                return Err(ConstructError::NotAString(other.render_atomic()))
            }
            None => None,
        };

        let value = self.construct_value(&p.value, b, dst)?;

        match semantic_oid {
            None => Ok(dst.insert_auto(label, value)),
            Some(oid) => {
                if let Some(&existing) = self.fused.get(&oid) {
                    // Fuse: union subobject sets (atomic fusion requires
                    // equal values).
                    return self.fuse_into(existing, label, value, dst, oid);
                }
                // The oid may also collide with an unrelated object in dst;
                // fall back to a generated oid in that case (oids are
                // arbitrary unless semantic).
                let id = match dst.insert(oid, label, value.clone()) {
                    Ok(id) => id,
                    Err(_) => dst.insert_auto(label, value),
                };
                self.fused.insert(oid, id);
                Ok(id)
            }
        }
    }

    fn fuse_into(
        &mut self,
        existing: ObjId,
        label: Symbol,
        value: Value,
        dst: &mut ObjectStore,
        oid: Symbol,
    ) -> Result<ObjId, ConstructError> {
        let obj = dst.get(existing);
        if obj.label != label {
            return Err(ConstructError::FusionConflict(format!(
                "semantic oid {oid} used with labels '{}' and '{label}'",
                obj.label
            )));
        }
        match (obj.value.clone(), value) {
            (Value::Set(_), Value::Set(new_kids)) => {
                // Union children, dropping structural duplicates.
                for k in new_kids {
                    let duplicate = dst
                        .children(existing)
                        .iter()
                        .any(|&c| c == k || oem::eq::struct_eq(dst, c, k));
                    if !duplicate {
                        dst.add_child(existing, k).expect("fusion target is a set");
                    }
                }
                Ok(existing)
            }
            (old, new) if old == new => Ok(existing),
            (old, new) => Err(ConstructError::FusionConflict(format!(
                "semantic oid {oid} constructed with conflicting atomic values \
                 {old:?} and {new:?}"
            ))),
        }
    }

    fn construct_value(
        &mut self,
        v: &PatValue,
        b: &Bindings,
        dst: &mut ObjectStore,
    ) -> Result<Value, ConstructError> {
        match v {
            PatValue::Term(t) => match t {
                Term::Const(c) => Ok(c.clone()),
                Term::Var(var) => match b.get(*var) {
                    Some(BoundValue::Atom(c)) => Ok(c.clone()),
                    Some(BoundValue::ObjSet(ids)) => {
                        let kids: Vec<ObjId> =
                            ids.clone().iter().map(|&i| self.copy_obj(i, dst)).collect();
                        Ok(Value::Set(kids))
                    }
                    Some(BoundValue::Obj(id)) => {
                        // A whole object in value position: splice its value.
                        let copied = self.copy_obj(*id, dst);
                        Ok(dst.get(copied).value.clone())
                    }
                    None => Err(ConstructError::UnboundVariable(*var)),
                },
                Term::Param(p) => Err(ConstructError::UnresolvedParam(*p)),
                Term::Func(..) => Err(ConstructError::BadHead(
                    "function term in value position".into(),
                )),
            },
            PatValue::Set(sp) => {
                if sp.rest.is_some() {
                    return Err(ConstructError::BadHead(
                        "rest variable in a head set pattern".into(),
                    ));
                }
                let mut kids: Vec<ObjId> = Vec::new();
                for e in &sp.elements {
                    match e {
                        SetElem::Pattern(inner) => {
                            kids.push(self.construct_pattern(inner, b, dst)?);
                        }
                        SetElem::Var(v) => match b.get(*v) {
                            // Set-bound variables are flattened one level
                            // (§2, "Creation of the Virtual Objects").
                            Some(BoundValue::ObjSet(ids)) => {
                                for &i in &ids.clone() {
                                    kids.push(self.copy_obj(i, dst));
                                }
                            }
                            Some(BoundValue::Obj(id)) => {
                                kids.push(self.copy_obj(*id, dst));
                            }
                            Some(BoundValue::Atom(a)) => {
                                return Err(ConstructError::BadHead(format!(
                                    "variable {v} is bound to atom {} but used as a \
                                     subobject",
                                    a.render_atomic()
                                )))
                            }
                            None => return Err(ConstructError::UnboundVariable(*v)),
                        },
                        SetElem::Wildcard(_) => {
                            return Err(ConstructError::BadHead(
                                "wildcard in a head set pattern".into(),
                            ))
                        }
                    }
                }
                // OEM sets have set semantics: structurally duplicate
                // subobjects collapse (e.g. a `year` object arriving from
                // both sources' rest variables appears once).
                let kids = oem::eq::dedup_structural(dst, &kids);
                Ok(Value::Set(kids))
            }
        }
    }

    fn resolve_string(&self, t: &Term, b: &Bindings) -> Result<Symbol, ConstructError> {
        match self.resolve_atom(t, b)? {
            Value::Str(s) => Ok(s),
            other => Err(ConstructError::NotAString(other.render_atomic())),
        }
    }

    fn resolve_atom(&self, t: &Term, b: &Bindings) -> Result<Value, ConstructError> {
        match t {
            Term::Const(c) => Ok(c.clone()),
            Term::Var(v) => match b.get(*v) {
                Some(BoundValue::Atom(c)) => Ok(c.clone()),
                Some(other) => Err(ConstructError::NotAString(format!("{other:?}"))),
                None => Err(ConstructError::UnboundVariable(*v)),
            },
            Term::Param(p) => Err(ConstructError::UnresolvedParam(*p)),
            Term::Func(..) => Err(ConstructError::NotAString("function term".into())),
        }
    }

    fn copy_obj(&mut self, src_id: ObjId, dst: &mut ObjectStore) -> ObjId {
        // A persistent copy map (across every construction this Constructor
        // performs) keeps source-side sharing — including interior sharing
        // between different bindings — shared in the output, and makes
        // cycles terminate.
        if let Some(&done) = self.copy_map.get(&src_id) {
            return done;
        }
        let obj = self.src.get(src_id);
        match obj.value.as_set() {
            None => {
                let new = dst.insert_auto(obj.label, obj.value.clone());
                self.copy_map.insert(src_id, new);
                new
            }
            Some(children) => {
                let new = dst.insert_auto(obj.label, Value::Set(Vec::new()));
                self.copy_map.insert(src_id, new);
                let kids: Vec<ObjId> = children.iter().map(|&c| self.copy_obj(c, dst)).collect();
                *dst.get_mut(new).value.as_set_mut().unwrap() = kids;
                new
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_top_level;
    use msl::{parse_rule, TailItem};
    use oem::parser::parse_store;
    use oem::printer::compact;
    use oem::sym;

    fn src_store() -> ObjectStore {
        parse_store(
            "<&p1, person, set, {&n1,&r1,&e1}>
               <&n1, name, string, 'Joe Chung'>
               <&r1, relation, string, 'employee'>
               <&e1, e_mail, string, 'chung@cs'>",
        )
        .unwrap()
    }

    #[test]
    fn construct_paper_style_head() {
        // Head <cs_person {<name N> <rel R> Rest1}> under b_w1-ish bindings.
        let src = src_store();
        let rule = parse_rule(
            "<cs_person {<name N> <rel R> Rest1}> :- \
             <person {<name N> <relation R> | Rest1}>@whois",
        )
        .unwrap();
        let tail_pat = match &rule.tail[0] {
            TailItem::Match { pattern, .. } => pattern,
            _ => panic!(),
        };
        let bindings = match_top_level(&src, tail_pat, &Bindings::new());
        assert_eq!(bindings.len(), 1);

        let mut dst = ObjectStore::with_oid_prefix("cp");
        let mut ctor = Constructor::new(&src);
        let id = ctor
            .construct_head(&rule.head, &bindings[0], &mut dst)
            .unwrap();
        assert_eq!(
            compact(&dst, id),
            "<cs_person {<name 'Joe Chung'> <rel 'employee'> <e_mail 'chung@cs'>}>"
        );
        assert_eq!(dst.top_level(), &[id]);
    }

    #[test]
    fn head_var_copies_whole_object() {
        let src = src_store();
        let rule = parse_rule("X :- X:<person {<name N>}>@whois").unwrap();
        let tail_pat = match &rule.tail[0] {
            TailItem::Match { pattern, .. } => pattern,
            _ => panic!(),
        };
        let bindings = match_top_level(&src, tail_pat, &Bindings::new());
        let mut dst = ObjectStore::new();
        let mut ctor = Constructor::new(&src);
        let id = ctor
            .construct_head(&rule.head, &bindings[0], &mut dst)
            .unwrap();
        assert!(oem::eq::struct_eq_cross(&src, src.top_level()[0], &dst, id));
    }

    #[test]
    fn semantic_oids_fuse_subobjects() {
        let src = src_store();
        let mut dst = ObjectStore::new();
        let mut ctor = Constructor::new(&src);

        let head = match parse_rule("<pid(N) out {<name N> <src S>}> :- <p {<x N>}>@s")
            .unwrap()
            .head
        {
            msl::Head::Pattern(p) => p,
            _ => panic!(),
        };
        let b1 = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("Ann")))
            .unwrap()
            .bind(sym("S"), BoundValue::Atom(Value::str("whois")))
            .unwrap();
        let b2 = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("Ann")))
            .unwrap()
            .bind(sym("S"), BoundValue::Atom(Value::str("cs")))
            .unwrap();
        let id1 = ctor.construct_pattern(&head, &b1, &mut dst).unwrap();
        let id2 = ctor.construct_pattern(&head, &b2, &mut dst).unwrap();
        assert_eq!(id1, id2, "same semantic oid must fuse");
        // Fused object has name + both src subobjects (name deduplicated).
        assert_eq!(dst.children(id1).len(), 3);

        let b3 = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("Bob")))
            .unwrap()
            .bind(sym("S"), BoundValue::Atom(Value::str("cs")))
            .unwrap();
        let id3 = ctor.construct_pattern(&head, &b3, &mut dst).unwrap();
        assert_ne!(id1, id3, "different semantic oids stay separate");
    }

    #[test]
    fn fusion_conflict_on_labels() {
        let src = ObjectStore::new();
        let mut dst = ObjectStore::new();
        let mut ctor = Constructor::new(&src);
        let h1 = match parse_rule("<k(N) a {<n N>}> :- <p {<n N>}>@s")
            .unwrap()
            .head
        {
            msl::Head::Pattern(p) => p,
            _ => panic!(),
        };
        let h2 = match parse_rule("<k(N) b {<n N>}> :- <p {<n N>}>@s")
            .unwrap()
            .head
        {
            msl::Head::Pattern(p) => p,
            _ => panic!(),
        };
        let b = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("x")))
            .unwrap();
        ctor.construct_pattern(&h1, &b, &mut dst).unwrap();
        let err = ctor.construct_pattern(&h2, &b, &mut dst).unwrap_err();
        assert!(matches!(err, ConstructError::FusionConflict(_)));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let src = ObjectStore::new();
        let mut dst = ObjectStore::new();
        let mut ctor = Constructor::new(&src);
        let head = match parse_rule("<out {<n N>}> :- <p {<n N>}>@s").unwrap().head {
            msl::Head::Pattern(p) => p,
            _ => panic!(),
        };
        let err = ctor
            .construct_pattern(&head, &Bindings::new(), &mut dst)
            .unwrap_err();
        assert_eq!(err, ConstructError::UnboundVariable(sym("N")));
    }

    #[test]
    fn shared_source_objects_stay_shared() {
        let mut src = ObjectStore::new();
        let shared = src.atom("addr", "Gates");
        let p1 = src.set("person", vec![shared]);
        let p2 = src.set("person", vec![shared]);
        src.add_top(p1);
        src.add_top(p2);

        let mut dst = ObjectStore::new();
        let mut ctor = Constructor::new(&src);
        let rule = parse_rule("X :- X:<person {}>@s").unwrap();
        let tail_pat = match &rule.tail[0] {
            TailItem::Match { pattern, .. } => pattern,
            _ => panic!(),
        };
        for b in match_top_level(&src, tail_pat, &Bindings::new()) {
            ctor.construct_head(&rule.head, &b, &mut dst).unwrap();
        }
        // 2 persons + 1 shared address object.
        assert_eq!(dst.len(), 3);
    }

    #[test]
    fn atoms_and_sets_in_head_values() {
        let src = ObjectStore::new();
        let mut dst = ObjectStore::new();
        let mut ctor = Constructor::new(&src);
        let head = match parse_rule("<out {<a 1> <b {<c 'x'>}>}> :- <p {<q Q>}>@s")
            .unwrap()
            .head
        {
            msl::Head::Pattern(p) => p,
            _ => panic!(),
        };
        let id = ctor
            .construct_pattern(&head, &Bindings::new(), &mut dst)
            .unwrap();
        assert_eq!(compact(&dst, id), "<out {<a 1> <b {<c 'x'>}>}>");
    }
}
