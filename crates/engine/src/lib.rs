//! # engine — MSL pattern matching and unification over OEM
//!
//! This crate implements the two matching processes at the heart of
//! MedMaker:
//!
//! 1. **Pattern-vs-data matching** ([`matcher`]): MSL tail patterns are
//!    matched against the object structure of a source, binding variables
//!    to "object components" (§2 of the paper). This powers wrappers and
//!    the datamerge engine's extractor nodes.
//! 2. **Pattern-vs-pattern unification** ([`unify`]): query conditions are
//!    matched against mediator rule *heads*, producing **unifiers** —
//!    mappings (`↦`) and definitions (`⇒`) — used by the View Expander &
//!    Algebraic Optimizer (§3.2). This includes enumerating placements of
//!    query conditions into set-valued "rest" variables (the τ1/τ2
//!    ambiguity of §3.3).
//!
//! Supporting modules: [`bindings`] (variable environments), [`subst`]
//! (substitution application), [`containment`] (the containment check that
//! justifies each unifier).

#![warn(missing_docs)]

pub mod batch;
pub mod bindings;
pub mod construct;
pub mod containment;
pub mod matcher;
pub mod subst;
pub mod unify;

pub use batch::FlatCond;
pub use bindings::{Bindings, BoundValue};
pub use construct::{ConstructError, Constructor};
pub use matcher::{match_pattern, match_tail_patterns, match_top_level};
pub use unify::{unify_query_with_head, Unifier};
