//! Batch-at-a-time condition evaluation for the streaming executor.
//!
//! The hot loop of datamerge execution is "does some member of this object
//! set satisfy `<label const>`?" — rest-condition filters (§3.3) evaluate
//! it once per binding row. Per-row evaluation walks the recursive
//! [`crate::matcher::match_pattern`] dispatch for every member; this module
//! instead *compiles* the common var-free condition shape into a
//! [`FlatCond`] and evaluates one condition across a whole batch of rows
//! over a columnar lane view with a selection vector.
//!
//! Two evaluation paths exist (one generic, one accelerated, selected once
//! at startup — the akh-medu `simd/{generic,avx2}` idiom):
//!
//! * a **generic scalar kernel** comparing packed 64-bit lane keys one at a
//!   time, and
//! * a **wide kernel** comparing unrolled blocks of 8 lanes (upgraded to
//!   AVX2 `_mm256_cmpeq_epi64` when the CPU supports it).
//!
//! Lane keys pack every fixed-width atomic value ([`oem::Value::Str`] via
//! the interner index, `Bool`, in-range `Int`, and *integral* reals
//! normalized to the integer key so numeric promotion — 3 matches 3.0 —
//! survives packing) into a tagged `u64`. Values outside the packable set
//! fall back to the general [`crate::matcher::atomic_eq`] comparison.

use crate::matcher::atomic_eq;
use msl::{PatValue, Pattern, Term};
use oem::{ObjId, ObjectStore, Symbol, Value};
use std::sync::OnceLock;

/// Lane-key tag bits (top two bits of the packed `u64`).
const TAG_STR: u64 = 0 << 62;
const TAG_BOOL: u64 = 1 << 62;
const TAG_INT: u64 = 2 << 62;
/// Offset-binary bias for integer lane keys; ints in `[-2^61, 2^61)` pack.
const INT_BIAS: i64 = 1 << 61;

/// Pack an atomic value into a tagged 64-bit lane key.
///
/// Returns `None` for values with no fixed-width key (sets, out-of-range
/// ints, non-integral reals). Two packable values compare equal under
/// [`atomic_eq`] **iff** their keys are equal: integral reals in range are
/// normalized onto the integer key, so `3` and `3.0` collide by design.
pub fn lane_key(v: &Value) -> Option<u64> {
    match v {
        Value::Str(s) => Some(TAG_STR | s.index() as u64),
        Value::Bool(b) => Some(TAG_BOOL | *b as u64),
        Value::Int(i) if (-INT_BIAS..INT_BIAS).contains(i) => {
            Some(TAG_INT | (*i + INT_BIAS) as u64)
        }
        Value::Int(_) => None,
        Value::RealBits(bits) => {
            let x = f64::from_bits(*bits);
            if x.is_finite() && x.fract() == 0.0 && x >= -(INT_BIAS as f64) && x < INT_BIAS as f64 {
                Some(TAG_INT | ((x as i64) + INT_BIAS) as u64)
            } else {
                None
            }
        }
        Value::Set(_) => None,
    }
}

/// A compiled var-free condition `<label const>`: the flat shape rest
/// conditions overwhelmingly take after the view expander pushes query
/// constants into them (§3.3).
#[derive(Clone, Debug)]
pub struct FlatCond {
    label: Symbol,
    value: Value,
    /// Packed key of `value`; `None` forces the generic comparison.
    key: Option<u64>,
}

impl FlatCond {
    /// Compile `pat` if it has the flat shape: constant label, constant
    /// atomic value, and no object variable, oid, or type field. Patterns
    /// with variables (which would *bind* rather than test) or nested set
    /// patterns return `None` and keep the recursive matcher.
    pub fn compile(pat: &Pattern) -> Option<FlatCond> {
        if pat.obj_var.is_some() || pat.oid.is_some() || pat.typ.is_some() {
            return None;
        }
        let Term::Const(label) = &pat.label else {
            return None;
        };
        let label = label.as_str_sym()?;
        let PatValue::Term(Term::Const(value)) = &pat.value else {
            return None;
        };
        if !value.is_atomic() {
            return None;
        }
        let key = lane_key(value);
        Some(FlatCond {
            label,
            value: value.clone(),
            key,
        })
    }

    /// Does the single object `id` satisfy the condition?
    pub fn matches(&self, store: &ObjectStore, id: ObjId) -> bool {
        let obj = store.get(id);
        if obj.label != self.label {
            return false;
        }
        match self.key {
            Some(k) => lane_key(&obj.value) == Some(k),
            None => atomic_eq(&self.value, &obj.value),
        }
    }

    /// Evaluate the condition across a batch: for each row's object set,
    /// does **some** member satisfy it? Returns a selection vector (one
    /// bool per row).
    ///
    /// Two passes over a columnar view: the label pass gathers candidate
    /// members as `(lane key, row)` lanes, the value pass runs the selected
    /// comparison kernel over the packed lanes and folds hits back into the
    /// per-row selection vector. Members whose value has no lane key cannot
    /// equal a packable needle and are skipped; an unpackable needle
    /// downgrades the whole batch to the generic comparison.
    pub fn filter_batch(&self, store: &ObjectStore, sets: &[&[ObjId]]) -> Vec<bool> {
        let mut sel = vec![false; sets.len()];
        match self.key {
            Some(needle) => {
                // Label pass: gather packable candidate lanes.
                let mut lanes: Vec<u64> = Vec::new();
                let mut row_of: Vec<u32> = Vec::new();
                for (row, ids) in sets.iter().enumerate() {
                    for &id in *ids {
                        let obj = store.get(id);
                        if obj.label != self.label {
                            continue;
                        }
                        if let Some(k) = lane_key(&obj.value) {
                            lanes.push(k);
                            row_of.push(row as u32);
                        }
                    }
                }
                // Value pass: one kernel sweep, then fold into rows.
                let mut hits: Vec<u32> = Vec::new();
                (kernel())(&lanes, needle, &mut hits);
                for &lane in &hits {
                    sel[row_of[lane as usize] as usize] = true;
                }
            }
            None => {
                for (row, ids) in sets.iter().enumerate() {
                    sel[row] = ids.iter().any(|&id| self.matches(store, id));
                }
            }
        }
        sel
    }
}

/// An equality-scan kernel: append the indices of lanes equal to `needle`
/// onto `hits`.
pub type EqKernel = fn(&[u64], u64, &mut Vec<u32>);

/// Generic scalar kernel: one lane at a time. Always available; the
/// baseline the accelerated path is differential-tested against.
pub fn eq_hits_generic(lanes: &[u64], needle: u64, hits: &mut Vec<u32>) {
    for (i, &l) in lanes.iter().enumerate() {
        if l == needle {
            hits.push(i as u32);
        }
    }
}

/// Wide kernel: unrolled blocks of 8 lanes with a cheap any-hit prefilter
/// per block, falling into per-lane extraction only on a hit.
pub fn eq_hits_wide(lanes: &[u64], needle: u64, hits: &mut Vec<u32>) {
    let mut chunks = lanes.chunks_exact(8);
    let mut base: u32 = 0;
    for c in chunks.by_ref() {
        // Branch-free accumulation: OR of the eight comparisons.
        let any = (c[0] == needle)
            | (c[1] == needle)
            | (c[2] == needle)
            | (c[3] == needle)
            | (c[4] == needle)
            | (c[5] == needle)
            | (c[6] == needle)
            | (c[7] == needle);
        if any {
            for (j, &l) in c.iter().enumerate() {
                if l == needle {
                    hits.push(base + j as u32);
                }
            }
        }
        base += 8;
    }
    for (j, &l) in chunks.remainder().iter().enumerate() {
        if l == needle {
            hits.push(base + j as u32);
        }
    }
}

/// AVX2 kernel: four 64-bit compares per instruction via
/// `_mm256_cmpeq_epi64`, movemask prefilter per 8-lane block.
#[cfg(target_arch = "x86_64")]
fn eq_hits_avx2(lanes: &[u64], needle: u64, hits: &mut Vec<u32>) {
    #[target_feature(enable = "avx2")]
    unsafe fn scan(lanes: &[u64], needle: u64, hits: &mut Vec<u32>) {
        use std::arch::x86_64::*;
        let n = _mm256_set1_epi64x(needle as i64);
        let mut chunks = lanes.chunks_exact(8);
        let mut base: u32 = 0;
        for c in chunks.by_ref() {
            let a = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
            let b = _mm256_loadu_si256(c.as_ptr().add(4) as *const __m256i);
            let ma = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, n)));
            let mb = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(b, n)));
            let mask = (ma | (mb << 4)) as u32;
            if mask != 0 {
                for j in 0..8u32 {
                    if mask & (1 << j) != 0 {
                        hits.push(base + j);
                    }
                }
            }
            base += 8;
        }
        for (j, &l) in chunks.remainder().iter().enumerate() {
            if l == needle {
                hits.push(base + j as u32);
            }
        }
    }
    // Safety: only installed by `kernel()` after runtime AVX2 detection.
    unsafe { scan(lanes, needle, hits) }
}

/// The comparison kernel in use, selected once at startup: AVX2 when the
/// CPU supports it, the unrolled wide kernel otherwise.
pub fn kernel() -> EqKernel {
    static KERNEL: OnceLock<EqKernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return eq_hits_avx2 as EqKernel;
            }
        }
        eq_hits_wide as EqKernel
    })
}

/// Human-readable name of the selected kernel, for diagnostics.
pub fn kernel_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "wide"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use crate::matcher::match_pattern;
    use oem::parser::parse_store;

    fn cond(src: &str) -> Pattern {
        // Parse `X :- <p {COND}>@s` and pull the inner subpattern out.
        let q = msl::parse_query(&format!("X :- <p {{{src}}}>@s")).unwrap();
        let msl::TailItem::Match { pattern, .. } = q.tail.into_iter().next().unwrap() else {
            panic!("expected match item");
        };
        let PatValue::Set(sp) = pattern.value else {
            panic!("expected set pattern");
        };
        match sp.elements.into_iter().next().unwrap() {
            msl::SetElem::Pattern(p) => p,
            _ => panic!("expected subpattern"),
        }
    }

    #[test]
    fn compile_accepts_flat_and_rejects_binding_shapes() {
        assert!(FlatCond::compile(&cond("<year 3>")).is_some());
        assert!(FlatCond::compile(&cond("<name 'Joe Chung'>")).is_some());
        assert!(FlatCond::compile(&cond("<year Y>")).is_none(), "var value");
        assert!(FlatCond::compile(&cond("<L 3>")).is_none(), "var label");
        assert!(FlatCond::compile(&cond("X:<year 3>")).is_none(), "obj var");
        assert!(FlatCond::compile(&cond("<o year t 3>")).is_none(), "oid");
        assert!(
            FlatCond::compile(&cond("<addr {<city 'SF'>}>")).is_none(),
            "nested set"
        );
    }

    #[test]
    fn lane_keys_agree_with_atomic_eq() {
        let vals = [
            Value::str("a"),
            Value::str("b"),
            Value::Int(0),
            Value::Int(3),
            Value::Int(-3),
            Value::real(3.0),
            Value::real(-3.0),
            Value::real(2.5),
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MAX),
            Value::real(f64::INFINITY),
            Value::real(1e300),
        ];
        for a in &vals {
            for b in &vals {
                if let (Some(ka), Some(kb)) = (lane_key(a), lane_key(b)) {
                    assert_eq!(ka == kb, atomic_eq(a, b), "{a:?} vs {b:?}");
                }
            }
        }
        // 3 and 3.0 share a key (numeric promotion survives packing).
        assert_eq!(lane_key(&Value::Int(3)), lane_key(&Value::real(3.0)));
        // Unpackable values that could never equal a packable needle.
        assert_eq!(lane_key(&Value::Int(i64::MAX)), None);
        assert_eq!(lane_key(&Value::real(2.5)), None);
        assert_eq!(lane_key(&Value::empty_set()), None);
    }

    #[test]
    fn kernels_agree_on_all_alignments() {
        // Lengths straddling the 8-lane block boundary exercise remainders.
        for len in 0..40usize {
            let lanes: Vec<u64> = (0..len as u64).map(|i| i % 5).collect();
            let mut generic = Vec::new();
            eq_hits_generic(&lanes, 3, &mut generic);
            let mut wide = Vec::new();
            eq_hits_wide(&lanes, 3, &mut wide);
            assert_eq!(generic, wide, "len {len}");
            let mut selected = Vec::new();
            (kernel())(&lanes, 3, &mut selected);
            assert_eq!(generic, selected, "len {len} ({})", kernel_name());
        }
    }

    #[test]
    fn filter_batch_matches_per_row_matcher() {
        let store = parse_store(
            "<&p1, person, set, {<&y1, year, 3> <&n1, name, 'A'>}>
             <&p2, person, set, {<&y2, year, 4>}>
             <&p3, person, set, {<&y3, year, 3.0>}>
             <&p4, person, set, {<&n4, name, 'B'>}>",
        )
        .unwrap();
        let c = cond("<year 3>");
        let flat = FlatCond::compile(&c).unwrap();
        let sets: Vec<&[ObjId]> = store
            .top_level()
            .iter()
            .map(|&t| store.get(t).value.as_set().unwrap())
            .collect();
        let sel = flat.filter_batch(&store, &sets);
        let expect: Vec<bool> = sets
            .iter()
            .map(|ids| {
                ids.iter()
                    .any(|&id| !match_pattern(&store, id, &c, &Bindings::new()).is_empty())
            })
            .collect();
        assert_eq!(sel, expect);
        // year 3.0 matched the int needle: promotion preserved.
        assert_eq!(sel, vec![true, false, true, false]);
    }

    #[test]
    fn unpackable_needle_uses_generic_path() {
        let store = parse_store("<&p, reading, set, {<&v, val, 2.5>}>").unwrap();
        let flat = FlatCond::compile(&cond("<val 2.5>")).unwrap();
        assert!(flat.key.is_none());
        let sets: Vec<&[ObjId]> = vec![store.get(store.top_level()[0]).value.as_set().unwrap()];
        assert_eq!(flat.filter_batch(&store, &sets), vec![true]);
    }

    #[test]
    fn set_valued_members_never_match() {
        let store = parse_store("<&p, person, set, {<&a, year, set, {<&b, x, 3>}>}>").unwrap();
        let flat = FlatCond::compile(&cond("<year 3>")).unwrap();
        let id = store.get(store.top_level()[0]).value.as_set().unwrap()[0];
        assert!(!flat.matches(&store, id));
        assert_eq!(
            flat.filter_batch(
                &store,
                &[store.get(store.top_level()[0]).value.as_set().unwrap()]
            ),
            vec![false]
        );
    }
}
