//! Query-condition vs. rule-head unification (§3.2).
//!
//! "When the VE&AO matches a query condition with a rule head it generates
//! all unifiers θ such that (1) applying the mappings makes the transformed
//! query condition *contained* in the transformed rule head, and (2) there
//! is a *definition* for every object, value, or rest variable that appears
//! in the query head and also appears in the query tail preceding a ':'."
//!
//! A [`Unifier`] therefore carries:
//! * **mappings** (`↦`) — an ordinary first-order substitution over the
//!   (renamed-apart) variables of query and rule, plus *rest-condition
//!   mappings* like `Rest1 ↦ {<year 3>}` that attach query conditions to a
//!   set-valued variable of the head (§3.3: conditions pushed into `Rest1`
//!   or `Rest2` produce the two unifiers τ1 and τ2);
//! * **definitions** (`⇒`) — for query object variables (`JC ⇒
//!   <cs_person {...}>`), for query value variables that meet a head set,
//!   and for query rest variables (bound to the head elements the query
//!   did not mention).
//!
//! [`unify_query_with_head`] enumerates *all* unifiers. With
//! [`UnifyMode::Minimal`], a query subpattern is pushed into a set-valued
//! variable only when it unifies with no explicit head subpattern — this is
//! the presentation the paper uses for Q1/θ1; `Exhaustive` (the default
//! used by the planner) also considers pushes that overlap explicit
//! subpatterns, which is required for completeness when source objects may
//! repeat a label.

use crate::subst::{subst_pattern, subst_term, Subst};
use msl::{PatValue, Pattern, SetElem, SetPattern, Term};
use oem::Symbol;
use std::collections::HashMap;

/// How aggressively to enumerate pushes into set-valued variables.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UnifyMode {
    /// Enumerate every containment-preserving unifier (sound + complete).
    #[default]
    Exhaustive,
    /// Push a query subpattern into a set variable only if it unifies with
    /// no explicit head subpattern (the paper's worked presentation).
    Minimal,
}

/// The result of matching one query condition against one rule head.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Unifier {
    /// Mappings `v ↦ term` (already fully resolved — no chains).
    pub subst: Subst,
    /// Rest-condition mappings `SetVar ↦ {pattern, ...}`: conditions the
    /// view expander must attach to the corresponding rest variable in the
    /// rule tail.
    pub rest_conds: Vec<(Symbol, Vec<Pattern>)>,
    /// Definitions for query object variables: `JC ⇒ <cs_person {...}>`.
    pub obj_defs: Vec<(Symbol, Pattern)>,
    /// Definitions for query value variables that met a head set value.
    pub value_defs: Vec<(Symbol, PatValue)>,
    /// Definitions for query rest variables: the head elements the query
    /// left unmatched (they become the "rest" of the view object).
    pub rest_defs: Vec<(Symbol, Vec<SetElem>)>,
}

impl Unifier {
    /// Look up the definition of a query object variable.
    pub fn obj_def(&self, var: Symbol) -> Option<&Pattern> {
        self.obj_defs
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, p)| p)
    }

    /// The rest conditions attached to a given set variable.
    pub fn rest_conds_for(&self, var: Symbol) -> &[Pattern] {
        self.rest_conds
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, c)| c.as_slice())
            .unwrap_or(&[])
    }
}

/// Internal enumeration state.
#[derive(Clone, Default)]
struct St {
    subst: Subst,
    rest_conds: HashMap<Symbol, Vec<Pattern>>,
    obj_defs: Vec<(Symbol, Pattern)>,
    value_defs: Vec<(Symbol, PatValue)>,
    rest_defs: Vec<(Symbol, Vec<SetElem>)>,
}

/// Enumerate all unifiers between a query condition pattern and a rule
/// head pattern. Both must be renamed apart beforehand
/// (see [`msl::rename::rename_rule`]).
pub fn unify_query_with_head(query: &Pattern, head: &Pattern, mode: UnifyMode) -> Vec<Unifier> {
    let states = unify_pattern(query, head, St::default(), mode);
    let mut out: Vec<Unifier> = Vec::new();
    for st in states {
        let u = finalize(st, head);
        if !out.contains(&u) {
            out.push(u);
        }
    }
    out
}

fn finalize(mut st: St, _head: &Pattern) -> Unifier {
    // Fully apply the substitution to stored defs and rest conditions so
    // downstream consumers never see unresolved chains — including inside
    // the substitution itself (K ↦ pid(N), N ↦ 'Ann' becomes
    // K ↦ pid('Ann')).
    let snapshot = st.subst.clone();
    for term in st.subst.values_mut() {
        *term = subst_term(term, &snapshot);
    }
    let subst = &st.subst;
    let mut rest_conds: Vec<(Symbol, Vec<Pattern>)> = st
        .rest_conds
        .into_iter()
        .map(|(v, conds)| (v, conds.iter().map(|c| subst_pattern(c, subst)).collect()))
        .collect();
    // HashMap iteration order is nondeterministic; canonicalize so that
    // unifier lists (and the plans derived from them) are stable.
    rest_conds.sort_by_key(|(v, _)| v.as_str());
    let obj_defs = st
        .obj_defs
        .into_iter()
        .map(|(v, p)| (v, subst_pattern(&p, subst)))
        .collect();
    let value_defs = st
        .value_defs
        .into_iter()
        .map(|(v, pv)| (v, crate::subst::subst_pat_value(&pv, subst)))
        .collect();
    let rest_defs = st
        .rest_defs
        .into_iter()
        .map(|(v, elems)| {
            (
                v,
                elems
                    .into_iter()
                    .map(|e| match e {
                        SetElem::Pattern(p) => SetElem::Pattern(subst_pattern(&p, subst)),
                        SetElem::Wildcard(p) => SetElem::Wildcard(subst_pattern(&p, subst)),
                        SetElem::Var(v) => SetElem::Var(v),
                    })
                    .collect(),
            )
        })
        .collect();
    Unifier {
        subst: st.subst,
        rest_conds,
        obj_defs,
        value_defs,
        rest_defs,
    }
}

fn unify_pattern(q: &Pattern, h: &Pattern, st: St, mode: UnifyMode) -> Vec<St> {
    // Labels.
    let Some(st) = unify_terms(&q.label, &h.label, st) else {
        return Vec::new();
    };

    // Oids: mediator-generated oids are arbitrary, so a query oid term can
    // only be constrained when the head declares one (e.g. a semantic oid).
    let st = match (&q.oid, &h.oid) {
        (None, _) => Some(st),
        (Some(qt), Some(ht)) => unify_terms(qt, ht, st),
        (Some(Term::Var(_)), None) => Some(st), // unconstrained generated oid
        (Some(_), None) => None,                // cannot constrain a generated oid with a constant
    };
    let Some(st) = st else { return Vec::new() };

    // Types: checkable only when the head declares one; a query type
    // variable against an undeclared head type stays unconstrained.
    let st = match (&q.typ, &h.typ) {
        (None, _) => Some(st),
        (Some(qt), Some(ht)) => unify_terms(qt, ht, st),
        (Some(Term::Var(_)), None) => Some(st),
        (Some(_), None) => match &h.value {
            // The head value's shape implies the type.
            PatValue::Set(_) => unify_terms(q.typ.as_ref().unwrap(), &Term::str("set"), st),
            PatValue::Term(Term::Const(v)) => unify_terms(
                q.typ.as_ref().unwrap(),
                &Term::str(v.oem_type().keyword()),
                st,
            ),
            _ => None,
        },
    };
    let Some(mut st) = st else { return Vec::new() };

    // Query object variable: record its definition (the head structure).
    if let Some(ov) = q.obj_var {
        let mut def = h.clone();
        def.obj_var = None;
        st.obj_defs.push((ov, def));
    }

    // Values.
    match (&q.value, &h.value) {
        (PatValue::Term(qt), PatValue::Term(ht)) => match unify_terms(qt, ht, st) {
            Some(st) => vec![st],
            None => Vec::new(),
        },
        (PatValue::Term(Term::Var(v)), PatValue::Set(hsp)) => {
            // Value variable meets a constructed set: definition.
            st.value_defs.push((*v, PatValue::Set(hsp.clone())));
            vec![st]
        }
        (PatValue::Term(_), PatValue::Set(_)) => Vec::new(),
        (PatValue::Set(_), PatValue::Term(_)) => Vec::new(),
        (PatValue::Set(qsp), PatValue::Set(hsp)) => unify_sets(qsp, hsp, st, mode),
    }
}

fn unify_sets(qsp: &SetPattern, hsp: &SetPattern, st: St, mode: UnifyMode) -> Vec<St> {
    // Indices of explicit head subpatterns and names of head set variables.
    let head_pats: Vec<(usize, &Pattern)> = hsp
        .elements
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            SetElem::Pattern(p) => Some((i, p)),
            _ => None,
        })
        .collect();
    let head_setvars: Vec<Symbol> = hsp
        .elements
        .iter()
        .filter_map(|e| match e {
            SetElem::Var(v) => Some(*v),
            _ => None,
        })
        .collect();

    // State during element placement: (St, consumed head indices).
    let mut states: Vec<(St, Vec<usize>)> = vec![(st, Vec::new())];

    for qe in &qsp.elements {
        let mut next: Vec<(St, Vec<usize>)> = Vec::new();
        match qe {
            SetElem::Pattern(qp) | SetElem::Wildcard(qp) => {
                let is_wildcard = matches!(qe, SetElem::Wildcard(_));
                for (st, consumed) in &states {
                    let mut unified_somewhere = false;
                    // (a) unify with an explicit head subpattern.
                    for (idx, hp) in &head_pats {
                        for st2 in unify_pattern(qp, hp, st.clone(), mode) {
                            unified_somewhere = true;
                            let mut c = consumed.clone();
                            if !c.contains(idx) {
                                c.push(*idx);
                            }
                            next.push((st2, c));
                        }
                    }
                    // (b) push into a head set-valued variable.
                    let push_allowed = match mode {
                        UnifyMode::Exhaustive => true,
                        UnifyMode::Minimal => !unified_somewhere,
                    };
                    if push_allowed {
                        for sv in &head_setvars {
                            let mut st2 = st.clone();
                            // A pushed wildcard keeps its any-depth
                            // semantics within the rest set.
                            let cond = if is_wildcard {
                                // Represent as a pattern condition; depth
                                // semantics are preserved by the tail's
                                // wildcard expansion at the source.
                                qp.clone()
                            } else {
                                qp.clone()
                            };
                            st2.rest_conds.entry(*sv).or_default().push(cond);
                            next.push((st2, consumed.clone()));
                        }
                    }
                }
            }
            SetElem::Var(v) => {
                // A query set variable can only map onto a head set
                // variable wholesale.
                for (st, consumed) in &states {
                    for sv in &head_setvars {
                        let mut st2 = st.clone();
                        match st2.subst.get(v) {
                            Some(Term::Var(existing)) if existing == sv => {
                                next.push((st2, consumed.clone()));
                            }
                            Some(_) => {}
                            None => {
                                st2.subst.insert(*v, Term::Var(*sv));
                                next.push((st2, consumed.clone()));
                            }
                        }
                    }
                }
            }
        }
        states = next;
        if states.is_empty() {
            return Vec::new();
        }
    }

    // Query rest variable: defined as the head elements not consumed.
    let mut out = Vec::new();
    for (mut st, consumed) in states {
        if let Some(rest) = &qsp.rest {
            let leftover: Vec<SetElem> = hsp
                .elements
                .iter()
                .enumerate()
                .filter(|(i, e)| !consumed.contains(i) || matches!(e, SetElem::Var(_)))
                .map(|(_, e)| e.clone())
                .collect();
            st.rest_defs.push((rest.var, leftover));
            // Rest conditions of the query are pushed like ordinary
            // elements would be — attach each to every set variable
            // (enumerated) or unify with leftover explicit patterns.
            if !rest.conditions.is_empty() {
                let mut cond_states = vec![st];
                for cond in &rest.conditions {
                    let mut next = Vec::new();
                    for cs in &cond_states {
                        for sv in &head_setvars {
                            let mut st2 = cs.clone();
                            st2.rest_conds.entry(*sv).or_default().push(cond.clone());
                            next.push(st2);
                        }
                        for (i, e) in hsp.elements.iter().enumerate() {
                            if consumed.contains(&i) {
                                continue;
                            }
                            if let SetElem::Pattern(hp) = e {
                                next.extend(unify_pattern(cond, hp, cs.clone(), mode));
                            }
                        }
                    }
                    cond_states = next;
                }
                out.extend(cond_states);
                continue;
            }
        }
        out.push(st);
    }
    out
}

/// First-order unification of two terms under a shared substitution.
fn unify_terms(a: &Term, b: &Term, mut st: St) -> Option<St> {
    let ra = subst_term(a, &st.subst);
    let rb = subst_term(b, &st.subst);
    match (&ra, &rb) {
        (Term::Const(x), Term::Const(y)) => {
            if crate::matcher::atomic_eq(x, y) {
                Some(st)
            } else {
                None
            }
        }
        (Term::Var(v), Term::Var(w)) if v == w => Some(st),
        (Term::Var(v), other) => {
            st.subst.insert(*v, other.clone());
            Some(st)
        }
        (other, Term::Var(w)) => {
            st.subst.insert(*w, other.clone());
            Some(st)
        }
        (Term::Func(f, fa), Term::Func(g, ga)) => {
            if f != g || fa.len() != ga.len() {
                return None;
            }
            let mut cur = st;
            for (x, y) in fa.iter().zip(ga) {
                cur = unify_terms(x, y, cur)?;
            }
            Some(cur)
        }
        // Parameters are runtime slots; they never unify statically.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::{parse_query, parse_rule, Head, TailItem};
    use oem::sym;

    fn ms1_head() -> Pattern {
        let rule = parse_rule(
            "<cs_person {<name N> <rel R> Rest1 Rest2}> :- \
             <person {<name N>}>@whois",
        )
        .unwrap();
        match rule.head {
            Head::Pattern(p) => p,
            _ => panic!(),
        }
    }

    fn query_pattern(src: &str) -> Pattern {
        let q = parse_query(src).unwrap();
        match q.tail.into_iter().next().unwrap() {
            TailItem::Match { pattern, .. } => pattern,
            _ => panic!(),
        }
    }

    #[test]
    fn theta1_for_q1() {
        // Q1: JC :- JC:<cs_person {<name 'Joe Chung'>}>@med
        // θ1 = [ N ↦ 'Joe Chung',
        //        JC ⇒ <cs_person {<name 'Joe Chung'> <rel R> Rest1 Rest2}> ]
        let q = query_pattern("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med");
        let unifiers = unify_query_with_head(&q, &ms1_head(), UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 1);
        let u = &unifiers[0];
        assert_eq!(u.subst.get(&sym("N")), Some(&Term::str("Joe Chung")));
        assert!(u.rest_conds.is_empty());

        let def = u.obj_def(sym("JC")).expect("JC has a definition");
        let printed = msl::printer::pattern(def);
        assert_eq!(
            printed,
            "<cs_person {<name 'Joe Chung'> <rel R> Rest1 Rest2}>"
        );
    }

    #[test]
    fn tau1_tau2_for_year_query() {
        // S :- S:<cs_person {<year 3>}>@med  — <year 3> can go into Rest1
        // or Rest2 (§3.3), yielding exactly τ1 and τ2.
        let q = query_pattern("S :- S:<cs_person {<year 3>}>@med");
        let unifiers = unify_query_with_head(&q, &ms1_head(), UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 2);
        let targets: Vec<Symbol> = unifiers.iter().map(|u| u.rest_conds[0].0).collect();
        assert!(targets.contains(&sym("Rest1")));
        assert!(targets.contains(&sym("Rest2")));
        for u in &unifiers {
            assert_eq!(u.rest_conds.len(), 1);
            let conds = &u.rest_conds[0].1;
            assert_eq!(conds.len(), 1);
            assert_eq!(msl::printer::pattern(&conds[0]), "<year 3>");
            // Definition of S carries the full head structure.
            let def = u.obj_def(sym("S")).unwrap();
            assert_eq!(
                msl::printer::pattern(def),
                "<cs_person {<name N> <rel R> Rest1 Rest2}>"
            );
        }
    }

    #[test]
    fn exhaustive_mode_also_pushes_unifiable_conditions() {
        // In exhaustive mode, <name 'Joe Chung'> can unify with <name N>
        // (1 unifier) or be pushed into Rest1 / Rest2 (2 more).
        let q = query_pattern("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med");
        let unifiers = unify_query_with_head(&q, &ms1_head(), UnifyMode::Exhaustive);
        assert_eq!(unifiers.len(), 3);
    }

    #[test]
    fn label_mismatch_no_unifier() {
        let q = query_pattern("X :- X:<other_view {<name N>}>@med");
        assert!(unify_query_with_head(&q, &ms1_head(), UnifyMode::Exhaustive).is_empty());
    }

    #[test]
    fn variable_label_in_query_unifies() {
        // Schema-exploration query: what does the view export?
        let q = query_pattern("X :- X:<V {}>@med");
        let unifiers = unify_query_with_head(&q, &ms1_head(), UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 1);
        assert_eq!(
            unifiers[0].subst.get(&sym("V")),
            Some(&Term::str("cs_person"))
        );
    }

    #[test]
    fn two_conditions_enumerate_product() {
        // Two unmatched conditions, two set vars: 4 placements.
        let q = query_pattern("S :- S:<cs_person {<year 3> <gpa 4>}>@med");
        let unifiers = unify_query_with_head(&q, &ms1_head(), UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 4);
    }

    #[test]
    fn value_constant_condition_binds_head_var() {
        let q = query_pattern("S :- S:<cs_person {<rel 'employee'>}>@med");
        let unifiers = unify_query_with_head(&q, &ms1_head(), UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 1);
        assert_eq!(
            unifiers[0].subst.get(&sym("R")),
            Some(&Term::str("employee"))
        );
    }

    #[test]
    fn no_setvars_means_unmatchable_condition_fails() {
        let head = match parse_rule("<v {<a A>}> :- <s {<a A>}>@x").unwrap().head {
            Head::Pattern(p) => p,
            _ => panic!(),
        };
        let q = query_pattern("X :- X:<v {<b B>}>@med");
        assert!(unify_query_with_head(&q, &head, UnifyMode::Exhaustive).is_empty());
    }

    #[test]
    fn query_rest_var_gets_definition() {
        let q = query_pattern("X :- X:<cs_person {<name N1> | QR}>@med");
        let unifiers = unify_query_with_head(&q, &ms1_head(), UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 1);
        let u = &unifiers[0];
        let (v, elems) = &u.rest_defs[0];
        assert_eq!(*v, sym("QR"));
        // Leftover: <rel R>, Rest1, Rest2 (the matched <name N> is consumed).
        assert_eq!(elems.len(), 3);
    }

    #[test]
    fn semantic_oid_unification() {
        let head = match parse_rule("<pid(N) v {<name N>}> :- <s {<name N>}>@x")
            .unwrap()
            .head
        {
            Head::Pattern(p) => p,
            _ => panic!(),
        };
        let q = query_pattern("X :- <K v {<name 'Ann'>}>@med");
        let unifiers = unify_query_with_head(&q, &head, UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 1);
        // K maps to the instantiated semantic oid pid('Ann').
        assert_eq!(
            unifiers[0].subst.get(&sym("K")),
            Some(&Term::Func(sym("pid"), vec![Term::str("Ann")]))
        );
    }

    #[test]
    fn nested_set_patterns_unify() {
        let head = match parse_rule("<v {<addr {<city C>}>}> :- <s {<addr {<city C>}>}>@x")
            .unwrap()
            .head
        {
            Head::Pattern(p) => p,
            _ => panic!(),
        };
        let q = query_pattern("X :- X:<v {<addr {<city 'Palo Alto'>}>}>@med");
        let unifiers = unify_query_with_head(&q, &head, UnifyMode::Minimal);
        assert_eq!(unifiers.len(), 1);
        assert_eq!(
            unifiers[0].subst.get(&sym("C")),
            Some(&Term::str("Palo Alto"))
        );
    }
}
