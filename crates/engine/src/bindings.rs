//! Variable binding environments.
//!
//! Matching a tail pattern against a source produces a *binding* of the
//! pattern's variables to object components (§2). A variable can bind to:
//!
//! * an **atomic value** — including labels: "we were able simultaneously
//!   to bind variable R to a value in whois and a label in cs" — labels
//!   bind as string values so the two occurrences agree;
//! * an **object** — via the `X:<...>` object-variable syntax;
//! * a **set of objects** — rest variables like `Rest1`, which bind "to the
//!   remaining subobjects".

use oem::{ObjId, Symbol, Value};
use std::collections::BTreeMap;
use std::fmt;

/// What a variable is bound to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BoundValue {
    /// An atomic value (string, integer, real, boolean). Labels and type
    /// keywords bind as strings.
    Atom(Value),
    /// A whole object (object variables `X:`).
    Obj(ObjId),
    /// A set of objects (rest variables and set-valued variables). Kept
    /// sorted so that equal sets compare equal.
    ObjSet(Vec<ObjId>),
}

impl BoundValue {
    /// Normalize: `ObjSet` contents are sorted and deduplicated.
    pub fn normalized(self) -> BoundValue {
        match self {
            BoundValue::ObjSet(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                BoundValue::ObjSet(ids)
            }
            other => other,
        }
    }

    /// The atomic value, if this is an atom binding.
    pub fn as_atom(&self) -> Option<&Value> {
        match self {
            BoundValue::Atom(v) => Some(v),
            _ => None,
        }
    }

    /// The object id, if this is an object binding.
    pub fn as_obj(&self) -> Option<ObjId> {
        match self {
            BoundValue::Obj(id) => Some(*id),
            _ => None,
        }
    }

    /// The object set, if this is a set binding.
    pub fn as_obj_set(&self) -> Option<&[ObjId]> {
        match self {
            BoundValue::ObjSet(ids) => Some(ids),
            _ => None,
        }
    }
}

impl fmt::Display for BoundValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundValue::Atom(v) => write!(f, "{}", v.render_atomic()),
            BoundValue::Obj(id) => write!(f, "{id}"),
            BoundValue::ObjSet(ids) => {
                write!(f, "{{")?;
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{id}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// An immutable-by-convention map from variables to bound values. Uses a
/// `BTreeMap` so that bindings have a canonical order (needed for duplicate
/// elimination of solutions and for deterministic plans).
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Bindings {
    map: BTreeMap<Symbol, BoundValue>,
}

impl Bindings {
    /// The empty binding.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is nothing bound?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a variable.
    pub fn get(&self, var: Symbol) -> Option<&BoundValue> {
        self.map.get(&var)
    }

    /// Is the variable bound?
    pub fn contains(&self, var: Symbol) -> bool {
        self.map.contains_key(&var)
    }

    /// Bind `var` to `value`, returning the extended bindings — or `None`
    /// if `var` is already bound to a *different* value (bindings must
    /// agree, §2: "the two bindings agree on the values assigned to common
    /// variables").
    #[must_use]
    pub fn bind(&self, var: Symbol, value: BoundValue) -> Option<Bindings> {
        let value = value.normalized();
        match self.map.get(&var) {
            Some(existing) if *existing == value => Some(self.clone()),
            Some(_) => None,
            None => {
                let mut next = self.clone();
                next.map.insert(var, value);
                Some(next)
            }
        }
    }

    /// In-place variant of [`Bindings::bind`]: extend `self` with
    /// `var = value`, returning `false` (and leaving `self` unchanged) if
    /// `var` is already bound to a different value. Lets hot matcher loops
    /// clone a base binding once and extend it field by field instead of
    /// cloning the whole map per field.
    pub fn bind_mut(&mut self, var: Symbol, value: BoundValue) -> bool {
        let value = value.normalized();
        match self.map.get(&var) {
            Some(existing) => *existing == value,
            None => {
                self.map.insert(var, value);
                true
            }
        }
    }

    /// Merge two bindings, failing if they disagree on a common variable.
    /// This is the binding-match step of §2: a whois binding matches a cs
    /// binding if they agree on the shared variables.
    #[must_use]
    pub fn merge(&self, other: &Bindings) -> Option<Bindings> {
        let mut out = self.clone();
        for (var, val) in &other.map {
            match out.map.get(var) {
                Some(existing) if existing == val => {}
                Some(_) => return None,
                None => {
                    out.map.insert(*var, val.clone());
                }
            }
        }
        Some(out)
    }

    /// Project onto a set of variables (used before duplicate elimination:
    /// "we first project the bindings of the variables of the tail into
    /// bindings of the variables that appear in the head", §2 footnote 3).
    pub fn project(&self, vars: &[Symbol]) -> Bindings {
        let mut out = Bindings::new();
        for v in vars {
            if let Some(val) = self.map.get(v) {
                out.map.insert(*v, val.clone());
            }
        }
        out
    }

    /// Iterate over (variable, value) pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &BoundValue)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// The bound variables in canonical order.
    pub fn variables(&self) -> Vec<Symbol> {
        self.map.keys().copied().collect()
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (var, val)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var} -> {val}")?;
        }
        write!(f, "]")
    }
}

/// Eliminate duplicate binding sets, preserving first-occurrence order.
/// Hash-based: linear in the input (the paper's dedup semantics applied to
/// potentially large intermediate solution sets).
pub fn dedup_bindings(list: Vec<Bindings>) -> Vec<Bindings> {
    let mut seen: std::collections::HashSet<Bindings> =
        std::collections::HashSet::with_capacity(list.len());
    let mut out = Vec::with_capacity(list.len());
    for b in list {
        if seen.insert(b.clone()) {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::sym;

    #[test]
    fn bind_and_get() {
        let b = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("Joe Chung")))
            .unwrap();
        assert_eq!(
            b.get(sym("N")),
            Some(&BoundValue::Atom(Value::str("Joe Chung")))
        );
        assert!(b.contains(sym("N")));
        assert!(!b.contains(sym("M")));
    }

    #[test]
    fn rebinding_same_value_ok_different_fails() {
        let b = Bindings::new()
            .bind(sym("R"), BoundValue::Atom(Value::str("employee")))
            .unwrap();
        assert!(b
            .bind(sym("R"), BoundValue::Atom(Value::str("employee")))
            .is_some());
        assert!(b
            .bind(sym("R"), BoundValue::Atom(Value::str("student")))
            .is_none());
    }

    #[test]
    fn merge_agreeing_bindings() {
        // The paper's b_w1 / b_c1 example: both bind R to 'employee'.
        let bw = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("Joe Chung")))
            .unwrap()
            .bind(sym("R"), BoundValue::Atom(Value::str("employee")))
            .unwrap();
        let bc = Bindings::new()
            .bind(sym("R"), BoundValue::Atom(Value::str("employee")))
            .unwrap()
            .bind(sym("FN"), BoundValue::Atom(Value::str("Joe")))
            .unwrap();
        let merged = bw.merge(&bc).unwrap();
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_disagreeing_bindings_fails() {
        let bw = Bindings::new()
            .bind(sym("R"), BoundValue::Atom(Value::str("employee")))
            .unwrap();
        let bc = Bindings::new()
            .bind(sym("R"), BoundValue::Atom(Value::str("student")))
            .unwrap();
        assert!(bw.merge(&bc).is_none());
    }

    #[test]
    fn objset_normalization() {
        let a = BoundValue::ObjSet(vec![
            ObjId::from_raw(3),
            ObjId::from_raw(1),
            ObjId::from_raw(3),
        ])
        .normalized();
        let b = BoundValue::ObjSet(vec![ObjId::from_raw(1), ObjId::from_raw(3)]).normalized();
        assert_eq!(a, b);

        // bind() normalizes automatically, so binding orders agree.
        let b1 = Bindings::new()
            .bind(
                sym("Rest"),
                BoundValue::ObjSet(vec![ObjId::from_raw(2), ObjId::from_raw(1)]),
            )
            .unwrap();
        let b2 = b1.bind(
            sym("Rest"),
            BoundValue::ObjSet(vec![ObjId::from_raw(1), ObjId::from_raw(2)]),
        );
        assert!(b2.is_some());
    }

    #[test]
    fn projection() {
        let b = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("x")))
            .unwrap()
            .bind(sym("R"), BoundValue::Atom(Value::str("y")))
            .unwrap();
        let p = b.project(&[sym("N"), sym("Missing")]);
        assert_eq!(p.len(), 1);
        assert!(p.contains(sym("N")));
    }

    #[test]
    fn dedup() {
        let b1 = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::Int(1)))
            .unwrap();
        let b2 = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::Int(1)))
            .unwrap();
        let b3 = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::Int(2)))
            .unwrap();
        let out = dedup_bindings(vec![b1.clone(), b2, b3.clone()]);
        assert_eq!(out, vec![b1, b3]);
    }

    #[test]
    fn display_forms() {
        let b = Bindings::new()
            .bind(sym("N"), BoundValue::Atom(Value::str("Joe")))
            .unwrap()
            .bind(sym("X"), BoundValue::Obj(ObjId::from_raw(4)))
            .unwrap();
        let s = format!("{b}");
        assert!(s.contains("N -> 'Joe'"));
        assert!(s.contains("X -> #4"));
    }
}
