//! LOREL tokenizer.

use crate::{LorelError, Result};

/// One token with its byte offset.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub kind: Tok,
    pub pos: usize,
}

/// Token kinds. Keywords are case-insensitive.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    Select,
    From,
    Where,
    And,
    Star,
    Comma,
    Dot,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Ident(String),
    Str(String),
    Int(i64),
    Real(f64),
    Bool(bool),
}

/// Tokenize LOREL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let pos = i;
        match c {
            _ if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '*' => {
                out.push(Token {
                    kind: Tok::Star,
                    pos,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: Tok::Comma,
                    pos,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: Tok::Dot,
                    pos,
                });
                i += 1;
            }
            '=' => {
                out.push(Token { kind: Tok::Eq, pos });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token {
                    kind: Tok::Neq,
                    pos,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token { kind: Tok::Le, pos });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token {
                        kind: Tok::Neq,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Token { kind: Tok::Lt, pos });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token { kind: Tok::Ge, pos });
                    i += 2;
                } else {
                    out.push(Token { kind: Tok::Gt, pos });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LorelError::Lex {
                                msg: "unterminated string literal".into(),
                                pos,
                            })
                        }
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            i += 1;
                            match bytes.get(i) {
                                Some(&e) => {
                                    s.push(match e {
                                        'n' => '\n',
                                        't' => '\t',
                                        other => other,
                                    });
                                    i += 1;
                                }
                                None => {
                                    return Err(LorelError::Lex {
                                        msg: "unterminated escape".into(),
                                        pos,
                                    })
                                }
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: Tok::Str(s),
                    pos,
                });
            }
            _ if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let mut s = String::new();
                if c == '-' {
                    s.push('-');
                    i += 1;
                }
                let mut real = false;
                while let Some(&d) = bytes.get(i) {
                    if d.is_ascii_digit() {
                        s.push(d);
                        i += 1;
                    } else if d == '.'
                        && !real
                        && bytes.get(i + 1).is_some_and(|x| x.is_ascii_digit())
                    {
                        real = true;
                        s.push('.');
                        i += 1;
                    } else {
                        break;
                    }
                }
                let kind = if real {
                    Tok::Real(s.parse().map_err(|_| LorelError::Lex {
                        msg: format!("bad real '{s}'"),
                        pos,
                    })?)
                } else {
                    Tok::Int(s.parse().map_err(|_| LorelError::Lex {
                        msg: format!("bad integer '{s}'"),
                        pos,
                    })?)
                };
                out.push(Token { kind, pos });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = bytes.get(i) {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        i += 1;
                    } else {
                        break;
                    }
                }
                let kind = match s.to_ascii_lowercase().as_str() {
                    "select" => Tok::Select,
                    "from" => Tok::From,
                    "where" => Tok::Where,
                    "and" => Tok::And,
                    "true" => Tok::Bool(true),
                    "false" => Tok::Bool(false),
                    _ => Tok::Ident(s),
                };
                out.push(Token { kind, pos });
            }
            other => {
                return Err(LorelError::Lex {
                    msg: format!("unexpected character '{other}'"),
                    pos,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("SELECT from Where AND"),
            vec![Tok::Select, Tok::From, Tok::Where, Tok::And]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != < <= > >= <>"),
            vec![
                Tok::Eq,
                Tok::Neq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Neq
            ]
        );
    }

    #[test]
    fn paths_and_literals() {
        assert_eq!(
            kinds("P.name 'Joe' \"Ann\" 3 -7 2.5 true"),
            vec![
                Tok::Ident("P".into()),
                Tok::Dot,
                Tok::Ident("name".into()),
                Tok::Str("Joe".into()),
                Tok::Str("Ann".into()),
                Tok::Int(3),
                Tok::Int(-7),
                Tok::Real(2.5),
                Tok::Bool(true),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- hi\nP"),
            vec![Tok::Select, Tok::Ident("P".into())]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("select 'open").is_err());
        assert!(tokenize("select #").is_err());
    }
}
