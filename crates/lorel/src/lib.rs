//! # lorel — an end-user front end compiled to MSL
//!
//! The MedMaker paper (footnote 4) mentions TSIMMIS's second language:
//! "LOREL. It is an object-oriented extension to SQL and is oriented to the
//! end-user. ... MSL is more powerful than LOREL". This crate implements a
//! LOREL-flavored surface — `select`/`from`/`where` with OEM path
//! expressions — and compiles it to MSL queries, so end users never see
//! patterns or rules:
//!
//! ```text
//! select P.name, P.title
//! from   cs_person P
//! where  P.rel = 'employee' and P.year >= 3
//! ```
//!
//! compiles (against mediator `med`) to
//!
//! ```text
//! <result {<name V> <title V2>}> :-
//!     P:<cs_person {<name V> <title V2> <rel 'employee'> <year V3>}>@med
//!     AND ge(V3, 3)
//! ```
//!
//! Design notes:
//! * equality conditions against literals are inlined into the pattern so
//!   the MSI's condition pushdown applies (§3.3);
//! * other comparisons become MSL's built-in predicates (`lt`, `ge`, ...);
//! * a path used twice compiles to one retrieval variable;
//! * `select *` (single `from` variable) materializes whole view objects;
//! * multi-variable `from` clauses produce joins — a path-to-path equality
//!   (`P.name = Q.author`) unifies the two retrieval variables.

#![warn(missing_docs)]

mod compile;
mod lexer;
mod parse;

pub use compile::compile;
pub use parse::{parse, CmpOp, Comparison, Condition, LorelQuery, Path, Selection};

use std::fmt;

/// LOREL front-end errors.
#[derive(Clone, PartialEq, Debug)]
pub enum LorelError {
    /// Lexical error with position.
    Lex {
        /// What went wrong.
        msg: String,
        /// Byte offset into the query text.
        pos: usize,
    },
    /// Syntax error.
    Parse {
        /// What went wrong.
        msg: String,
        /// Byte offset into the query text.
        pos: usize,
    },
    /// A query that parses but cannot be compiled (unknown variable,
    /// `select *` with several `from` variables, ...).
    Compile(String),
}

impl fmt::Display for LorelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LorelError::Lex { msg, pos } => write!(f, "LOREL lexical error at byte {pos}: {msg}"),
            LorelError::Parse { msg, pos } => {
                write!(f, "LOREL syntax error at byte {pos}: {msg}")
            }
            LorelError::Compile(msg) => write!(f, "LOREL compile error: {msg}"),
        }
    }
}

impl std::error::Error for LorelError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, LorelError>;

/// One-call convenience: parse LOREL text and compile it to an MSL rule
/// against `target` (usually the mediator's name).
pub fn to_msl(text: &str, target: &str) -> Result<msl::Rule> {
    compile(&parse(text)?, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let rule = to_msl("select P.name from cs_person P where P.year = 3", "med").unwrap();
        let printed = msl::printer::rule(&rule);
        assert!(printed.contains("<cs_person {"), "{printed}");
        assert!(printed.contains("<year 3>"), "{printed}");
        assert!(printed.contains("@med"), "{printed}");
    }
}
