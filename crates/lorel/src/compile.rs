//! LOREL → MSL compilation.
//!
//! Each `from` variable becomes one MSL tail pattern (with the variable as
//! the object variable); path expressions become nested subobject patterns
//! sharing one retrieval variable per distinct path; `where` conditions
//! either inline into the pattern (equality against a literal — so the
//! MSI's pushdown machinery applies) or compile to MSL's built-in
//! comparison predicates.

use crate::parse::{CmpOp, Comparison, LorelQuery, Path, Selection};
use crate::{LorelError, Result};
use msl::{Head, PatValue, Pattern, Rule, SetElem, SetPattern, TailItem, Term};
use oem::{Symbol, Value};
use std::collections::BTreeMap;

/// Compile a parsed query into an MSL rule targeting `target`.
pub fn compile(q: &LorelQuery, target: &str) -> Result<Rule> {
    let mut c = Compiler::new(q)?;
    c.plan_paths(q)?;
    c.build(q, target)
}

#[derive(Default)]
struct PathNode {
    children: BTreeMap<String, PathNode>,
    /// Retrieval variable for this node's value (leaf paths).
    var: Option<Symbol>,
    /// Inlined equality constant (leaf paths with a single `= literal`).
    inline: Option<Value>,
}

struct Compiler {
    /// user from-var → (view label, MSL object variable, path tree)
    roots: BTreeMap<String, (String, Symbol, PathNode)>,
    /// order of the from clause
    order: Vec<String>,
    fresh: usize,
    externals: Vec<(Symbol, Vec<Term>)>,
}

impl Compiler {
    fn new(q: &LorelQuery) -> Result<Compiler> {
        let mut roots = BTreeMap::new();
        let mut order = Vec::new();
        for (label, var) in &q.from {
            if roots.contains_key(var) {
                return Err(LorelError::Compile(format!(
                    "variable '{var}' declared twice in the from clause"
                )));
            }
            // MSL variables start uppercase; map the user's name.
            let msl_var = Symbol::intern(&format!("{}{}", var[..1].to_uppercase(), &var[1..]));
            roots.insert(var.clone(), (label.clone(), msl_var, PathNode::default()));
            order.push(var.clone());
        }
        Ok(Compiler {
            roots,
            order,
            fresh: 0,
            externals: Vec::new(),
        })
    }

    fn fresh_var(&mut self) -> Symbol {
        self.fresh += 1;
        Symbol::intern(&format!("V{}", self.fresh))
    }

    /// Walk to a path's leaf node, creating intermediate nodes.
    fn leaf_mut(&mut self, path: &Path) -> Result<&mut PathNode> {
        if !self.roots.contains_key(&path.var) {
            return Err(LorelError::Compile(format!(
                "variable '{}' is not declared in the from clause",
                path.var
            )));
        }
        let (_, _, root) = self.roots.get_mut(&path.var).unwrap();
        let mut node = root;
        for step in &path.steps {
            node = node.children.entry(step.clone()).or_default();
        }
        Ok(node)
    }

    /// First pass: decide, per path, between an inlined constant and a
    /// retrieval variable; collect externals for everything else.
    fn plan_paths(&mut self, q: &LorelQuery) -> Result<()> {
        // Paths that must expose a variable: selected paths, paths compared
        // non-eq or against other paths, and paths with several conditions.
        let mut cond_count: BTreeMap<String, usize> = BTreeMap::new();
        for c in &q.conditions {
            *cond_count.entry(c.lhs.to_string()).or_insert(0) += 1;
            if let Comparison::Path(p) = &c.rhs {
                *cond_count.entry(p.to_string()).or_insert(0) += 1;
            }
        }
        let mut needs_var: Vec<Path> = Vec::new();
        if let Selection::Paths(paths) = &q.select {
            for p in paths {
                if !p.steps.is_empty() {
                    needs_var.push(p.clone());
                }
            }
        }
        for c in &q.conditions {
            if c.lhs.steps.is_empty() {
                return Err(LorelError::Compile(format!(
                    "cannot compare the whole object '{}'; compare a path",
                    c.lhs.var
                )));
            }
            let single_inline_eq = c.op == CmpOp::Eq
                && matches!(c.rhs, Comparison::Literal(_))
                && cond_count[&c.lhs.to_string()] == 1
                && !needs_var.contains(&c.lhs);
            if !single_inline_eq {
                needs_var.push(c.lhs.clone());
            }
            if let Comparison::Path(p) = &c.rhs {
                if p.steps.is_empty() {
                    return Err(LorelError::Compile(format!(
                        "cannot compare the whole object '{}'; compare a path",
                        p.var
                    )));
                }
                needs_var.push(p.clone());
            }
        }

        // Assign variables.
        for p in &needs_var {
            if self.leaf_mut(p)?.var.is_none() {
                let v = self.fresh_var();
                self.leaf_mut(p)?.var = Some(v);
            }
        }

        // Inline or externalize conditions.
        for c in &q.conditions {
            let leaf = self.leaf_mut(&c.lhs)?;
            match (&leaf.var, &c.rhs, c.op) {
                (None, Comparison::Literal(v), CmpOp::Eq) => {
                    leaf.inline = Some(v.clone());
                }
                (Some(var), rhs, op) => {
                    let lhs_term = Term::Var(*var);
                    let rhs_term = match rhs {
                        Comparison::Literal(v) => Term::Const(v.clone()),
                        Comparison::Path(p) => {
                            let pv = self.leaf_mut(p)?.var.expect("assigned above");
                            Term::Var(pv)
                        }
                    };
                    self.externals
                        .push((Symbol::intern(op.msl_name()), vec![lhs_term, rhs_term]));
                }
                (None, _, _) => unreachable!("non-inline conditions got a variable"),
            }
        }
        Ok(())
    }

    /// Second pass: emit the MSL rule.
    fn build(mut self, q: &LorelQuery, target: &str) -> Result<Rule> {
        let head = self.head(q)?;
        let target = Symbol::intern(target);
        let mut tail = Vec::new();
        for user_var in &self.order {
            let (label, msl_var, root) = &self.roots[user_var];
            let elements = node_elements(root)?;
            tail.push(TailItem::Match {
                pattern: Pattern {
                    obj_var: Some(*msl_var),
                    oid: None,
                    label: Term::str(label),
                    typ: None,
                    value: PatValue::Set(SetPattern {
                        elements,
                        rest: None,
                    }),
                },
                source: Some(target),
            });
        }
        for (name, args) in self.externals.drain(..) {
            tail.push(TailItem::External { name, args });
        }
        Ok(Rule { head, tail })
    }

    fn head(&mut self, q: &LorelQuery) -> Result<Head> {
        match &q.select {
            Selection::Star => {
                if self.order.len() != 1 {
                    return Err(LorelError::Compile(
                        "select * needs exactly one from variable".into(),
                    ));
                }
                let (_, msl_var, _) = &self.roots[&self.order[0]];
                Ok(Head::Var(*msl_var))
            }
            Selection::Paths(paths) => {
                // A single bare variable selects whole objects.
                if let [p] = paths.as_slice() {
                    if p.steps.is_empty() {
                        let Some((_, msl_var, _)) = self.roots.get(&p.var) else {
                            return Err(LorelError::Compile(format!(
                                "variable '{}' is not declared in the from clause",
                                p.var
                            )));
                        };
                        return Ok(Head::Var(*msl_var));
                    }
                }
                let mut elements = Vec::new();
                let mut used: BTreeMap<String, usize> = BTreeMap::new();
                for p in paths {
                    if p.steps.is_empty() {
                        return Err(LorelError::Compile(format!(
                            "'{}' selects a whole object; it must be the only selection",
                            p.var
                        )));
                    }
                    let var = self.leaf_mut(p)?.var.expect("selected paths have vars");
                    let mut name = p.steps.join("_");
                    let n = used.entry(name.clone()).or_insert(0);
                    *n += 1;
                    if *n > 1 {
                        name = format!("{name}_{n}");
                    }
                    elements.push(SetElem::Pattern(Pattern::lv(
                        Term::str(&name),
                        PatValue::Term(Term::Var(var)),
                    )));
                }
                Ok(Head::Pattern(Pattern::lv(
                    Term::str("result"),
                    PatValue::Set(SetPattern {
                        elements,
                        rest: None,
                    }),
                )))
            }
        }
    }
}

/// Render a path tree as MSL set elements.
fn node_elements(node: &PathNode) -> Result<Vec<SetElem>> {
    let mut out = Vec::new();
    for (label, child) in &node.children {
        let value = if child.children.is_empty() {
            match (&child.var, &child.inline) {
                (Some(v), None) => PatValue::Term(Term::Var(*v)),
                (None, Some(c)) => PatValue::Term(Term::Const(c.clone())),
                (Some(v), Some(_)) => PatValue::Term(Term::Var(*v)), // extern filters
                (None, None) => {
                    // A traversed-but-unused intermediate; existence check.
                    PatValue::Term(Term::Var(Symbol::intern(&format!("Vexists_{label}"))))
                }
            }
        } else {
            if child.var.is_some() || child.inline.is_some() {
                return Err(LorelError::Compile(format!(
                    "path step '{label}' is both traversed (has sub-paths) and \
                     compared/selected as a value; pick one"
                )));
            }
            PatValue::Set(SetPattern {
                elements: node_elements(child)?,
                rest: None,
            })
        };
        out.push(SetElem::Pattern(Pattern::lv(Term::str(label), value)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn msl_of(src: &str) -> String {
        msl::printer::rule(&compile(&parse(src).unwrap(), "med").unwrap())
    }

    #[test]
    fn star_query() {
        assert_eq!(
            msl_of("select * from cs_person P"),
            "P :- P:<cs_person {}>@med"
        );
    }

    #[test]
    fn equality_inlines_for_pushdown() {
        let r = msl_of("select P.name from cs_person P where P.year = 3");
        assert_eq!(
            r,
            "<result {<name V1>}> :- P:<cs_person {<name V1> <year 3>}>@med"
        );
    }

    #[test]
    fn non_eq_conditions_become_builtins() {
        let r = msl_of("select P.name from cs_person P where P.year >= 3");
        assert!(r.contains("ge(V2, 3)"), "{r}");
        assert!(r.contains("<year V2>"), "{r}");
    }

    #[test]
    fn selected_and_filtered_path_shares_one_variable() {
        let r = msl_of("select P.year from cs_person P where P.year = 3");
        // year is selected, so it keeps its variable and the equality is a
        // builtin filter.
        assert!(r.contains("<year V1>"), "{r}");
        assert!(r.contains("eq(V1, 3)"), "{r}");
    }

    #[test]
    fn nested_paths_nest_patterns() {
        let r = msl_of("select P.author.last from pub P where P.author.first = 'Joe'");
        assert!(r.contains("<author {<first 'Joe'> <last V1>}>"), "{r}");
    }

    #[test]
    fn join_on_paths() {
        let r = msl_of("select B.title, A.venue from book B, article A where B.title = A.title");
        assert!(r.contains("B:<book {"), "{r}");
        assert!(r.contains("A:<article {"), "{r}");
        assert!(r.contains("eq("), "{r}");
    }

    #[test]
    fn lowercase_from_variable_is_uppercased() {
        let r = msl_of("select * from cs_person p");
        assert_eq!(r, "P :- P:<cs_person {}>@med");
    }

    #[test]
    fn duplicate_select_names_disambiguated() {
        let r = msl_of("select B.title, A.title from book B, article A");
        assert!(r.contains("<title V1>") || r.contains("<title_2"), "{r}");
        assert!(r.contains("title_2"), "{r}");
    }

    #[test]
    fn compile_errors() {
        let bad = [
            "select * from book B, article A",          // star with 2 vars
            "select Z.name from book B",                // unknown variable
            "select B, A.title from book B, article A", // whole obj mixed with paths
            "select B.x from book B where B = 3",       // whole-object compare
            "select B.a.b, B.a from book B",            // traversed + selected
            "select * from book B, book B",             // duplicate from var
        ];
        for src in bad {
            let parsed = parse(src).unwrap();
            assert!(compile(&parsed, "m").is_err(), "should fail: {src}");
        }
    }

    #[test]
    fn compiled_rules_validate_as_msl() {
        for src in [
            "select * from cs_person P",
            "select P.name from cs_person P where P.year = 3",
            "select P.name, P.rel from cs_person P where P.year >= 1 and P.rel != 'x'",
            "select B.title from book B, article A where B.title = A.title",
        ] {
            let rule = compile(&parse(src).unwrap(), "med").unwrap();
            msl::validate::validate_rule(&rule, &[])
                .unwrap_or_else(|e| panic!("{src}: {e}\n{}", msl::printer::rule(&rule)));
        }
    }
}
