//! LOREL parser: `select <sel-list> from <var-decls> [where <conds>]`.

use crate::lexer::{tokenize, Tok, Token};
use crate::{LorelError, Result};
use oem::Value;

/// A path expression `X.a.b` (steps may be empty: the bare variable `X`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Path {
    /// The from-clause variable the path starts at.
    pub var: String,
    /// Label steps taken from the variable (empty for the bare variable).
    pub steps: Vec<String>,
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.var)?;
        for s in &self.steps {
            write!(f, ".{s}")?;
        }
        Ok(())
    }
}

/// The select list.
#[derive(Clone, PartialEq, Debug)]
pub enum Selection {
    /// `select *` — whole objects of the (single) from-variable.
    Star,
    /// `select X.a, Y.b, ...`
    Paths(Vec<Path>),
}

/// A comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The MSL built-in predicate name.
    pub fn msl_name(&self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Neq => "neq",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// The right-hand side of a comparison.
#[derive(Clone, PartialEq, Debug)]
pub enum Comparison {
    /// A constant (`where X.year = 3`).
    Literal(Value),
    /// Another path (`where X.name = Y.name` — a join condition).
    Path(Path),
}

/// One `where` conjunct.
#[derive(Clone, PartialEq, Debug)]
pub struct Condition {
    /// Left-hand path.
    pub lhs: Path,
    /// The comparison operator.
    pub op: CmpOp,
    /// Right-hand side: a constant or another path.
    pub rhs: Comparison,
}

/// A parsed LOREL query.
#[derive(Clone, PartialEq, Debug)]
pub struct LorelQuery {
    /// The select list.
    pub select: Selection,
    /// `(view label, variable)` pairs from the `from` clause.
    pub from: Vec<(String, String)>,
    /// The `where` conjuncts (empty when there is no `where` clause).
    pub conditions: Vec<Condition>,
}

/// Parse LOREL text.
pub fn parse(input: &str) -> Result<LorelQuery> {
    let toks = tokenize(input)?;
    let mut p = P { toks, i: 0 };
    let q = p.query()?;
    if p.i < p.toks.len() {
        return Err(LorelError::Parse {
            msg: format!("trailing input: {:?}", p.toks[p.i].kind),
            pos: p.toks[p.i].pos,
        });
    }
    Ok(q)
}

struct P {
    toks: Vec<Token>,
    i: usize,
}

impl P {
    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|t| t.pos).unwrap_or(usize::MAX)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(LorelError::Parse {
            msg: msg.into(),
            pos: self.pos(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|t| t.kind.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, k: &Tok) -> bool {
        if self.peek() == Some(k) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn query(&mut self) -> Result<LorelQuery> {
        if !self.eat(&Tok::Select) {
            return self.err("expected 'select'");
        }
        let select = if self.eat(&Tok::Star) {
            Selection::Star
        } else {
            let mut paths = vec![self.path()?];
            while self.eat(&Tok::Comma) {
                paths.push(self.path()?);
            }
            Selection::Paths(paths)
        };
        if !self.eat(&Tok::From) {
            return self.err("expected 'from'");
        }
        let mut from = Vec::new();
        loop {
            let label = self.ident("a view label")?;
            let var = self.ident("a variable")?;
            from.push((label, var));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let mut conditions = Vec::new();
        if self.eat(&Tok::Where) {
            loop {
                conditions.push(self.condition()?);
                if !self.eat(&Tok::And) {
                    break;
                }
            }
        }
        Ok(LorelQuery {
            select,
            from,
            conditions,
        })
    }

    fn path(&mut self) -> Result<Path> {
        let var = self.ident("a variable")?;
        let mut steps = Vec::new();
        while self.eat(&Tok::Dot) {
            steps.push(self.ident("a path step")?);
        }
        Ok(Path { var, steps })
    }

    fn condition(&mut self) -> Result<Condition> {
        let lhs = self.path()?;
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Neq) => CmpOp::Neq,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => return self.err(format!("expected a comparison operator, found {other:?}")),
        };
        let rhs = match self.peek() {
            Some(Tok::Str(_)) | Some(Tok::Int(_)) | Some(Tok::Real(_)) | Some(Tok::Bool(_)) => {
                let v = match self.bump().unwrap() {
                    Tok::Str(s) => Value::str(&s),
                    Tok::Int(i) => Value::Int(i),
                    Tok::Real(x) => Value::real(x),
                    Tok::Bool(b) => Value::Bool(b),
                    _ => unreachable!(),
                };
                Comparison::Literal(v)
            }
            Some(Tok::Ident(_)) => Comparison::Path(self.path()?),
            other => return self.err(format!("expected a literal or path, found {other:?}")),
        };
        Ok(Condition { lhs, op, rhs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("select * from cs_person P").unwrap();
        assert_eq!(q.select, Selection::Star);
        assert_eq!(q.from, vec![("cs_person".to_string(), "P".to_string())]);
        assert!(q.conditions.is_empty());
    }

    #[test]
    fn full_query() {
        let q = parse(
            "select P.name, P.title from cs_person P \
             where P.rel = 'employee' and P.year >= 3",
        )
        .unwrap();
        let Selection::Paths(paths) = &q.select else {
            panic!()
        };
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].to_string(), "P.name");
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.conditions[0].op, CmpOp::Eq);
        assert_eq!(
            q.conditions[0].rhs,
            Comparison::Literal(Value::str("employee"))
        );
        assert_eq!(q.conditions[1].op, CmpOp::Ge);
    }

    #[test]
    fn join_query() {
        let q = parse("select B.title from book B, article A where B.title = A.title").unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(
            q.conditions[0].rhs,
            Comparison::Path(Path {
                var: "A".into(),
                steps: vec!["title".into()]
            })
        );
    }

    #[test]
    fn nested_paths() {
        let q = parse("select P.author.last from pub P").unwrap();
        let Selection::Paths(paths) = &q.select else {
            panic!()
        };
        assert_eq!(
            paths[0].steps,
            vec!["author".to_string(), "last".to_string()]
        );
    }

    #[test]
    fn errors() {
        assert!(parse("from x X").is_err());
        assert!(parse("select").is_err());
        assert!(parse("select * from").is_err());
        assert!(parse("select * from p P where").is_err());
        assert!(parse("select * from p P where P.x").is_err());
        assert!(parse("select * from p P extra").is_err());
    }
}
