//! Structural (oid-insensitive) equality and fingerprints.
//!
//! MSL semantics call for duplicate elimination over OEM objects (§2,
//! footnote 3 and footnote 9 of the paper — the original implementation
//! lacked it; ours provides it). Two objects are *structurally equal* when
//! they have the same label and equal values, where set values are compared
//! as multisets of structurally-equal subobjects. Object-ids are ignored:
//! they carry identity, not information.
//!
//! Equality is defined coinductively so that shared and cyclic structures
//! compare correctly (bisimulation): a pair of objects currently being
//! compared is assumed equal if revisited.
//!
//! [`fingerprint`] computes an order-independent hash consistent with
//! structural equality (equal structures always produce equal fingerprints;
//! collisions are resolved by [`struct_eq`]). It uses a bounded number of
//! color-refinement rounds, so it is also well-defined on cyclic data.

use crate::store::{ObjId, ObjectStore};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

const ROUNDS: usize = 8;

#[inline]
fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn atom_hash(v: &Value) -> u64 {
    match v {
        Value::Str(s) => mix(0x51 ^ (s.index() as u64) << 1),
        Value::Int(i) => mix(0x17 ^ (*i as u64)),
        Value::RealBits(b) => mix(0x29 ^ *b),
        Value::Bool(b) => mix(0x33 ^ (*b as u64)),
        Value::Set(_) => unreachable!("atom_hash on set"),
    }
}

fn base_color(store: &ObjectStore, id: ObjId) -> u64 {
    let obj = store.get(id);
    let label_h = mix((obj.label.index() as u64) ^ 0xABCD);
    match &obj.value {
        Value::Set(children) => mix(label_h ^ 0x5E7 ^ mix(children.len() as u64)),
        atomic => mix(label_h ^ atom_hash(atomic)),
    }
}

/// Fingerprints for every object reachable from `roots`, refined `ROUNDS`
/// times. Structurally equal objects always receive equal fingerprints.
pub fn fingerprints_from(store: &ObjectStore, roots: &[ObjId]) -> HashMap<ObjId, u64> {
    // Collect the reachable set.
    let mut nodes: Vec<ObjId> = Vec::new();
    let mut seen: HashSet<ObjId> = HashSet::new();
    let mut stack: Vec<ObjId> = roots.to_vec();
    for &r in roots {
        seen.insert(r);
    }
    while let Some(id) = stack.pop() {
        nodes.push(id);
        for &c in store.children(id) {
            if seen.insert(c) {
                stack.push(c);
            }
        }
    }
    let mut colors: HashMap<ObjId, u64> = nodes
        .iter()
        .map(|&id| (id, base_color(store, id)))
        .collect();
    for _ in 0..ROUNDS {
        let mut next = HashMap::with_capacity(colors.len());
        for &id in &nodes {
            let mut acc: u64 = 0;
            for &c in store.children(id) {
                // Commutative combine (wrapping add of mixed colors) keeps
                // the fingerprint order-independent over set members.
                acc = acc.wrapping_add(mix(colors[&c]));
            }
            next.insert(id, mix(colors[&id] ^ acc.rotate_left(17)));
        }
        colors = next;
    }
    colors
}

/// The fingerprint of a single structure.
pub fn fingerprint(store: &ObjectStore, root: ObjId) -> u64 {
    fingerprints_from(store, &[root])[&root]
}

/// Structural equality within one store.
pub fn struct_eq(store: &ObjectStore, a: ObjId, b: ObjId) -> bool {
    struct_eq_cross(store, a, store, b)
}

/// Structural equality across two stores.
pub fn struct_eq_cross(sa: &ObjectStore, a: ObjId, sb: &ObjectStore, b: ObjId) -> bool {
    let fpa = fingerprints_from(sa, &[a]);
    let fpb = fingerprints_from(sb, &[b]);
    let mut assumed: HashSet<(ObjId, ObjId)> = HashSet::new();
    eq_rec(sa, a, sb, b, &fpa, &fpb, &mut assumed)
}

#[allow(clippy::too_many_arguments)]
fn eq_rec(
    sa: &ObjectStore,
    a: ObjId,
    sb: &ObjectStore,
    b: ObjId,
    fpa: &HashMap<ObjId, u64>,
    fpb: &HashMap<ObjId, u64>,
    assumed: &mut HashSet<(ObjId, ObjId)>,
) -> bool {
    if fpa[&a] != fpb[&b] {
        return false;
    }
    if !assumed.insert((a, b)) {
        // Already comparing this pair along the current path: coinductive
        // success (bisimulation).
        return true;
    }
    let oa = sa.get(a);
    let ob = sb.get(b);
    let result = oa.label == ob.label
        && match (&oa.value, &ob.value) {
            (Value::Set(ca), Value::Set(cb)) => {
                ca.len() == cb.len() && multiset_match(sa, ca, sb, cb, fpa, fpb, assumed)
            }
            (va, vb) => va == vb,
        };
    if !result {
        assumed.remove(&(a, b));
    }
    result
}

/// Multiset matching of children: bucket by fingerprint, then find a perfect
/// matching within each bucket by backtracking (buckets are almost always
/// singletons; ties only arise among structurally equal — or hash-colliding
/// — siblings).
#[allow(clippy::too_many_arguments)]
fn multiset_match(
    sa: &ObjectStore,
    ca: &[ObjId],
    sb: &ObjectStore,
    cb: &[ObjId],
    fpa: &HashMap<ObjId, u64>,
    fpb: &HashMap<ObjId, u64>,
    assumed: &mut HashSet<(ObjId, ObjId)>,
) -> bool {
    let mut buckets_a: HashMap<u64, Vec<ObjId>> = HashMap::new();
    for &x in ca {
        buckets_a.entry(fpa[&x]).or_default().push(x);
    }
    let mut buckets_b: HashMap<u64, Vec<ObjId>> = HashMap::new();
    for &y in cb {
        buckets_b.entry(fpb[&y]).or_default().push(y);
    }
    if buckets_a.len() != buckets_b.len() {
        return false;
    }
    for (fp, xs) in &buckets_a {
        let Some(ys) = buckets_b.get(fp) else {
            return false;
        };
        if xs.len() != ys.len() {
            return false;
        }
        if !match_bucket(sa, xs, sb, ys, fpa, fpb, assumed) {
            return false;
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn match_bucket(
    sa: &ObjectStore,
    xs: &[ObjId],
    sb: &ObjectStore,
    ys: &[ObjId],
    fpa: &HashMap<ObjId, u64>,
    fpb: &HashMap<ObjId, u64>,
    assumed: &mut HashSet<(ObjId, ObjId)>,
) -> bool {
    fn go(
        sa: &ObjectStore,
        xs: &[ObjId],
        sb: &ObjectStore,
        remaining: &mut Vec<ObjId>,
        idx: usize,
        fpa: &HashMap<ObjId, u64>,
        fpb: &HashMap<ObjId, u64>,
        assumed: &mut HashSet<(ObjId, ObjId)>,
    ) -> bool {
        if idx == xs.len() {
            return true;
        }
        for j in 0..remaining.len() {
            let y = remaining[j];
            if eq_rec(sa, xs[idx], sb, y, fpa, fpb, assumed) {
                remaining.swap_remove(j);
                if go(sa, xs, sb, remaining, idx + 1, fpa, fpb, assumed) {
                    return true;
                }
                remaining.push(y);
            }
        }
        false
    }
    let mut remaining = ys.to_vec();
    go(sa, xs, sb, &mut remaining, 0, fpa, fpb, assumed)
}

/// Remove structural duplicates from a list of roots, keeping the first
/// occurrence of each equivalence class. This is the duplicate elimination
/// of MSL's semantics.
pub fn dedup_structural(store: &ObjectStore, roots: &[ObjId]) -> Vec<ObjId> {
    let fps = fingerprints_from(store, roots);
    let mut by_fp: HashMap<u64, Vec<ObjId>> = HashMap::new();
    let mut out = Vec::with_capacity(roots.len());
    'next: for &r in roots {
        let fp = fps[&r];
        if let Some(candidates) = by_fp.get(&fp) {
            for &c in candidates {
                if struct_eq(store, c, r) {
                    continue 'next;
                }
            }
        }
        by_fp.entry(fp).or_default().push(r);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ObjectBuilder;
    use crate::sym;

    fn person(store: &mut ObjectStore, name: &str, dept: &str) -> ObjId {
        ObjectBuilder::set("person")
            .atom("name", name)
            .atom("dept", dept)
            .build(store)
    }

    #[test]
    fn equal_structures_different_oids() {
        let mut s = ObjectStore::new();
        let a = person(&mut s, "Joe", "CS");
        let b = person(&mut s, "Joe", "CS");
        assert_ne!(s.get(a).oid, s.get(b).oid);
        assert!(struct_eq(&s, a, b));
        assert_eq!(fingerprint(&s, a), fingerprint(&s, b));
    }

    #[test]
    fn order_of_subobjects_is_irrelevant() {
        let mut s = ObjectStore::new();
        let a = ObjectBuilder::set("person")
            .atom("name", "Joe")
            .atom("dept", "CS")
            .build(&mut s);
        let b = ObjectBuilder::set("person")
            .atom("dept", "CS")
            .atom("name", "Joe")
            .build(&mut s);
        assert!(struct_eq(&s, a, b));
        assert_eq!(fingerprint(&s, a), fingerprint(&s, b));
    }

    #[test]
    fn different_values_unequal() {
        let mut s = ObjectStore::new();
        let a = person(&mut s, "Joe", "CS");
        let b = person(&mut s, "Joe", "EE");
        assert!(!struct_eq(&s, a, b));
    }

    #[test]
    fn different_labels_unequal() {
        let mut s = ObjectStore::new();
        let a = s.atom("name", "Joe");
        let b = s.atom("fullname", "Joe");
        assert!(!struct_eq(&s, a, b));
    }

    #[test]
    fn multiset_semantics() {
        let mut s = ObjectStore::new();
        // {x, x, y} vs {x, y, y} — same length, different multisets.
        let a = ObjectBuilder::set("s")
            .atom("v", 1i64)
            .atom("v", 1i64)
            .atom("v", 2i64)
            .build(&mut s);
        let b = ObjectBuilder::set("s")
            .atom("v", 1i64)
            .atom("v", 2i64)
            .atom("v", 2i64)
            .build(&mut s);
        assert!(!struct_eq(&s, a, b));
    }

    #[test]
    fn nested_equality() {
        let mut s = ObjectStore::new();
        let mk = |s: &mut ObjectStore| {
            ObjectBuilder::set("person")
                .atom("name", "Joe")
                .child(ObjectBuilder::set("affil").atom("group", "db"))
                .build(s)
        };
        let a = mk(&mut s);
        let b = mk(&mut s);
        assert!(struct_eq(&s, a, b));
    }

    #[test]
    fn cross_store_equality() {
        let mut s1 = ObjectStore::new();
        let mut s2 = ObjectStore::with_oid_prefix("zz");
        let a = person(&mut s1, "Joe", "CS");
        let b = person(&mut s2, "Joe", "CS");
        assert!(struct_eq_cross(&s1, a, &s2, b));
    }

    #[test]
    fn cyclic_bisimulation() {
        // Two 1-cycles are bisimilar; a 1-cycle and a 2-cycle of identical
        // nodes are also bisimilar under coinductive equality.
        let mut s = ObjectStore::new();
        let a = s
            .insert(sym("&a"), sym("node"), crate::Value::Set(vec![]))
            .unwrap();
        s.add_child(a, a).unwrap();
        let b = s
            .insert(sym("&b"), sym("node"), crate::Value::Set(vec![]))
            .unwrap();
        s.add_child(b, b).unwrap();
        assert!(struct_eq(&s, a, b));

        let c = s
            .insert(sym("&c"), sym("node"), crate::Value::Set(vec![]))
            .unwrap();
        let d = s
            .insert(sym("&d"), sym("node"), crate::Value::Set(vec![c]))
            .unwrap();
        s.add_child(c, d).unwrap();
        assert!(struct_eq(&s, a, c));
    }

    #[test]
    fn dedup_keeps_first_of_each_class() {
        let mut s = ObjectStore::new();
        let a = person(&mut s, "Joe", "CS");
        let b = person(&mut s, "Joe", "CS");
        let c = person(&mut s, "Nick", "CS");
        let out = dedup_structural(&s, &[a, b, c]);
        assert_eq!(out, vec![a, c]);
    }

    #[test]
    fn dedup_empty_and_singleton() {
        let mut s = ObjectStore::new();
        assert!(dedup_structural(&s, &[]).is_empty());
        let a = person(&mut s, "Joe", "CS");
        assert_eq!(dedup_structural(&s, &[a]), vec![a]);
    }

    #[test]
    fn shared_vs_copied_subobject_equal() {
        // A set containing the same subobject twice (shared) equals a set
        // containing two structurally identical copies.
        let mut s = ObjectStore::new();
        let shared = s.atom("v", 7i64);
        let a = s.set("s", vec![shared, shared]);
        let x1 = s.atom("v", 7i64);
        let x2 = s.atom("v", 7i64);
        let b = s.set("s", vec![x1, x2]);
        assert!(struct_eq(&s, a, b));
    }
}
