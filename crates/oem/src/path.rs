//! Traversal over OEM graphs.
//!
//! Supports the paper's **wildcard** feature (§2, "Other Features of the
//! Mediator Specification Language"): searching for objects "at any level in
//! the object structure of the source, without need to specify the entire
//! path to the desired object". All traversals are cycle-safe.

use crate::store::{ObjId, ObjectStore};
use crate::symbol::Symbol;
use std::collections::HashSet;

/// Breadth-first iterator over an object and all objects reachable from it.
/// Each object is yielded at most once even in the presence of sharing or
/// cycles.
pub struct Descendants<'a> {
    store: &'a ObjectStore,
    queue: std::collections::VecDeque<ObjId>,
    seen: HashSet<ObjId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = ObjId;

    fn next(&mut self) -> Option<ObjId> {
        let id = self.queue.pop_front()?;
        for &c in self.store.children(id) {
            if self.seen.insert(c) {
                self.queue.push_back(c);
            }
        }
        Some(id)
    }
}

/// All objects reachable from `root` (including `root` itself), BFS order.
pub fn descendants(store: &ObjectStore, root: ObjId) -> Descendants<'_> {
    let mut seen = HashSet::new();
    seen.insert(root);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    Descendants { store, queue, seen }
}

/// All objects reachable from any top-level object, BFS order, each once.
pub fn reachable_from_top(store: &ObjectStore) -> Vec<ObjId> {
    let mut seen = HashSet::new();
    let mut queue: std::collections::VecDeque<ObjId> = std::collections::VecDeque::new();
    for &t in store.top_level() {
        if seen.insert(t) {
            queue.push_back(t);
        }
    }
    let mut out = Vec::new();
    while let Some(id) = queue.pop_front() {
        out.push(id);
        for &c in store.children(id) {
            if seen.insert(c) {
                queue.push_back(c);
            }
        }
    }
    out
}

/// Wildcard search: every object with label `label` reachable from `root`
/// at **any** depth (including `root`).
pub fn find_by_label(store: &ObjectStore, root: ObjId, label: Symbol) -> Vec<ObjId> {
    descendants(store, root)
        .filter(|&id| store.get(id).label == label)
        .collect()
}

/// Wildcard search from the top-level objects of the whole store.
pub fn find_by_label_anywhere(store: &ObjectStore, label: Symbol) -> Vec<ObjId> {
    reachable_from_top(store)
        .into_iter()
        .filter(|&id| store.get(id).label == label)
        .collect()
}

/// Follow a label path from `root`: `path(["person", "name"])` returns every
/// `name` child of every `person` child of `root`'s children... The empty
/// path returns `root` itself.
pub fn follow_path(store: &ObjectStore, root: ObjId, path: &[Symbol]) -> Vec<ObjId> {
    let mut frontier = vec![root];
    for &step in path {
        let mut next = Vec::new();
        for id in frontier {
            for &c in store.children(id) {
                if store.get(c).label == step {
                    next.push(c);
                }
            }
        }
        frontier = next;
    }
    frontier
}

/// Depth of the object graph under `root` (1 for an atomic root). Cycles
/// count each object once along any path.
pub fn depth(store: &ObjectStore, root: ObjId) -> usize {
    fn go(store: &ObjectStore, id: ObjId, on_path: &mut HashSet<ObjId>) -> usize {
        if !on_path.insert(id) {
            return 0; // back-edge: do not recurse
        }
        let d = store
            .children(id)
            .iter()
            .map(|&c| go(store, c, on_path))
            .max()
            .unwrap_or(0);
        on_path.remove(&id);
        d + 1
    }
    go(store, root, &mut HashSet::new())
}

/// Does any path from `root` return to an already-visited object?
pub fn has_cycle(store: &ObjectStore, root: ObjId) -> bool {
    fn go(
        store: &ObjectStore,
        id: ObjId,
        on_path: &mut HashSet<ObjId>,
        done: &mut HashSet<ObjId>,
    ) -> bool {
        if done.contains(&id) {
            return false;
        }
        if !on_path.insert(id) {
            return true;
        }
        for &c in store.children(id) {
            if go(store, c, on_path, done) {
                return true;
            }
        }
        on_path.remove(&id);
        done.insert(id);
        false
    }
    go(store, root, &mut HashSet::new(), &mut HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ObjectBuilder;
    use crate::sym;
    use crate::value::Value;

    fn sample() -> (ObjectStore, ObjId) {
        let mut s = ObjectStore::new();
        let root = ObjectBuilder::set("person")
            .atom("name", "Joe")
            .child(
                ObjectBuilder::set("affiliations")
                    .child(ObjectBuilder::set("group").atom("name", "db"))
                    .child(ObjectBuilder::set("group").atom("name", "ai")),
            )
            .build_top(&mut s);
        (s, root)
    }

    #[test]
    fn descendants_visits_all_once() {
        let (s, root) = sample();
        let all: Vec<_> = descendants(&s, root).collect();
        assert_eq!(all.len(), s.len());
        assert_eq!(all[0], root);
    }

    #[test]
    fn wildcard_find_by_label() {
        let (s, root) = sample();
        // "name" objects appear at depth 2 and depth 4.
        let names = find_by_label(&s, root, sym("name"));
        assert_eq!(names.len(), 3);
        let groups = find_by_label(&s, root, sym("group"));
        assert_eq!(groups.len(), 2);
        assert!(find_by_label(&s, root, sym("missing")).is_empty());
    }

    #[test]
    fn follow_path_steps() {
        let (s, root) = sample();
        let names = follow_path(&s, root, &[sym("affiliations"), sym("group"), sym("name")]);
        assert_eq!(names.len(), 2);
        assert_eq!(follow_path(&s, root, &[]), vec![root]);
        assert!(follow_path(&s, root, &[sym("nope")]).is_empty());
    }

    #[test]
    fn depth_and_cycles() {
        let (s, root) = sample();
        assert_eq!(depth(&s, root), 4);
        assert!(!has_cycle(&s, root));

        let mut c = ObjectStore::new();
        let a = c
            .insert(sym("&a"), sym("node"), Value::Set(vec![]))
            .unwrap();
        let b = c
            .insert(sym("&b"), sym("node"), Value::Set(vec![a]))
            .unwrap();
        c.add_child(a, b).unwrap();
        assert!(has_cycle(&c, a));
        // Cycle-safe: must terminate.
        assert_eq!(descendants(&c, a).count(), 2);
        assert!(depth(&c, a) >= 2);
    }

    #[test]
    fn reachable_from_top_ignores_garbage() {
        let mut s = ObjectStore::new();
        let kept = s.atom("name", "x");
        let top = s.set("person", vec![kept]);
        s.add_top(top);
        let _orphan = s.atom("junk", 1i64);
        assert_eq!(reachable_from_top(&s).len(), 2);
    }

    #[test]
    fn shared_subobject_visited_once() {
        let mut s = ObjectStore::new();
        let shared = s.atom("addr", "Gates");
        let p1 = s.set("person", vec![shared]);
        let p2 = s.set("person", vec![shared]);
        s.add_top(p1);
        s.add_top(p2);
        assert_eq!(reachable_from_top(&s).len(), 3);
    }
}

/// Garbage-collect a store: rebuild it keeping only objects reachable from
/// the top level. Returns the new store (ids are re-issued; oids are
/// preserved). The mediator uses this to compact its working memory after
/// large intermediate results.
pub fn gc(store: &ObjectStore) -> ObjectStore {
    let mut out = ObjectStore::new();
    let mut map: std::collections::HashMap<ObjId, ObjId> = std::collections::HashMap::new();
    // First pass: create all reachable objects (sets empty).
    let reachable = reachable_from_top(store);
    for &id in &reachable {
        let obj = store.get(id);
        let value = match &obj.value {
            crate::value::Value::Set(_) => crate::value::Value::Set(Vec::new()),
            atomic => atomic.clone(),
        };
        let new = out
            .insert(obj.oid, obj.label, value)
            .expect("oids unique within the source store");
        map.insert(id, new);
    }
    // Second pass: wire children.
    for &id in &reachable {
        if let Some(children) = store.get(id).value.as_set() {
            let kids: Vec<ObjId> = children.iter().map(|c| map[c]).collect();
            *out.get_mut(map[&id]).value.as_set_mut().unwrap() = kids;
        }
    }
    for &t in store.top_level() {
        out.add_top(map[&t]);
    }
    out
}

#[cfg(test)]
mod gc_tests {
    use super::*;
    use crate::builder::ObjectBuilder;

    #[test]
    fn gc_drops_garbage_keeps_structure() {
        let mut s = ObjectStore::new();
        let keep = ObjectBuilder::set("person")
            .atom("name", "A")
            .build_top(&mut s);
        let _garbage1 = s.atom("junk", 1i64);
        let _garbage2 = s.set("orphan", vec![]);
        assert_eq!(s.len(), 4);
        let compacted = gc(&s);
        assert_eq!(compacted.len(), 2);
        assert_eq!(compacted.top_level().len(), 1);
        assert!(crate::eq::struct_eq_cross(
            &s,
            keep,
            &compacted,
            compacted.top_level()[0]
        ));
        compacted.validate().unwrap();
    }

    #[test]
    fn gc_preserves_sharing_and_cycles() {
        let mut s = ObjectStore::new();
        let a = s
            .insert(
                crate::sym("a"),
                crate::sym("node"),
                crate::Value::Set(vec![]),
            )
            .unwrap();
        let b = s
            .insert(
                crate::sym("b"),
                crate::sym("node"),
                crate::Value::Set(vec![a]),
            )
            .unwrap();
        s.add_child(a, b).unwrap();
        s.add_top(a);
        let g = gc(&s);
        g.validate().unwrap();
        let ga = g.by_oid(crate::sym("a")).unwrap();
        let gb = g.by_oid(crate::sym("b")).unwrap();
        assert_eq!(g.children(ga), &[gb]);
        assert_eq!(g.children(gb), &[ga]);
    }
}
