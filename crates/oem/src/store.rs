//! The object arena.
//!
//! An [`ObjectStore`] owns a collection of OEM objects. Objects refer to
//! their subobjects through [`ObjId`] indices into the arena, which makes
//! arbitrary graphs — shared subobjects, even cycles — representable without
//! reference counting.
//!
//! Each store also tracks its **top-level objects**: the leftmost-indented
//! objects of the paper's figures, which are the default entry points for
//! queries ("for performance reasons clients query object structures
//! starting, by default, from the top-level objects", §1.1).

use crate::error::{OemError, Result};
use crate::symbol::Symbol;
use crate::value::{OemType, Value};
use std::collections::HashMap;
use std::fmt;

/// Index of an object within one [`ObjectStore`].
///
/// `ObjId`s are only meaningful relative to the store that issued them;
/// [`crate::copy::deep_copy`] translates between stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjId(u32);

#[cfg(feature = "serde")]
impl serde::Serialize for ObjId {
    fn to_value(&self) -> serde::Value {
        serde::Value::Int(self.0 as i64)
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for ObjId {
    fn from_value(v: &serde::Value) -> std::result::Result<ObjId, serde::Error> {
        let raw: u32 = serde::Deserialize::from_value(v)?;
        Ok(ObjId(raw))
    }
}

impl ObjId {
    /// Construct from a raw index. Intended for tests and serialization.
    pub fn from_raw(raw: u32) -> ObjId {
        ObjId(raw)
    }

    /// The raw index.
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One OEM object: `<oid, label, type, value>`. The type is implied by the
/// value and available via [`OemObject::oem_type`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OemObject {
    /// The object-id, e.g. `&p1`. Unique within a store.
    pub oid: Symbol,
    /// The descriptive label, e.g. `person`.
    pub label: Symbol,
    /// The value: atomic, or a set of subobject ids.
    pub value: Value,
}

impl OemObject {
    /// The OEM type tag of this object.
    pub fn oem_type(&self) -> OemType {
        self.value.oem_type()
    }
}

/// An arena of OEM objects plus the list of top-level entry points.
///
/// ```
/// use oem::{ObjectStore, Value, sym};
/// let mut store = ObjectStore::new();
/// let name = store.atom("name", "Joe Chung");
/// let person = store.set("person", vec![name]);
/// store.add_top(person);
/// assert_eq!(store.top_level(), &[person]);
/// assert_eq!(store.get(name).value, Value::str("Joe Chung"));
/// assert_eq!(store.children(person), &[name]);
/// ```
#[derive(Default, Clone)]
pub struct ObjectStore {
    slots: Vec<OemObject>,
    top: Vec<ObjId>,
    by_oid: HashMap<Symbol, ObjId>,
    /// Counter for generated oids (`&x1`, `&x2`, ... by default).
    gen_counter: u64,
    /// Prefix used for generated oids; the paper's mediator memory uses
    /// `x`-prefixed addresses (Fig 3.6), wrappers use source-specific ones.
    gen_prefix: String,
}

impl ObjectStore {
    /// An empty store with the default `&x` oid generator.
    pub fn new() -> ObjectStore {
        ObjectStore {
            slots: Vec::new(),
            top: Vec::new(),
            by_oid: HashMap::new(),
            gen_counter: 0,
            gen_prefix: "x".to_string(),
        }
    }

    /// An empty store whose generated oids use the given prefix, e.g.
    /// `with_oid_prefix("cp")` generates `&cp1`, `&cp2`, ...
    pub fn with_oid_prefix(prefix: &str) -> ObjectStore {
        let mut s = ObjectStore::new();
        s.gen_prefix = prefix.to_string();
        s
    }

    /// Number of objects in the arena.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Generate a fresh oid that is not yet used in this store.
    pub fn gen_oid(&mut self) -> Symbol {
        loop {
            self.gen_counter += 1;
            let oid = Symbol::intern(&format!("{}{}", self.gen_prefix, self.gen_counter));
            if !self.by_oid.contains_key(&oid) {
                return oid;
            }
        }
    }

    /// Insert an object with an explicit oid.
    ///
    /// Errors with [`OemError::DuplicateOid`] if the oid is already taken —
    /// object-ids carry identity, so silently overwriting would corrupt the
    /// graph.
    pub fn insert(&mut self, oid: Symbol, label: Symbol, value: Value) -> Result<ObjId> {
        if self.by_oid.contains_key(&oid) {
            return Err(OemError::DuplicateOid(oid.as_str()));
        }
        let id = ObjId(self.slots.len() as u32);
        self.slots.push(OemObject { oid, label, value });
        self.by_oid.insert(oid, id);
        Ok(id)
    }

    /// Insert an object with a generated oid.
    pub fn insert_auto(&mut self, label: Symbol, value: Value) -> ObjId {
        let oid = self.gen_oid();
        self.insert(oid, label, value)
            .expect("generated oid must be fresh")
    }

    /// Insert an atomic object with a generated oid.
    pub fn atom(&mut self, label: impl Into<Symbol>, value: impl Into<Value>) -> ObjId {
        let v = value.into();
        debug_assert!(v.is_atomic(), "atom() requires an atomic value");
        self.insert_auto(label.into(), v)
    }

    /// Insert a set object (with the given children) and a generated oid.
    pub fn set(&mut self, label: impl Into<Symbol>, children: Vec<ObjId>) -> ObjId {
        self.insert_auto(label.into(), Value::Set(children))
    }

    /// Mark an object as top-level. Idempotent.
    pub fn add_top(&mut self, id: ObjId) {
        if !self.top.contains(&id) {
            self.top.push(id);
        }
    }

    /// The top-level objects, in insertion order.
    pub fn top_level(&self) -> &[ObjId] {
        &self.top
    }

    /// Replace the top-level list (e.g. after duplicate elimination). Ids
    /// must belong to this store.
    pub fn set_top_level(&mut self, tops: Vec<ObjId>) {
        debug_assert!(tops.iter().all(|t| self.try_get(*t).is_some()));
        self.top = tops;
    }

    /// Fetch an object. Panics on a foreign/forged id (ids are only created
    /// by this store, so this indicates a logic error, not bad data).
    pub fn get(&self, id: ObjId) -> &OemObject {
        &self.slots[id.0 as usize]
    }

    /// Mutable access to an object.
    pub fn get_mut(&mut self, id: ObjId) -> &mut OemObject {
        &mut self.slots[id.0 as usize]
    }

    /// Checked fetch.
    pub fn try_get(&self, id: ObjId) -> Option<&OemObject> {
        self.slots.get(id.0 as usize)
    }

    /// Look up an object by its oid.
    pub fn by_oid(&self, oid: Symbol) -> Option<ObjId> {
        self.by_oid.get(&oid).copied()
    }

    /// Iterate over every object id in the arena.
    pub fn ids(&self) -> impl Iterator<Item = ObjId> + '_ {
        (0..self.slots.len() as u32).map(ObjId)
    }

    /// Iterate `(id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &OemObject)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId(i as u32), o))
    }

    /// The children of an object (empty slice for atomic objects).
    pub fn children(&self, id: ObjId) -> &[ObjId] {
        self.get(id).value.as_set().unwrap_or(&[])
    }

    /// Append a child to a set object.
    ///
    /// Errors with [`OemError::NotASet`] when the target is atomic.
    pub fn add_child(&mut self, parent: ObjId, child: ObjId) -> Result<()> {
        let obj = self.get_mut(parent);
        match obj.value.as_set_mut() {
            Some(ids) => {
                if !ids.contains(&child) {
                    ids.push(child);
                }
                Ok(())
            }
            None => Err(OemError::NotASet(obj.oid.as_str())),
        }
    }

    /// Validate internal consistency: every child reference resolves, and
    /// the oid index is exact. Used by tests and after deserialization.
    pub fn validate(&self) -> Result<()> {
        for (id, obj) in self.iter() {
            if let Some(children) = obj.value.as_set() {
                for c in children {
                    if self.try_get(*c).is_none() {
                        return Err(OemError::DanglingRef {
                            parent: obj.oid.as_str(),
                            child: c.raw(),
                        });
                    }
                }
            }
            match self.by_oid.get(&obj.oid) {
                Some(found) if *found == id => {}
                _ => return Err(OemError::CorruptOidIndex(obj.oid.as_str())),
            }
        }
        for t in &self.top {
            if self.try_get(*t).is_none() {
                return Err(OemError::DanglingRef {
                    parent: "<top>".to_string(),
                    child: t.raw(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ObjectStore({} objects, {} top-level)",
            self.slots.len(),
            self.top.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn insert_and_get() {
        let mut s = ObjectStore::new();
        let id = s
            .insert(sym("&n1"), sym("name"), Value::str("Joe Chung"))
            .unwrap();
        let obj = s.get(id);
        assert_eq!(obj.label, sym("name"));
        assert_eq!(obj.value, Value::str("Joe Chung"));
        assert_eq!(obj.oem_type(), OemType::Str);
        assert_eq!(s.by_oid(sym("&n1")), Some(id));
    }

    #[test]
    fn duplicate_oid_rejected() {
        let mut s = ObjectStore::new();
        s.insert(sym("&a"), sym("x"), Value::Int(1)).unwrap();
        let err = s.insert(sym("&a"), sym("y"), Value::Int(2)).unwrap_err();
        assert!(matches!(err, OemError::DuplicateOid(_)));
    }

    #[test]
    fn generated_oids_are_fresh() {
        let mut s = ObjectStore::new();
        // Pre-claim the oid the generator would produce first.
        s.insert(sym("x1"), sym("a"), Value::Int(1)).unwrap();
        let id = s.atom("b", 2i64);
        assert_ne!(s.get(id).oid, sym("x1"));
    }

    #[test]
    fn oid_prefix() {
        let mut s = ObjectStore::with_oid_prefix("cp");
        let id = s.atom("name", "Joe");
        assert_eq!(s.get(id).oid, sym("cp1"));
    }

    #[test]
    fn top_level_tracking() {
        let mut s = ObjectStore::new();
        let a = s.atom("name", "Joe");
        let p = s.set("person", vec![a]);
        s.add_top(p);
        s.add_top(p); // idempotent
        assert_eq!(s.top_level(), &[p]);
        assert_eq!(s.children(p), &[a]);
        assert!(s.children(a).is_empty());
    }

    #[test]
    fn add_child_to_atom_fails() {
        let mut s = ObjectStore::new();
        let a = s.atom("name", "Joe");
        let b = s.atom("dept", "CS");
        assert!(matches!(s.add_child(a, b), Err(OemError::NotASet(_))));
    }

    #[test]
    fn add_child_dedupes() {
        let mut s = ObjectStore::new();
        let a = s.atom("name", "Joe");
        let p = s.set("person", vec![]);
        s.add_child(p, a).unwrap();
        s.add_child(p, a).unwrap();
        assert_eq!(s.children(p), &[a]);
    }

    #[test]
    fn cycles_are_representable() {
        // <&a, node, set, {&b}>  <&b, node, set, {&a}>
        let mut s = ObjectStore::new();
        let a = s
            .insert(sym("&a"), sym("node"), Value::Set(vec![]))
            .unwrap();
        let b = s
            .insert(sym("&b"), sym("node"), Value::Set(vec![a]))
            .unwrap();
        s.add_child(a, b).unwrap();
        assert_eq!(s.children(a), &[b]);
        assert_eq!(s.children(b), &[a]);
        s.validate().unwrap();
    }

    #[test]
    fn validate_catches_dangling() {
        let mut s = ObjectStore::new();
        let bogus = ObjId::from_raw(42);
        s.insert(sym("&p"), sym("person"), Value::Set(vec![bogus]))
            .unwrap();
        assert!(matches!(s.validate(), Err(OemError::DanglingRef { .. })));
    }

    #[test]
    fn iteration_covers_all() {
        let mut s = ObjectStore::new();
        for i in 0..5 {
            s.atom("n", i as i64);
        }
        assert_eq!(s.ids().count(), 5);
        assert_eq!(s.iter().count(), 5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }
}
