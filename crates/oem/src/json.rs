//! Serde-friendly export/import of OEM stores (feature `serde`).
//!
//! Used by tools and tests that want machine-readable snapshots of
//! experiment outputs. The representation is a flat list of objects —
//! `{oid, label, value}` with set values as oid-reference lists — plus the
//! top-level oid list, so sharing and cycles survive the round trip.

use crate::error::{OemError, Result};
use crate::store::{ObjId, ObjectStore};
use crate::symbol::Symbol;
use crate::value::Value;

/// One exported object.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonObject {
    /// The object id.
    pub oid: Symbol,
    /// The object's label.
    pub label: Symbol,
    /// The object's value.
    pub value: JsonValue,
}

/// An exported value. Serialized in adjacently-tagged form,
/// `{"type": <oem keyword>, "v": <payload>}`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string atom.
    Str(String),
    /// An integer atom.
    Int(i64),
    /// A real atom.
    Real(f64),
    /// A boolean atom.
    Bool(bool),
    /// Subobject references by oid.
    Set(Vec<Symbol>),
}

/// A whole exported store.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct JsonStore {
    /// Every exported object, subobjects included.
    pub objects: Vec<JsonObject>,
    /// Oids of the store's top-level objects, in answer order.
    pub top_level: Vec<Symbol>,
}

impl serde::Serialize for JsonObject {
    fn to_value(&self) -> serde::Value {
        serde::object([
            ("oid", self.oid.to_value()),
            ("label", self.label.to_value()),
            ("value", self.value.to_value()),
        ])
    }
}

impl serde::Deserialize for JsonObject {
    fn from_value(v: &serde::Value) -> std::result::Result<JsonObject, serde::Error> {
        Ok(JsonObject {
            oid: serde::field(v, "oid")?,
            label: serde::field(v, "label")?,
            value: serde::field(v, "value")?,
        })
    }
}

impl serde::Serialize for JsonValue {
    fn to_value(&self) -> serde::Value {
        let (tag, payload) = match self {
            JsonValue::Str(s) => ("string", s.to_value()),
            JsonValue::Int(i) => ("integer", i.to_value()),
            JsonValue::Real(x) => ("real", x.to_value()),
            JsonValue::Bool(b) => ("boolean", b.to_value()),
            JsonValue::Set(oids) => ("set", oids.to_value()),
        };
        serde::object([("type", tag.into()), ("v", payload)])
    }
}

impl serde::Deserialize for JsonValue {
    fn from_value(v: &serde::Value) -> std::result::Result<JsonValue, serde::Error> {
        let tag: String = serde::field(v, "type")?;
        Ok(match tag.as_str() {
            "string" => JsonValue::Str(serde::field(v, "v")?),
            "integer" => JsonValue::Int(serde::field(v, "v")?),
            "real" => JsonValue::Real(serde::field(v, "v")?),
            "boolean" => JsonValue::Bool(serde::field(v, "v")?),
            "set" => JsonValue::Set(serde::field(v, "v")?),
            other => return Err(serde::Error::custom(format!("unknown value tag '{other}'"))),
        })
    }
}

impl serde::Serialize for JsonStore {
    fn to_value(&self) -> serde::Value {
        serde::object([
            ("objects", self.objects.to_value()),
            ("top_level", self.top_level.to_value()),
        ])
    }
}

impl serde::Deserialize for JsonStore {
    fn from_value(v: &serde::Value) -> std::result::Result<JsonStore, serde::Error> {
        Ok(JsonStore {
            objects: serde::field(v, "objects")?,
            top_level: serde::field(v, "top_level")?,
        })
    }
}

/// Export a store.
pub fn export(store: &ObjectStore) -> JsonStore {
    let objects = store
        .iter()
        .map(|(_, obj)| JsonObject {
            oid: obj.oid,
            label: obj.label,
            value: match &obj.value {
                Value::Str(s) => JsonValue::Str(s.as_str()),
                Value::Int(i) => JsonValue::Int(*i),
                Value::RealBits(b) => JsonValue::Real(f64::from_bits(*b)),
                Value::Bool(b) => JsonValue::Bool(*b),
                Value::Set(kids) => {
                    JsonValue::Set(kids.iter().map(|&k| store.get(k).oid).collect())
                }
            },
        })
        .collect();
    let top_level = store
        .top_level()
        .iter()
        .map(|&t| store.get(t).oid)
        .collect();
    JsonStore { objects, top_level }
}

/// Import a previously exported store.
pub fn import(json: &JsonStore) -> Result<ObjectStore> {
    let mut store = ObjectStore::new();
    // Pass 1: create objects (sets start empty).
    let mut ids: Vec<ObjId> = Vec::with_capacity(json.objects.len());
    for obj in &json.objects {
        let value = match &obj.value {
            JsonValue::Str(s) => Value::str(s),
            JsonValue::Int(i) => Value::Int(*i),
            JsonValue::Real(x) => Value::real(*x),
            JsonValue::Bool(b) => Value::Bool(*b),
            JsonValue::Set(_) => Value::Set(Vec::new()),
        };
        ids.push(store.insert(obj.oid, obj.label, value)?);
    }
    // Pass 2: resolve set members.
    for (obj, &id) in json.objects.iter().zip(&ids) {
        if let JsonValue::Set(kids) = &obj.value {
            let resolved: Vec<ObjId> = kids
                .iter()
                .map(|k| {
                    store
                        .by_oid(*k)
                        .ok_or_else(|| OemError::UnresolvedOid(k.as_str()))
                })
                .collect::<Result<_>>()?;
            *store.get_mut(id).value.as_set_mut().unwrap() = resolved;
        }
    }
    for t in &json.top_level {
        let id = store
            .by_oid(*t)
            .ok_or_else(|| OemError::UnresolvedOid(t.as_str()))?;
        store.add_top(id);
    }
    store.validate()?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ObjectBuilder;
    use crate::sym;

    fn sample() -> ObjectStore {
        let mut s = ObjectStore::new();
        let shared = s.atom("addr", "Gates");
        let p1 = ObjectBuilder::set("person")
            .atom("name", "Joe Chung")
            .atom("year", 3i64)
            .atom("gpa", 3.9)
            .atom("active", true)
            .build(&mut s);
        s.add_child(p1, shared).unwrap();
        s.add_top(p1);
        let p2 = s.set("person", vec![shared]);
        s.add_top(p2);
        s
    }

    #[test]
    fn roundtrip_preserves_structure_and_sharing() {
        let store = sample();
        let exported = export(&store);
        let text = serde_json::to_string_pretty(&exported).unwrap();
        let parsed: JsonStore = serde_json::from_str(&text).unwrap();
        let imported = import(&parsed).unwrap();
        assert_eq!(imported.len(), store.len());
        assert_eq!(imported.top_level().len(), 2);
        for (&a, &b) in store.top_level().iter().zip(imported.top_level()) {
            assert!(crate::eq::struct_eq_cross(&store, a, &imported, b));
        }
        // Sharing preserved: both persons reference the same address object.
        let t0 = imported.top_level()[0];
        let t1 = imported.top_level()[1];
        let addr0 = imported
            .children(t0)
            .iter()
            .copied()
            .find(|&c| imported.get(c).label == sym("addr"))
            .unwrap();
        assert!(imported.children(t1).contains(&addr0));
    }

    #[test]
    fn cycles_roundtrip() {
        let mut s = ObjectStore::new();
        let a = s.insert(sym("a"), sym("node"), Value::Set(vec![])).unwrap();
        let b = s
            .insert(sym("b"), sym("node"), Value::Set(vec![a]))
            .unwrap();
        s.add_child(a, b).unwrap();
        s.add_top(a);
        let imported = import(&export(&s)).unwrap();
        let ia = imported.by_oid(sym("a")).unwrap();
        let ib = imported.by_oid(sym("b")).unwrap();
        assert_eq!(imported.children(ia), &[ib]);
        assert_eq!(imported.children(ib), &[ia]);
    }

    #[test]
    fn dangling_reference_rejected() {
        let bad = JsonStore {
            objects: vec![JsonObject {
                oid: sym("x"),
                label: sym("s"),
                value: JsonValue::Set(vec![sym("missing")]),
            }],
            top_level: vec![sym("x")],
        };
        assert!(matches!(import(&bad), Err(OemError::UnresolvedOid(_))));
    }
}
