//! Parser for the textual OEM syntax used throughout the paper's figures:
//!
//! ```text
//! <&p1, person, set, {&n1,&d1,&rel1,&elm1}>
//!   <&n1, name, string, 'Joe Chung'>
//!   <&d1, dept, string, 'CS'>
//!   <&rel1, relation, string, 'employee'>
//!   <&elm1, e_mail, string, 'chung@cs'>
//! ;
//! ```
//!
//! Accepted extensions beyond the figures:
//! * the type field may be omitted (inferred from the value);
//! * set members may be inline object literals instead of oid references;
//! * oids may be omitted on inline objects (fresh ones are generated);
//! * commas between set members are optional (the figures omit them after
//!   objects but use them between oid references);
//! * `;` is an ignorable separator.
//!
//! Forward references are allowed — figures list parents before children —
//! and resolution happens after the whole input is read. Objects that are
//! never referenced as a subobject become **top-level** objects, exactly as
//! in the figures where top-level objects are the leftmost-indented ones.

use crate::error::{OemError, Result};
use crate::store::{ObjId, ObjectStore};
use crate::symbol::Symbol;
use crate::value::{OemType, Value};
use std::collections::{HashMap, HashSet};

/// Parse OEM text into a fresh store.
pub fn parse_store(input: &str) -> Result<ObjectStore> {
    let mut store = ObjectStore::new();
    parse_into(input, &mut store)?;
    Ok(store)
}

/// Parse OEM text into an existing store; returns the top-level ids added.
pub fn parse_into(input: &str, store: &mut ObjectStore) -> Result<Vec<ObjId>> {
    let mut p = Parser::new(input);
    let mut entries = Vec::new();
    loop {
        p.skip_ws_and_semis();
        if p.at_end() {
            break;
        }
        entries.push(p.object()?);
    }
    link(entries, store)
}

// ---------------------------------------------------------------------
// Raw parse tree

struct RawObject {
    oid: Option<String>,
    label: String,
    declared_type: Option<OemType>,
    value: RawValue,
    line: usize,
    col: usize,
}

enum RawValue {
    Atom(Value),
    Set(Vec<RawMember>),
}

enum RawMember {
    Ref(String),
    Inline(RawObject),
}

// ---------------------------------------------------------------------
// Linking

fn link(entries: Vec<RawObject>, store: &mut ObjectStore) -> Result<Vec<ObjId>> {
    struct Flat {
        id: ObjId,
        members: Option<Vec<FlatMember>>,
    }
    enum FlatMember {
        Ref(String),
        Direct(ObjId),
    }

    let mut named: HashMap<String, ObjId> = HashMap::new();
    let mut flats: Vec<Flat> = Vec::new();
    let mut outer: Vec<ObjId> = Vec::new();

    // Pass 1: create every object; sets start empty.
    fn insert_one(
        obj: RawObject,
        store: &mut ObjectStore,
        named: &mut HashMap<String, ObjId>,
        flats: &mut Vec<Flat>,
    ) -> Result<ObjId> {
        let label = Symbol::intern(&obj.label);
        let (value, members) = match obj.value {
            RawValue::Atom(v) => {
                if let Some(t) = obj.declared_type {
                    if t != v.oem_type() {
                        return Err(OemError::Parse {
                            msg: format!(
                                "declared type '{}' does not match value of type '{}'",
                                t.keyword(),
                                v.oem_type().keyword()
                            ),
                            line: obj.line,
                            col: obj.col,
                        });
                    }
                }
                (v, None)
            }
            RawValue::Set(members) => {
                if let Some(t) = obj.declared_type {
                    if t != OemType::Set {
                        return Err(OemError::Parse {
                            msg: format!("declared type '{}' but value is a set", t.keyword()),
                            line: obj.line,
                            col: obj.col,
                        });
                    }
                }
                (Value::Set(Vec::new()), Some(members))
            }
        };
        let id = match &obj.oid {
            Some(oid) => {
                let s = Symbol::intern(oid);
                store.insert(s, label, value).map_err(|e| match e {
                    OemError::DuplicateOid(o) => OemError::Parse {
                        msg: format!("duplicate object-id &{o}"),
                        line: obj.line,
                        col: obj.col,
                    },
                    other => other,
                })?
            }
            None => store.insert_auto(label, value),
        };
        if let Some(oid) = obj.oid {
            named.insert(oid, id);
        }
        let flat_members = match members {
            None => None,
            Some(ms) => {
                let mut fm = Vec::with_capacity(ms.len());
                for m in ms {
                    match m {
                        RawMember::Ref(r) => fm.push(FlatMember::Ref(r)),
                        RawMember::Inline(inner) => {
                            let cid = insert_one(inner, store, named, flats)?;
                            fm.push(FlatMember::Direct(cid));
                        }
                    }
                }
                Some(fm)
            }
        };
        flats.push(Flat {
            id,
            members: flat_members,
        });
        Ok(id)
    }

    for obj in entries {
        let id = insert_one(obj, store, &mut named, &mut flats)?;
        outer.push(id);
    }

    // Pass 2: resolve references and record which ids are referenced.
    let mut referenced: HashSet<ObjId> = HashSet::new();
    for flat in &flats {
        let Some(members) = &flat.members else {
            continue;
        };
        let mut kids: Vec<ObjId> = Vec::with_capacity(members.len());
        for m in members {
            let cid = match m {
                FlatMember::Direct(id) => *id,
                FlatMember::Ref(name) => *named
                    .get(name)
                    .ok_or_else(|| OemError::UnresolvedOid(name.clone()))?,
            };
            referenced.insert(cid);
            kids.push(cid);
        }
        *store.get_mut(flat.id).value.as_set_mut().unwrap() = kids;
    }

    // Top-level: outer entries that nobody references.
    let tops: Vec<ObjId> = outer
        .into_iter()
        .filter(|id| !referenced.contains(id))
        .collect();
    for &t in &tops {
        store.add_top(t);
    }
    Ok(tops)
}

// ---------------------------------------------------------------------
// Character-level parser

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    _input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            _input: input,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(OemError::Parse {
            msg: msg.into(),
            line: self.line,
            col: self.col,
        })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                // Line comments, for test fixtures.
                Some('/') if self.chars.get(self.pos + 1) == Some(&'/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn skip_ws_and_semis(&mut self) {
        loop {
            self.skip_ws();
            if self.peek() == Some(';') || self.peek() == Some(',') {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            self.err(format!(
                "expected '{c}', found {}",
                self.peek()
                    .map_or("end of input".to_string(), |x| format!("'{x}'"))
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '@' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if s.is_empty() {
            self.err("expected an identifier")
        } else {
            Ok(s)
        }
    }

    /// `<oid?, label, type?, value>`
    fn object(&mut self) -> Result<RawObject> {
        let (line, col) = (self.line, self.col);
        self.expect('<')?;
        self.skip_ws();

        // Optional oid.
        let oid = if self.peek() == Some('&') {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        self.skip_ws();
        if oid.is_some() {
            self.expect(',')?;
            self.skip_ws();
        }

        let label = self.ident()?;
        self.skip_ws();
        self.expect(',')?;
        self.skip_ws();

        // Either "type, value" or just "value". Try to read an identifier
        // and see whether it is a type keyword followed by a comma.
        let declared_type;
        let value;
        if self.peek() == Some('{') {
            declared_type = None;
            value = RawValue::Set(self.set_members()?);
        } else if self.peek() == Some('\'') {
            declared_type = None;
            value = RawValue::Atom(Value::Str(Symbol::intern(&self.quoted()?)));
        } else if self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+')
        {
            declared_type = None;
            value = RawValue::Atom(self.number()?);
        } else {
            // An identifier: a type keyword (followed by a comma) or a bare
            // boolean value.
            let word = self.ident()?;
            self.skip_ws();
            if self.peek() == Some(',') {
                let Some(t) = OemType::from_keyword(&word) else {
                    return self.err(format!("unknown type keyword '{word}'"));
                };
                declared_type = Some(t);
                self.bump(); // ','
                self.skip_ws();
                value = self.value()?;
            } else {
                match word.as_str() {
                    "true" => {
                        declared_type = None;
                        value = RawValue::Atom(Value::Bool(true));
                    }
                    "false" => {
                        declared_type = None;
                        value = RawValue::Atom(Value::Bool(false));
                    }
                    _ => return self.err(format!("unexpected bare word '{word}'")),
                }
            }
        }
        self.skip_ws();
        self.expect('>')?;
        Ok(RawObject {
            oid,
            label,
            declared_type,
            value,
            line,
            col,
        })
    }

    fn value(&mut self) -> Result<RawValue> {
        match self.peek() {
            Some('{') => Ok(RawValue::Set(self.set_members()?)),
            Some('\'') => Ok(RawValue::Atom(Value::Str(Symbol::intern(&self.quoted()?)))),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                Ok(RawValue::Atom(self.number()?))
            }
            Some(c) if c.is_alphabetic() => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(RawValue::Atom(Value::Bool(true))),
                    "false" => Ok(RawValue::Atom(Value::Bool(false))),
                    _ => self.err(format!("expected a value, found '{word}'")),
                }
            }
            _ => self.err("expected a value"),
        }
    }

    fn set_members(&mut self) -> Result<Vec<RawMember>> {
        self.expect('{')?;
        let mut members = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(',') {
                self.bump();
                continue;
            }
            match self.peek() {
                Some('}') => {
                    self.bump();
                    return Ok(members);
                }
                Some('&') => {
                    self.bump();
                    members.push(RawMember::Ref(self.ident()?));
                }
                Some('<') => {
                    members.push(RawMember::Inline(self.object()?));
                }
                Some(c) => return self.err(format!("unexpected '{c}' in set value")),
                None => return self.err("unterminated set value"),
            }
        }
    }

    fn quoted(&mut self) -> Result<String> {
        self.expect('\'')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string literal"),
                Some('\\') => match self.bump() {
                    Some('\'') => s.push('\''),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(c) => return self.err(format!("unknown escape '\\{c}'")),
                    None => return self.err("unterminated escape"),
                },
                Some('\'') => return Ok(s),
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let mut s = String::new();
        if matches!(self.peek(), Some('-') | Some('+')) {
            s.push(self.bump().unwrap());
        }
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_real {
                is_real = true;
                s.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E') && !s.is_empty() {
                is_real = true;
                s.push(c);
                self.bump();
                if matches!(self.peek(), Some('-') | Some('+')) {
                    s.push(self.bump().unwrap());
                }
            } else {
                break;
            }
        }
        if is_real {
            s.parse::<f64>()
                .map(Value::real)
                .or_else(|_| self.err(format!("bad real literal '{s}'")))
        } else {
            s.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| self.err(format!("bad integer literal '{s}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn parse_figure_2_3_style() {
        let text = "
<&p1, person, set, {&n1,&d1,&rel1,&elm1}>
  <&n1, name, string, 'Joe Chung'>
  <&d1, dept, string, 'CS'>
  <&rel1, relation, string, 'employee'>
  <&elm1, e_mail, string, 'chung@cs'>
<&p2, person, set, {&n2,&d2,&rel2}>
  <&n2, name, string, 'Nick Naive'>
  <&d2, dept, string, 'CS'>
  <&rel2, relation, string, 'student'>
  <&y2, year, integer, 3>
;
";
        let store = parse_store(text).unwrap();
        store.validate().unwrap();
        // &y2 is defined but never referenced: it is its own top-level
        // object (as in the paper, where it is listed but &p2's set does
        // not include it).
        assert_eq!(store.len(), 10);
        let p1 = store.by_oid(sym("p1")).unwrap();
        assert_eq!(store.children(p1).len(), 4);
        let tops = store.top_level();
        assert_eq!(tops.len(), 3); // p1, p2, y2
    }

    #[test]
    fn forward_references_resolve() {
        let text = "<&a, s, set, {&b}> <&b, v, integer, 1>";
        let store = parse_store(text).unwrap();
        let a = store.by_oid(sym("a")).unwrap();
        let b = store.by_oid(sym("b")).unwrap();
        assert_eq!(store.children(a), &[b]);
        assert_eq!(store.top_level(), &[a]);
    }

    #[test]
    fn inline_nested_objects() {
        let text = "<person, {<name, 'Joe'> <dept, 'CS'>}>";
        let store = parse_store(text).unwrap();
        assert_eq!(store.top_level().len(), 1);
        let p = store.top_level()[0];
        assert_eq!(store.get(p).label, sym("person"));
        assert_eq!(store.children(p).len(), 2);
    }

    #[test]
    fn type_field_optional_and_checked() {
        let ok = parse_store("<&a, year, integer, 3>").unwrap();
        let a = ok.by_oid(sym("a")).unwrap();
        assert_eq!(ok.get(a).value, Value::Int(3));

        let err = parse_store("<&a, year, string, 3>").unwrap_err();
        assert!(matches!(err, OemError::Parse { .. }));
    }

    #[test]
    fn all_atomic_types() {
        let store = parse_store(
            "<a, 'x'> <b, 42> <c, -7> <d, 2.5> <e, 1.0e3> <f, true> <g, boolean, false>",
        )
        .unwrap();
        let vals: Vec<Value> = store.iter().map(|(_, o)| o.value.clone()).collect();
        assert!(vals.contains(&Value::str("x")));
        assert!(vals.contains(&Value::Int(42)));
        assert!(vals.contains(&Value::Int(-7)));
        assert!(vals.contains(&Value::real(2.5)));
        assert!(vals.contains(&Value::real(1000.0)));
        assert!(vals.contains(&Value::Bool(true)));
        assert!(vals.contains(&Value::Bool(false)));
    }

    #[test]
    fn string_escapes() {
        let store = parse_store(r"<a, 'O\'Neil \\ line\n'>").unwrap();
        let (_, obj) = store.iter().next().unwrap();
        assert_eq!(obj.value, Value::str("O'Neil \\ line\n"));
    }

    #[test]
    fn unresolved_reference_is_an_error() {
        let err = parse_store("<&a, s, set, {&missing}>").unwrap_err();
        assert!(matches!(err, OemError::UnresolvedOid(_)));
    }

    #[test]
    fn duplicate_oid_is_an_error() {
        let err = parse_store("<&a, x, 1> <&a, y, 2>").unwrap_err();
        assert!(matches!(err, OemError::Parse { .. }));
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse_store("<&a, x, 1>\n  <&b, !>").unwrap_err();
        match err {
            OemError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn comments_and_separators() {
        let store = parse_store("// header\n<&a, x, 1>; <&b, y, 2>,").unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn shared_subobject_in_text() {
        let text = "<&p1, person, set, {&addr}> <&p2, person, set, {&addr}> <&addr, address, string, 'Gates'>";
        let store = parse_store(text).unwrap();
        let p1 = store.by_oid(sym("p1")).unwrap();
        let p2 = store.by_oid(sym("p2")).unwrap();
        assert_eq!(store.children(p1), store.children(p2));
        assert_eq!(store.top_level().len(), 2);
    }

    #[test]
    fn cyclic_text() {
        let store = parse_store("<&a, node, set, {&b}> <&b, node, set, {&a}>").unwrap();
        store.validate().unwrap();
        // Both referenced → no top-level objects.
        assert!(store.top_level().is_empty());
    }

    #[test]
    fn empty_input_is_empty_store() {
        let store = parse_store("  \n ; \n").unwrap();
        assert!(store.is_empty());
    }
}
