//! Rendering OEM stores in the paper's figure style.
//!
//! Top-level objects print leftmost; each subobject prints indented under
//! its (first) parent. Shared objects are defined once — later parents show
//! only the oid reference inside their `{...}` — exactly matching how
//! Figures 2.2/2.3/2.4 present object structures.

use crate::store::{ObjId, ObjectStore};
use crate::value::Value;
use std::collections::HashSet;
use std::fmt::Write;

/// Render every top-level structure of the store.
pub fn print_store(store: &ObjectStore) -> String {
    let mut out = String::new();
    let mut printed: HashSet<ObjId> = HashSet::new();
    for &t in store.top_level() {
        print_rec(store, t, 0, &mut printed, &mut out);
    }
    out
}

/// Render at most `max` top-level structures — the serving layer's row
/// cap. The output is byte-identical to a prefix of [`print_store`]: the
/// shared printed-set walks the same objects in the same order, so a
/// capped answer is literally a prefix of the full one.
pub fn print_store_limit(store: &ObjectStore, max: usize) -> String {
    let mut out = String::new();
    let mut printed: HashSet<ObjId> = HashSet::new();
    for &t in store.top_level().iter().take(max) {
        print_rec(store, t, 0, &mut printed, &mut out);
    }
    out
}

/// Render one structure rooted at `id`.
pub fn print_object(store: &ObjectStore, id: ObjId) -> String {
    let mut out = String::new();
    print_rec(store, id, 0, &mut HashSet::new(), &mut out);
    out
}

/// One-line header of an object: `<&p1, person, set, {&n1,&d1}>` or
/// `<&n1, name, string, 'Joe Chung'>`.
pub fn object_line(store: &ObjectStore, id: ObjId) -> String {
    let obj = store.get(id);
    match &obj.value {
        Value::Set(children) => {
            let refs: Vec<String> = children
                .iter()
                .map(|c| format!("&{}", store.get(*c).oid))
                .collect();
            format!("<&{}, {}, set, {{{}}}>", obj.oid, obj.label, refs.join(","))
        }
        atomic => format!(
            "<&{}, {}, {}, {}>",
            obj.oid,
            obj.label,
            atomic.oem_type().keyword(),
            atomic.render_atomic()
        ),
    }
}

fn print_rec(
    store: &ObjectStore,
    id: ObjId,
    indent: usize,
    printed: &mut HashSet<ObjId>,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    let _ = writeln!(out, "{pad}{}", object_line(store, id));
    if !printed.insert(id) {
        return;
    }
    for &c in store.children(id) {
        if printed.contains(&c) {
            continue; // already defined elsewhere; the oid ref suffices
        }
        print_rec(store, c, indent + 1, printed, out);
    }
}

/// Compact single-line rendering with inline subobjects, useful in logs:
/// `<person {<name 'Joe Chung'> <dept 'CS'>}>`. Cycle-safe (back-references
/// render as `&oid`).
pub fn compact(store: &ObjectStore, id: ObjId) -> String {
    let mut out = String::new();
    let mut on_path = HashSet::new();
    compact_rec(store, id, &mut on_path, &mut out);
    out
}

fn compact_rec(store: &ObjectStore, id: ObjId, on_path: &mut HashSet<ObjId>, out: &mut String) {
    let obj = store.get(id);
    if !on_path.insert(id) {
        let _ = write!(out, "&{}", obj.oid);
        return;
    }
    match &obj.value {
        Value::Set(children) => {
            let _ = write!(out, "<{} {{", obj.label);
            for (i, &c) in children.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                compact_rec(store, c, on_path, out);
            }
            let _ = write!(out, "}}>");
        }
        atomic => {
            let _ = write!(out, "<{} {}>", obj.label, atomic.render_atomic());
        }
    }
    on_path.remove(&id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ObjectBuilder;
    use crate::parser::parse_store;

    #[test]
    fn roundtrip_print_parse() {
        let mut s = ObjectStore::new();
        ObjectBuilder::set("person")
            .oid("&p1")
            .child(ObjectBuilder::atom_obj("name", "Joe Chung").oid("&n1"))
            .child(ObjectBuilder::atom_obj("year", 3i64).oid("&y1"))
            .build_top(&mut s);
        let text = print_store(&s);
        let reparsed = parse_store(&text).unwrap();
        assert_eq!(reparsed.len(), s.len());
        assert_eq!(reparsed.top_level().len(), 1);
        let p = reparsed.top_level()[0];
        assert!(crate::eq::struct_eq_cross(
            &s,
            s.top_level()[0],
            &reparsed,
            p
        ));
    }

    #[test]
    fn figure_style_output() {
        let mut s = ObjectStore::new();
        ObjectBuilder::set("person")
            .oid("&p1")
            .child(ObjectBuilder::atom_obj("name", "Joe Chung").oid("&n1"))
            .child(ObjectBuilder::atom_obj("dept", "CS").oid("&d1"))
            .build_top(&mut s);
        let text = print_store(&s);
        assert_eq!(
            text,
            "<&p1, person, set, {&n1,&d1}>\n  <&n1, name, string, 'Joe Chung'>\n  <&d1, dept, string, 'CS'>\n"
        );
    }

    #[test]
    fn shared_objects_defined_once() {
        let mut s = ObjectStore::new();
        let shared = s.atom("addr", "Gates");
        let p1 = s.set("person", vec![shared]);
        let p2 = s.set("person", vec![shared]);
        s.add_top(p1);
        s.add_top(p2);
        let text = print_store(&s);
        // The address body must appear exactly once.
        assert_eq!(text.matches("'Gates'").count(), 1);
        // But its oid is referenced by both parents.
        let oid = s.get(shared).oid.as_str();
        assert_eq!(text.matches(&format!("{{&{oid}}}")).count(), 2);
    }

    #[test]
    fn compact_form() {
        let mut s = ObjectStore::new();
        let p = ObjectBuilder::set("person")
            .atom("name", "Joe")
            .atom("year", 3i64)
            .build(&mut s);
        assert_eq!(compact(&s, p), "<person {<name 'Joe'> <year 3>}>");
    }

    #[test]
    fn compact_handles_cycles() {
        let mut s = ObjectStore::new();
        let a = s
            .insert(crate::sym("a"), crate::sym("node"), Value::Set(vec![]))
            .unwrap();
        s.add_child(a, a).unwrap();
        // The self-referencing child renders as an oid back-reference.
        assert_eq!(compact(&s, a), "<node {&a}>");
    }

    #[test]
    fn cyclic_print_terminates() {
        let mut s = ObjectStore::new();
        let a = s
            .insert(crate::sym("&a"), crate::sym("node"), Value::Set(vec![]))
            .unwrap();
        let b = s
            .insert(crate::sym("&b"), crate::sym("node"), Value::Set(vec![a]))
            .unwrap();
        s.add_child(a, b).unwrap();
        s.add_top(a);
        let text = print_store(&s);
        assert!(text.contains("&a") && text.contains("&b"));
    }
}
