//! Fluent construction of nested OEM structures.
//!
//! ```
//! use oem::{ObjectBuilder, ObjectStore};
//!
//! let mut store = ObjectStore::new();
//! let joe = ObjectBuilder::set("person")
//!     .oid("&p1")
//!     .atom("name", "Joe Chung")
//!     .atom("dept", "CS")
//!     .child(ObjectBuilder::set("affiliations").atom("group", "db"))
//!     .build_top(&mut store);
//! assert_eq!(store.get(joe).label, oem::sym("person"));
//! assert_eq!(store.children(joe).len(), 3);
//! ```

use crate::store::{ObjId, ObjectStore};
use crate::symbol::Symbol;
use crate::value::Value;

/// A detached OEM structure under construction. Call
/// [`ObjectBuilder::build`] (or [`build_top`](ObjectBuilder::build_top)) to
/// insert it into a store.
#[derive(Clone, Debug)]
pub struct ObjectBuilder {
    oid: Option<Symbol>,
    label: Symbol,
    kind: Kind,
}

#[derive(Clone, Debug)]
enum Kind {
    Atom(Value),
    Set(Vec<ObjectBuilder>),
    /// A reference to an object that already exists in the target store
    /// (for building shared/cyclic structure).
    Existing(ObjId),
}

impl ObjectBuilder {
    /// Start an atomic object.
    pub fn atom_obj(label: impl Into<Symbol>, value: impl Into<Value>) -> ObjectBuilder {
        let v = value.into();
        assert!(v.is_atomic(), "atom_obj requires an atomic value");
        ObjectBuilder {
            oid: None,
            label: label.into(),
            kind: Kind::Atom(v),
        }
    }

    /// Start a set object with no children yet.
    pub fn set(label: impl Into<Symbol>) -> ObjectBuilder {
        ObjectBuilder {
            oid: None,
            label: label.into(),
            kind: Kind::Set(Vec::new()),
        }
    }

    /// Give the object an explicit oid (with or without the `&` sigil —
    /// the sigil is stripped, matching the textual syntax).
    pub fn oid(mut self, oid: &str) -> ObjectBuilder {
        let trimmed = oid.strip_prefix('&').unwrap_or(oid);
        self.oid = Some(Symbol::intern(trimmed));
        self
    }

    /// Add an atomic subobject. Panics if this builder is atomic.
    pub fn atom(self, label: impl Into<Symbol>, value: impl Into<Value>) -> ObjectBuilder {
        self.child(ObjectBuilder::atom_obj(label, value))
    }

    /// Add a subobject built by another builder. Panics if this builder is
    /// atomic.
    pub fn child(mut self, child: ObjectBuilder) -> ObjectBuilder {
        match &mut self.kind {
            Kind::Set(children) => children.push(child),
            _ => panic!("cannot add subobjects to an atomic object"),
        }
        self
    }

    /// Add a reference to an object that already exists in the target store
    /// (enables shared subobjects).
    pub fn child_ref(mut self, id: ObjId) -> ObjectBuilder {
        match &mut self.kind {
            Kind::Set(children) => children.push(ObjectBuilder {
                oid: None,
                label: Symbol::intern(""),
                kind: Kind::Existing(id),
            }),
            _ => panic!("cannot add subobjects to an atomic object"),
        }
        self
    }

    /// Insert the structure into `store`, returning the root's id.
    pub fn build(self, store: &mut ObjectStore) -> ObjId {
        match self.kind {
            Kind::Existing(id) => id,
            Kind::Atom(v) => match self.oid {
                Some(oid) => store
                    .insert(oid, self.label, v)
                    .expect("builder oid must be fresh in the target store"),
                None => store.insert_auto(self.label, v),
            },
            Kind::Set(children) => {
                let ids: Vec<ObjId> = children.into_iter().map(|c| c.build(store)).collect();
                match self.oid {
                    Some(oid) => store
                        .insert(oid, self.label, Value::Set(ids))
                        .expect("builder oid must be fresh in the target store"),
                    None => store.insert_auto(self.label, Value::Set(ids)),
                }
            }
        }
    }

    /// Insert and mark the root as a top-level object.
    pub fn build_top(self, store: &mut ObjectStore) -> ObjId {
        let id = self.build(store);
        store.add_top(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn nested_build() {
        let mut s = ObjectStore::new();
        let p = ObjectBuilder::set("person")
            .atom("name", "Joe Chung")
            .child(
                ObjectBuilder::set("affiliations")
                    .atom("group", "db")
                    .atom("group", "ai"),
            )
            .build_top(&mut s);
        assert_eq!(s.top_level(), &[p]);
        let kids = s.children(p);
        assert_eq!(kids.len(), 2);
        assert_eq!(s.get(kids[0]).label, sym("name"));
        assert_eq!(s.children(kids[1]).len(), 2);
    }

    #[test]
    fn explicit_oids_with_and_without_sigil() {
        let mut s = ObjectStore::new();
        let a = ObjectBuilder::atom_obj("name", "Joe")
            .oid("&n1")
            .build(&mut s);
        let b = ObjectBuilder::atom_obj("name", "Tom")
            .oid("n2")
            .build(&mut s);
        assert_eq!(s.get(a).oid, sym("n1"));
        assert_eq!(s.get(b).oid, sym("n2"));
        assert_eq!(s.by_oid(sym("n1")), Some(a));
    }

    #[test]
    fn shared_subobject_via_child_ref() {
        let mut s = ObjectStore::new();
        let addr = s.atom("address", "Gates 434");
        let p1 = ObjectBuilder::set("person")
            .atom("name", "A")
            .child_ref(addr)
            .build_top(&mut s);
        let p2 = ObjectBuilder::set("person")
            .atom("name", "B")
            .child_ref(addr)
            .build_top(&mut s);
        assert_eq!(s.children(p1)[1], s.children(p2)[1]);
    }

    #[test]
    #[should_panic(expected = "atomic")]
    fn adding_child_to_atom_panics() {
        let _ = ObjectBuilder::atom_obj("name", "x").atom("y", 1i64);
    }
}
