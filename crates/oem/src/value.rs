//! OEM values and types.
//!
//! A value is either atomic (`string`, `integer`, `real`, `boolean`) or a
//! `set` of subobject references. The paper's figures use exactly these
//! types (e.g. `<&y2, year, integer, 3>`).

use crate::store::ObjId;
use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;

/// The type tag of an OEM object, as written in the third field of the
/// textual syntax: `<&12, department, string, 'CS'>`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OemType {
    /// `string`
    Str,
    /// `integer`
    Int,
    /// `real`
    Real,
    /// `boolean`
    Bool,
    /// `set` — the value is a set of subobject ids.
    Set,
}

impl OemType {
    /// The keyword used in the textual syntax.
    pub fn keyword(&self) -> &'static str {
        match self {
            OemType::Str => "string",
            OemType::Int => "integer",
            OemType::Real => "real",
            OemType::Bool => "boolean",
            OemType::Set => "set",
        }
    }

    /// Parse a type keyword. Accepts the long names used in the paper plus
    /// common abbreviations (`int`, `str`, `bool`).
    pub fn from_keyword(kw: &str) -> Option<OemType> {
        Some(match kw {
            "string" | "str" => OemType::Str,
            "integer" | "int" => OemType::Int,
            "real" | "float" | "double" => OemType::Real,
            "boolean" | "bool" => OemType::Bool,
            "set" => OemType::Set,
            _ => return None,
        })
    }
}

impl fmt::Display for OemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for OemType {
    fn to_value(&self) -> serde::Value {
        serde::Value::from(self.keyword())
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for OemType {
    fn from_value(v: &serde::Value) -> std::result::Result<OemType, serde::Error> {
        let kw = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected OEM type keyword"))?;
        OemType::from_keyword(kw)
            .ok_or_else(|| serde::Error::custom(format!("unknown OEM type keyword '{kw}'")))
    }
}

/// The value of an OEM object.
///
/// `Real` is stored as raw bits so that `Value` can implement `Eq`/`Hash`
/// (needed by duplicate elimination); use [`Value::real`] and
/// [`Value::as_real`] for the numeric view. Strings are interned
/// [`Symbol`]s.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// An atomic string, e.g. `'Joe Chung'`.
    Str(Symbol),
    /// An atomic integer, e.g. `3`.
    Int(i64),
    /// An atomic real, stored as IEEE-754 bits.
    RealBits(u64),
    /// An atomic boolean.
    Bool(bool),
    /// A set of subobjects, e.g. `{&n1,&d1}`. Order is preserved for
    /// printing, but set semantics (duplicate elimination, containment)
    /// ignore it.
    Set(Vec<ObjId>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Symbol::intern(s))
    }

    /// Construct a real value from an `f64`.
    pub fn real(x: f64) -> Value {
        Value::RealBits(x.to_bits())
    }

    /// Construct an empty set value.
    pub fn empty_set() -> Value {
        Value::Set(Vec::new())
    }

    /// The OEM type of this value.
    pub fn oem_type(&self) -> OemType {
        match self {
            Value::Str(_) => OemType::Str,
            Value::Int(_) => OemType::Int,
            Value::RealBits(_) => OemType::Real,
            Value::Bool(_) => OemType::Bool,
            Value::Set(_) => OemType::Set,
        }
    }

    /// Is this an atomic (non-set) value?
    pub fn is_atomic(&self) -> bool {
        !matches!(self, Value::Set(_))
    }

    /// The numeric view of a real value.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::RealBits(b) => Some(f64::from_bits(*b)),
            _ => None,
        }
    }

    /// The string symbol, if this is a string value.
    pub fn as_str_sym(&self) -> Option<Symbol> {
        match self {
            Value::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// The integer, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The subobject ids, if this is a set value.
    pub fn as_set(&self) -> Option<&[ObjId]> {
        match self {
            Value::Set(ids) => Some(ids),
            _ => None,
        }
    }

    /// Mutable subobject ids, if this is a set value.
    pub fn as_set_mut(&mut self) -> Option<&mut Vec<ObjId>> {
        match self {
            Value::Set(ids) => Some(ids),
            _ => None,
        }
    }

    /// Compare two *atomic* values numerically / lexicographically.
    ///
    /// Cross-type numeric comparison (`Int` vs `Real`) promotes to `f64`.
    /// Non-comparable combinations (e.g. a string against an integer, or
    /// anything involving a set) return `None` — MSL predicates over such
    /// pairs simply fail rather than erroring, mirroring the "no erroneous
    /// or unexpected results on irregular data" stance of the paper.
    pub fn compare_atomic(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => {
                if a == b {
                    Some(Ordering::Equal)
                } else {
                    a.with_str(|sa| b.with_str(|sb| sa.partial_cmp(sb)))
                }
            }
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::RealBits(_), Value::RealBits(_))
            | (Value::Int(_), Value::RealBits(_))
            | (Value::RealBits(_), Value::Int(_)) => {
                let fa = self.to_f64()?;
                let fb = other.to_f64()?;
                fa.partial_cmp(&fb)
            }
            _ => None,
        }
    }

    fn to_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::RealBits(b) => Some(f64::from_bits(*b)),
            _ => None,
        }
    }

    /// Render an atomic value in the textual syntax (`'CS'`, `3`, `2.5`,
    /// `true`). Panics on sets — callers render sets structurally.
    pub fn render_atomic(&self) -> String {
        match self {
            Value::Str(s) => {
                s.with_str(|v| format!("'{}'", v.replace('\\', "\\\\").replace('\'', "\\'")))
            }
            Value::Int(i) => i.to_string(),
            Value::RealBits(b) => {
                let x = f64::from_bits(*b);
                if x == x.trunc() && x.is_finite() {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Set(_) => panic!("render_atomic called on a set value"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(&s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::real(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_of_values() {
        assert_eq!(Value::str("CS").oem_type(), OemType::Str);
        assert_eq!(Value::Int(3).oem_type(), OemType::Int);
        assert_eq!(Value::real(2.5).oem_type(), OemType::Real);
        assert_eq!(Value::Bool(true).oem_type(), OemType::Bool);
        assert_eq!(Value::empty_set().oem_type(), OemType::Set);
    }

    #[test]
    fn type_keywords_roundtrip() {
        for t in [
            OemType::Str,
            OemType::Int,
            OemType::Real,
            OemType::Bool,
            OemType::Set,
        ] {
            assert_eq!(OemType::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(OemType::from_keyword("int"), Some(OemType::Int));
        assert_eq!(OemType::from_keyword("frobnicate"), None);
    }

    #[test]
    fn string_equality_via_interning() {
        assert_eq!(Value::str("Joe Chung"), Value::str("Joe Chung"));
        assert_ne!(Value::str("Joe Chung"), Value::str("Nick Naive"));
    }

    #[test]
    fn compare_numeric_promotion() {
        assert_eq!(
            Value::Int(3).compare_atomic(&Value::real(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare_atomic(&Value::real(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::real(4.0).compare_atomic(&Value::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn compare_strings_lexicographic() {
        assert_eq!(
            Value::str("abc").compare_atomic(&Value::str("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("same").compare_atomic(&Value::str("same")),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incomparable_pairs_return_none() {
        assert_eq!(Value::str("3").compare_atomic(&Value::Int(3)), None);
        assert_eq!(Value::Bool(true).compare_atomic(&Value::Int(1)), None);
        assert_eq!(Value::empty_set().compare_atomic(&Value::Int(1)), None);
    }

    #[test]
    fn render_atomic_forms() {
        assert_eq!(Value::str("CS").render_atomic(), "'CS'");
        assert_eq!(Value::Int(3).render_atomic(), "3");
        assert_eq!(Value::real(2.5).render_atomic(), "2.5");
        assert_eq!(Value::real(2.0).render_atomic(), "2.0");
        assert_eq!(Value::Bool(false).render_atomic(), "false");
    }

    #[test]
    fn render_escapes_quotes() {
        assert_eq!(Value::str("O'Neil").render_atomic(), "'O\\'Neil'");
    }

    #[test]
    fn real_equality_is_bitwise() {
        assert_eq!(Value::real(1.5), Value::real(1.5));
        // NaN == NaN under bitwise semantics (needed for Hash/Eq coherence).
        assert_eq!(Value::real(f64::NAN), Value::real(f64::NAN));
    }

    #[test]
    fn set_accessors() {
        let mut v = Value::Set(vec![ObjId::from_raw(0), ObjId::from_raw(1)]);
        assert_eq!(v.as_set().unwrap().len(), 2);
        v.as_set_mut().unwrap().push(ObjId::from_raw(2));
        assert_eq!(v.as_set().unwrap().len(), 3);
        assert!(!v.is_atomic());
    }
}
