//! Error types for the OEM crate.

use std::fmt;

/// Result alias for OEM operations.
pub type Result<T> = std::result::Result<T, OemError>;

/// Errors raised by OEM construction, validation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OemError {
    /// An object with this oid already exists in the store.
    DuplicateOid(String),
    /// `add_child` was called on an atomic object.
    NotASet(String),
    /// A set value references an object id that does not exist.
    DanglingRef {
        /// Oid of the referencing set object.
        parent: String,
        /// The arena index that resolved to nothing.
        child: u32,
    },
    /// The oid index disagrees with the arena (internal corruption).
    CorruptOidIndex(String),
    /// Textual syntax error: message plus 1-based line/column.
    Parse {
        /// What went wrong.
        msg: String,
        /// 1-based line of the error.
        line: usize,
        /// 1-based column of the error.
        col: usize,
    },
    /// An oid was referenced in a set literal but never defined.
    UnresolvedOid(String),
}

impl fmt::Display for OemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OemError::DuplicateOid(oid) => write!(f, "duplicate object-id &{oid}"),
            OemError::NotASet(oid) => write!(f, "object &{oid} is atomic; cannot add subobjects"),
            OemError::DanglingRef { parent, child } => {
                write!(f, "object {parent} references nonexistent object #{child}")
            }
            OemError::CorruptOidIndex(oid) => write!(f, "oid index corrupt for &{oid}"),
            OemError::Parse { msg, line, col } => {
                write!(f, "OEM parse error at {line}:{col}: {msg}")
            }
            OemError::UnresolvedOid(oid) => {
                write!(f, "set value references undefined object-id &{oid}")
            }
        }
    }
}

impl std::error::Error for OemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OemError::Parse {
            msg: "expected '<'".to_string(),
            line: 3,
            col: 7,
        };
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("expected '<'"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&OemError::DuplicateOid("p1".into()));
    }
}
