//! # OEM — the Object Exchange Model
//!
//! This crate implements the self-describing data model of the TSIMMIS
//! project, as defined in Papakonstantinou, Garcia-Molina & Widom (ICDE '95)
//! and used as the substrate of the MedMaker mediation system (ICDE '96).
//!
//! Every OEM object is a quadruple `<object-id, label, type, value>`:
//!
//! ```text
//! <&p1, person, set, {&n1,&d1,&rel1,&elm1}>
//!   <&n1, name,     string, 'Joe Chung'>
//!   <&d1, dept,     string, 'CS'>
//!   <&rel1, relation, string, 'employee'>
//!   <&elm1, e_mail, string, 'chung@cs'>
//! ```
//!
//! * the **object-id** links objects to their subobjects and carries object
//!   identity (sharing and even cycles are representable);
//! * the **label** is a string meaningful to the application — OEM is
//!   *self-describing*: there is no schema, every object carries its own;
//! * the **type** is either atomic (`string`, `integer`, `real`, `boolean`)
//!   or `set`, in which case the value is a set of subobject ids.
//!
//! ## Representation
//!
//! Graph-shaped data is awkward under Rust ownership, so objects live in an
//! arena, the [`ObjectStore`], and reference each other through plain
//! [`ObjId`] indices. Labels, oids and string atoms are interned in a global
//! [`Symbol`] table so that objects can be copied between stores cheaply
//! (the mediator copies wrapper results "into the mediator's memory", §3.4
//! of the MedMaker paper).
//!
//! ## Modules
//!
//! * [`symbol`] — global string interner.
//! * [`value`] — atomic values, types, and the `set` value.
//! * [`store`] — the arena; object creation, lookup, top-level objects.
//! * [`builder`] — fluent construction of nested structures.
//! * [`parser`] — the textual syntax used throughout the paper's figures.
//! * [`printer`] — renders stores back in the figures' indented style.
//! * [`path`] — traversal: children, descendants, wildcard label search.
//! * [`copy`] — deep copies between stores, preserving sharing and cycles.
//! * [`eq`] — structural (oid-insensitive) equality and fingerprints, used
//!   for duplicate elimination per MSL semantics.

#![warn(missing_docs)]

pub mod builder;
pub mod copy;
pub mod eq;
pub mod error;
#[cfg(feature = "serde")]
pub mod json;
pub mod parser;
pub mod path;
pub mod printer;
pub mod store;
pub mod symbol;
pub mod value;

pub use builder::ObjectBuilder;
pub use error::{OemError, Result};
pub use store::{ObjId, ObjectStore, OemObject};
pub use symbol::Symbol;
pub use value::{OemType, Value};

/// Convenience: intern a string as a [`Symbol`].
pub fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}
