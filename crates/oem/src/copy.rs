//! Deep copies between object stores.
//!
//! The datamerge engine "places results in the mediator's memory" (§3.4):
//! objects returned by a wrapper live in the wrapper's result store and are
//! copied into the mediator's store before further processing. Copies
//! preserve sharing and cycles (the old-id → new-id map doubles as the
//! visited set) and generate fresh oids in the destination, since oids from
//! different sources may collide.

use crate::store::{ObjId, ObjectStore};
use crate::value::Value;
use std::collections::HashMap;

/// Copy the structure rooted at `root` from `src` into `dst`.
///
/// Returns the id of the copied root in `dst`. Oids are regenerated with
/// `dst`'s generator; sharing within the copied structure is preserved.
pub fn deep_copy(src: &ObjectStore, root: ObjId, dst: &mut ObjectStore) -> ObjId {
    let mut map: HashMap<ObjId, ObjId> = HashMap::new();
    copy_rec(src, root, dst, &mut map)
}

/// Copy several roots, preserving sharing *across* the roots too.
pub fn deep_copy_all(src: &ObjectStore, roots: &[ObjId], dst: &mut ObjectStore) -> Vec<ObjId> {
    let mut map: HashMap<ObjId, ObjId> = HashMap::new();
    roots
        .iter()
        .map(|&r| copy_rec(src, r, dst, &mut map))
        .collect()
}

/// Like [`deep_copy_all`], but also returns the old-id → new-id map, so
/// callers holding references into `src` (e.g. binding tables) can remap
/// them. The map covers every copied object, not just the roots.
pub fn deep_copy_all_with_map(
    src: &ObjectStore,
    roots: &[ObjId],
    dst: &mut ObjectStore,
) -> (Vec<ObjId>, HashMap<ObjId, ObjId>) {
    let mut map: HashMap<ObjId, ObjId> = HashMap::new();
    let copied = roots
        .iter()
        .map(|&r| copy_rec(src, r, dst, &mut map))
        .collect();
    (copied, map)
}

/// Copy `roots` from `src` into `dst`, reusing (and extending) a caller-held
/// old-id → new-id map.
///
/// This is the incremental form of [`deep_copy_all`]: a streaming consumer
/// can copy a result store chunk by chunk, passing the same `map` each time,
/// and objects shared *across* chunks are still copied exactly once — the
/// final contents of `dst` are identical to a single [`deep_copy_all`] over
/// the concatenated roots.
pub fn deep_copy_all_into(
    src: &ObjectStore,
    roots: &[ObjId],
    dst: &mut ObjectStore,
    map: &mut HashMap<ObjId, ObjId>,
) -> Vec<ObjId> {
    roots.iter().map(|&r| copy_rec(src, r, dst, map)).collect()
}

/// Copy every top-level structure of `src` into `dst`, marking the copies
/// top-level in `dst`.
pub fn copy_top_level(src: &ObjectStore, dst: &mut ObjectStore) -> Vec<ObjId> {
    let roots = deep_copy_all(src, src.top_level(), dst);
    for &r in &roots {
        dst.add_top(r);
    }
    roots
}

fn copy_rec(
    src: &ObjectStore,
    id: ObjId,
    dst: &mut ObjectStore,
    map: &mut HashMap<ObjId, ObjId>,
) -> ObjId {
    if let Some(&done) = map.get(&id) {
        return done;
    }
    let obj = src.get(id);
    match obj.value.as_set() {
        None => {
            let new = dst.insert_auto(obj.label, obj.value.clone());
            map.insert(id, new);
            new
        }
        Some(children) => {
            // Insert a placeholder first so that cycles terminate, then fill
            // in children.
            let new = dst.insert_auto(obj.label, Value::Set(Vec::new()));
            map.insert(id, new);
            let kids: Vec<ObjId> = children
                .iter()
                .map(|&c| copy_rec(src, c, dst, map))
                .collect();
            *dst.get_mut(new).value.as_set_mut().unwrap() = kids;
            new
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ObjectBuilder;
    use crate::eq::struct_eq_cross;
    use crate::sym;

    #[test]
    fn copy_preserves_structure() {
        let mut src = ObjectStore::new();
        let root = ObjectBuilder::set("person")
            .atom("name", "Joe Chung")
            .atom("dept", "CS")
            .build_top(&mut src);

        let mut dst = ObjectStore::with_oid_prefix("m");
        let copied = deep_copy(&src, root, &mut dst);
        assert!(struct_eq_cross(&src, root, &dst, copied));
        assert_eq!(dst.get(copied).oid, sym("m1"));
    }

    #[test]
    fn copy_preserves_sharing() {
        let mut src = ObjectStore::new();
        let shared = src.atom("addr", "Gates");
        let a = src.set("person", vec![shared]);
        let b = src.set("person", vec![shared]);
        src.add_top(a);
        src.add_top(b);

        let mut dst = ObjectStore::new();
        let roots = copy_top_level(&src, &mut dst);
        assert_eq!(roots.len(), 2);
        assert_eq!(dst.children(roots[0])[0], dst.children(roots[1])[0]);
        // 2 persons + 1 shared address = 3 objects, not 4.
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.top_level(), &roots[..]);
    }

    #[test]
    fn copy_handles_cycles() {
        let mut src = ObjectStore::new();
        let a = src
            .insert(sym("&a"), sym("node"), crate::Value::Set(vec![]))
            .unwrap();
        let b = src
            .insert(sym("&b"), sym("node"), crate::Value::Set(vec![a]))
            .unwrap();
        src.add_child(a, b).unwrap();

        let mut dst = ObjectStore::new();
        let ca = deep_copy(&src, a, &mut dst);
        let cb = dst.children(ca)[0];
        assert_eq!(dst.children(cb), &[ca]);
        dst.validate().unwrap();
    }

    #[test]
    fn chunked_copy_matches_one_shot() {
        let mut src = ObjectStore::new();
        let shared = src.atom("addr", "Gates");
        let a = src.set("person", vec![shared]);
        let b = src.set("person", vec![shared]);
        let c = src.atom("dept", "CS");

        // One-shot copy of all three roots.
        let mut whole = ObjectStore::new();
        let whole_roots = deep_copy_all(&src, &[a, b, c], &mut whole);

        // Chunked copy: [a], then [b, c], sharing the map.
        let mut chunked = ObjectStore::new();
        let mut map = HashMap::new();
        let mut roots = deep_copy_all_into(&src, &[a], &mut chunked, &mut map);
        roots.extend(deep_copy_all_into(&src, &[b, c], &mut chunked, &mut map));

        assert_eq!(chunked.len(), whole.len());
        for (&w, &k) in whole_roots.iter().zip(&roots) {
            assert!(struct_eq_cross(&whole, w, &chunked, k));
        }
        // Cross-chunk sharing preserved: both persons point at one address.
        assert_eq!(chunked.children(roots[0])[0], chunked.children(roots[1])[0]);
    }

    #[test]
    fn copy_regenerates_colliding_oids() {
        let mut src = ObjectStore::new();
        src.insert(sym("&same"), sym("x"), crate::Value::Int(1))
            .unwrap();
        let mut dst = ObjectStore::new();
        dst.insert(sym("&same"), sym("y"), crate::Value::Int(2))
            .unwrap();
        let root = src.by_oid(sym("&same")).unwrap();
        let copied = deep_copy(&src, root, &mut dst);
        assert_ne!(dst.get(copied).oid, sym("&same"));
        dst.validate().unwrap();
    }
}
