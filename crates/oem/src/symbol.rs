//! Global string interner.
//!
//! Labels, object-ids, variable names and string atoms all flow between the
//! MSL front end, the matching engine, wrappers and the datamerge engine.
//! Interning them once in a process-wide table makes every comparison an
//! integer compare and lets objects be copied between [`crate::ObjectStore`]s
//! without re-hashing strings.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string. Cheap to copy, hash and compare.
///
/// Two `Symbol`s are equal iff the strings they intern are equal. The
/// interner is global and append-only; symbols are never freed (acceptable
/// for a query processor whose vocabulary is bounded by the data it touches).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    /// Stable storage of interned strings. Boxed so reallocating the Vec
    /// does not move string bytes.
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, u32>,
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            strings: Vec::with_capacity(1024),
            lookup: HashMap::with_capacity(1024),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its unique symbol.
    pub fn intern(s: &str) -> Symbol {
        // Fast path: the symbol already exists.
        {
            let guard = interner().read();
            if let Some(&id) = guard.lookup.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.lookup.get(s) {
            return Symbol(id);
        }
        let id = guard.strings.len() as u32;
        let boxed: Box<str> = s.into();
        guard.strings.push(boxed.clone());
        guard.lookup.insert(boxed, id);
        Symbol(id)
    }

    /// The interned string.
    ///
    /// Returns an owned `String`; the interner is behind a lock, so handing
    /// out references would require holding the read guard across the call
    /// site. Symbol-to-symbol comparisons never need this.
    pub fn as_str(&self) -> String {
        let guard = interner().read();
        guard.strings[self.0 as usize].to_string()
    }

    /// Run `f` over the interned string without allocating.
    pub fn with_str<R>(&self, f: impl FnOnce(&str) -> R) -> R {
        let guard = interner().read();
        f(&guard.strings[self.0 as usize])
    }

    /// The raw interner index. Only meaningful within this process.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| f.write_str(s))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_str(|s| write!(f, "Symbol({s:?})"))
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Symbol {
    fn to_value(&self) -> serde::Value {
        self.with_str(|s| serde::Value::from(s))
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Symbol {
    fn from_value(v: &serde::Value) -> std::result::Result<Symbol, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected string symbol"))?;
        Ok(Symbol::intern(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("person");
        let b = Symbol::intern("person");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("employee"), Symbol::intern("student"));
    }

    #[test]
    fn roundtrip() {
        let s = Symbol::intern("Joe Chung");
        assert_eq!(s.as_str(), "Joe Chung");
        s.with_str(|v| assert_eq!(v, "Joe Chung"));
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("dept");
        assert_eq!(format!("{s}"), "dept");
        assert_eq!(format!("{s:?}"), "Symbol(\"dept\")");
    }

    #[test]
    fn empty_string_is_internable() {
        let s = Symbol::intern("");
        assert_eq!(s.as_str(), "");
        assert_eq!(s, Symbol::intern(""));
    }

    #[test]
    fn unicode_strings() {
        let s = Symbol::intern("Ψάρι—魚");
        assert_eq!(s.as_str(), "Ψάρι—魚");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "x".into();
        let b: Symbol = String::from("x").into();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("concurrent-{}", (i + t) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must agree on the symbol for each string.
        for i in 0..50 {
            let expect = Symbol::intern(&format!("concurrent-{i}"));
            for syms in &all {
                assert!(syms.contains(&expect));
            }
        }
    }
}
