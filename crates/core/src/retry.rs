//! Retry policy, backoff, deadlines and the per-source circuit breaker.
//!
//! The paper's MSI assumes every wrapped source answers every query; §3.5
//! concedes they are autonomous. This module makes the executor's failure
//! semantics explicit. A source call that fails *transiently*
//! ([`wrappers::WrapperError::is_transient`]) is retried under a
//! [`RetryPolicy`] — bounded attempts, exponential backoff — and measured
//! against an optional per-source deadline. A source that keeps failing
//! trips a [`CircuitBreaker`] so later nodes (and parallel chains) stop
//! hammering it. What happens when the policy is exhausted is decided by
//! [`OnSourceFailure`]: `Fail` (default) aborts the query with
//! [`crate::MedError::SourceUnavailable`]; `Partial` drops only the rule
//! chains that needed the dead source and annotates the
//! [`crate::metrics::QueryTrace`] as incomplete.
//!
//! Time and sleeping are injectable ([`wrappers::fault::Clock`],
//! [`Sleeper`]) so the whole fault matrix runs on virtual time — tests
//! never sleep.

use oem::Symbol;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use wrappers::fault::Clock;

/// How the backoff waits between attempts. Production uses
/// [`ThreadSleeper`]; tests use [`VirtualSleeper`] over the shared
/// [`wrappers::fault::VirtualClock`], which advances time without
/// sleeping.
pub trait Sleeper: Send + Sync {
    /// Wait `ms` milliseconds (really or virtually).
    fn sleep_ms(&self, ms: u64);
}

/// Real sleeping via [`std::thread::sleep`].
#[derive(Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep_ms(&self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

/// A sleeper that advances a [`wrappers::fault::VirtualClock`] instead of
/// blocking — backoff becomes observable, instant time travel.
#[derive(Debug)]
pub struct VirtualSleeper(pub Arc<wrappers::fault::VirtualClock>);

impl Sleeper for VirtualSleeper {
    fn sleep_ms(&self, ms: u64) {
        self.0.advance(ms);
    }
}

/// Bounded-retry policy with exponential backoff, applied to every
/// transient source failure at query / parameterized-query / hash-join
/// nodes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetryPolicy {
    /// Total attempts per source call (1 = no retries).
    pub max_attempts: usize,
    /// Backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Multiplier applied per further retry (exponential backoff).
    pub backoff_multiplier: u32,
    /// Ceiling on any single backoff, in milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    /// No retries — the pre-fault-tolerance behaviour (fail fast).
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 25,
            backoff_multiplier: 2,
            backoff_cap_ms: 5_000,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` re-attempts after the first try.
    pub fn retries(retries: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..Default::default()
        }
    }

    /// The backoff before the `retry_index`-th retry (0-based):
    /// `base * multiplier^retry_index`, capped.
    pub fn backoff_ms(&self, retry_index: usize) -> u64 {
        let factor = (self.backoff_multiplier as u64)
            .checked_pow(retry_index.min(32) as u32)
            .unwrap_or(u64::MAX);
        self.backoff_base_ms
            .saturating_mul(factor)
            .min(self.backoff_cap_ms)
    }
}

/// What the executor does when a source stays failed after the retry
/// policy is exhausted (or its circuit is open).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OnSourceFailure {
    /// Abort the whole query with [`crate::MedError::SourceUnavailable`].
    #[default]
    Fail,
    /// Drop only the rule chains that needed the failed source; answer
    /// from the surviving chains and annotate the trace's `completeness`
    /// section (degrade gracefully instead of failing closed).
    Partial,
}

/// Per-source circuit breaker: after `threshold` *consecutive* transient
/// failures, the circuit opens and further calls to that source
/// short-circuit without touching the wrapper. One success resets the
/// count. Shared across nodes and parallel chains of one execution.
pub struct CircuitBreaker {
    threshold: usize,
    consecutive: Mutex<BTreeMap<Symbol, usize>>,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures
    /// (`0` disables it — the circuit never opens).
    pub fn new(threshold: usize) -> CircuitBreaker {
        CircuitBreaker {
            threshold,
            consecutive: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether calls to `source` currently short-circuit.
    pub fn is_open(&self, source: Symbol) -> bool {
        self.threshold > 0
            && self
                .consecutive
                .lock()
                .get(&source)
                .is_some_and(|&n| n >= self.threshold)
    }

    /// Record a transient failure; returns `true` if the circuit for
    /// `source` is now open.
    pub fn record_failure(&self, source: Symbol) -> bool {
        let mut map = self.consecutive.lock();
        let n = map.entry(source).or_insert(0);
        *n += 1;
        self.threshold > 0 && *n >= self.threshold
    }

    /// Record a success: the consecutive-failure count resets.
    pub fn record_success(&self, source: Symbol) {
        self.consecutive.lock().remove(&source);
    }

    /// Sources whose circuit is currently open, sorted by name.
    pub fn open_sources(&self) -> Vec<Symbol> {
        if self.threshold == 0 {
            return Vec::new();
        }
        self.consecutive
            .lock()
            .iter()
            .filter(|(_, &n)| n >= self.threshold)
            .map(|(&s, _)| s)
            .collect()
    }
}

/// Everything the executor consults when a source misbehaves. Carried in
/// [`crate::exec::ExecOptions`] and [`crate::MediatorOptions`].
#[derive(Clone, Default)]
pub struct FaultOptions {
    /// Retry policy for transient source failures.
    pub retry: RetryPolicy,
    /// Per-source-call deadline in milliseconds. A call that takes longer
    /// counts as a [`wrappers::WrapperError::Timeout`] — even if it
    /// eventually answered, its (stale) answer is discarded.
    pub source_deadline_ms: Option<u64>,
    /// Fail closed or degrade to a partial answer.
    pub on_source_failure: OnSourceFailure,
    /// Consecutive transient failures before a source's circuit opens
    /// (`0` disables the breaker).
    pub circuit_threshold: usize,
    /// Injectable backoff sleeper; `None` = [`ThreadSleeper`].
    pub sleeper: Option<Arc<dyn Sleeper>>,
    /// Injectable clock for deadline measurement; `None` =
    /// [`wrappers::fault::SystemClock`].
    pub clock: Option<Arc<dyn Clock>>,
}

impl fmt::Debug for FaultOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultOptions")
            .field("retry", &self.retry)
            .field("source_deadline_ms", &self.source_deadline_ms)
            .field("on_source_failure", &self.on_source_failure)
            .field("circuit_threshold", &self.circuit_threshold)
            .field("sleeper", &self.sleeper.as_ref().map(|_| "<injected>"))
            .field("clock", &self.clock.as_ref().map(|_| "<injected>"))
            .finish()
    }
}

impl FaultOptions {
    /// Run every chain on the given virtual clock: deadlines are measured
    /// on it and backoffs advance it — nothing ever sleeps. Share the same
    /// clock with the fault injectors.
    pub fn on_virtual_time(mut self, clock: Arc<wrappers::fault::VirtualClock>) -> FaultOptions {
        self.sleeper = Some(Arc::new(VirtualSleeper(Arc::clone(&clock))));
        self.clock = Some(clock);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::sym;
    use wrappers::fault::VirtualClock;

    #[test]
    fn default_policy_fails_fast() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(RetryPolicy::retries(3).max_attempts, 4);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base_ms: 25,
            backoff_multiplier: 2,
            backoff_cap_ms: 150,
        };
        assert_eq!(p.backoff_ms(0), 25);
        assert_eq!(p.backoff_ms(1), 50);
        assert_eq!(p.backoff_ms(2), 100);
        assert_eq!(p.backoff_ms(3), 150, "capped");
        assert_eq!(p.backoff_ms(60), 150, "huge exponents saturate at cap");
    }

    #[test]
    fn circuit_opens_after_threshold_and_resets_on_success() {
        let cb = CircuitBreaker::new(3);
        let s = sym("whois");
        assert!(!cb.is_open(s));
        assert!(!cb.record_failure(s));
        assert!(!cb.record_failure(s));
        assert!(cb.record_failure(s), "third consecutive failure opens");
        assert!(cb.is_open(s));
        assert_eq!(cb.open_sources(), vec![s]);
        cb.record_success(s);
        assert!(!cb.is_open(s));
        assert!(cb.open_sources().is_empty());
    }

    #[test]
    fn disabled_circuit_never_opens() {
        let cb = CircuitBreaker::new(0);
        let s = sym("cs");
        for _ in 0..100 {
            assert!(!cb.record_failure(s));
        }
        assert!(!cb.is_open(s));
        assert!(cb.open_sources().is_empty());
    }

    #[test]
    fn virtual_sleeper_advances_clock_only() {
        let clock = Arc::new(VirtualClock::new());
        let sleeper = VirtualSleeper(Arc::clone(&clock));
        let wall = std::time::Instant::now();
        sleeper.sleep_ms(10_000);
        assert_eq!(clock.now_ms(), 10_000);
        assert!(wall.elapsed().as_millis() < 1_000, "no real sleeping");
    }

    #[test]
    fn fault_options_debug_and_virtual_time() {
        let clock = Arc::new(VirtualClock::new());
        let opts = FaultOptions::default().on_virtual_time(Arc::clone(&clock));
        let shown = format!("{opts:?}");
        assert!(shown.contains("<injected>"), "{shown}");
        opts.sleeper.unwrap().sleep_ms(5);
        assert_eq!(opts.clock.unwrap().now_ms(), 5);
    }
}
