//! # medmaker — the Mediator Specification Interpreter (MSI)
//!
//! The runtime component of MedMaker (§3, Figure 2.5). A mediator is
//! declared by an MSL specification; at query time the MSI processes a
//! query through a three-stage pipeline:
//!
//! 1. the **View Expander & Algebraic Optimizer** ([`veao`]) matches the
//!    query against the specification's rule heads, producing a *logical
//!    datamerge program* — MSL rules over the sources, with every pushable
//!    condition pushed (§3.2–3.3);
//! 2. the **cost-based optimizer** ([`planner`]) turns each logical rule
//!    into a *physical datamerge graph*: query / extractor / external-
//!    predicate / parameterized-query / constructor nodes (§3.4–3.5),
//!    choosing join order and access strategy from source statistics
//!    ([`stats`]) and capabilities;
//! 3. the **datamerge engine** ([`exec`]) executes the graph bottom-up,
//!    flowing binding tables between nodes and constructing the result
//!    objects in the mediator's memory.
//!
//! [`mediator::Mediator`] ties the pipeline together and itself implements
//! [`wrappers::Wrapper`], so mediators stack above other mediators exactly
//! as in Figure 1.1. [`recursion`] adds fixpoint evaluation for recursive
//! views (footnote 4), and [`externals`] hosts the external-predicate
//! function registry (§2).
//!
//! Execution is observable end to end: every run produces a
//! [`metrics::QueryTrace`] of per-node counters and timings ([`metrics`]),
//! rendered by [`explain::render_analyze`] (EXPLAIN ANALYZE) and fed back
//! into the learned statistics of [`stats`] (§3.5).
//!
//! Execution is also fault-tolerant: source calls run under a retry /
//! deadline / circuit-breaker policy ([`retry`]), and in
//! [`retry::OnSourceFailure::Partial`] mode a dead source drops only the
//! rule chains that need it — the answer degrades instead of failing
//! closed, with the trace's `completeness` section naming what's missing.

#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod cost;
pub mod error;
pub mod exec;
pub mod explain;
pub mod externals;
pub mod graph;
pub mod lint;
pub mod logical;
pub mod mediator;
pub mod metrics;
pub mod naive;
pub mod planner;
pub mod recursion;
pub mod retry;
pub mod spec;
pub mod stats;
pub mod table;
pub mod veao;

pub use analysis::{AnswerMatrix, SourceInfo, SpecAnalysis};
pub use cache::{
    AnswerCache, CacheCounters, CacheHit, CacheOptions, EvictionPolicy, SourceDelta, WarmStats,
    WarmTier,
};
pub use error::{MedError, Result};
pub use externals::ExternalRegistry;
pub use mediator::{Mediator, MediatorOptions, QueryLimits};
pub use retry::{FaultOptions, OnSourceFailure, RetryPolicy};
pub use spec::MediatorSpec;
