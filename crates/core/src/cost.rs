//! Multi-objective plan cost (ROADMAP item 2).
//!
//! The seed planner ordered rule-body groups by a single scalar
//! cardinality estimate. The system now *measures* much more than
//! cardinality — per-source round-trip latency and failure rates
//! ([`crate::retry`], PR 3), cache hit probability ([`crate::cache`],
//! PR 4) — so a plan's cost is a vector, not a number:
//!
//! * `rows_out` — estimated binding rows the step emits (the EWMA
//!   cardinality feed of §3.5, with same-source joins discounted for
//!   shared variables);
//! * `cpu` — rows the mediator touches locally (scans, probes, joins);
//! * `net` — expected milliseconds spent on source round-trips:
//!   `calls × latency × retry-inflation × (1 − cache-hit-rate)` — a
//!   cached source is nearly free, a flaky one is expensive;
//! * `memory` — rows materialized in mediator memory (hash-join build
//!   sides, copied source answers).
//!
//! [`CostWeights`] collapses the vector to a scalar for comparing
//! candidate join orders; the components survive alongside the chosen
//! plan (`RulePlan::estimates` → `NodeMetrics`) so `EXPLAIN ANALYZE`
//! can report drift per component, not just on row counts.

/// One step's (or one whole order's) estimated cost, by component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostEstimate {
    /// Estimated binding rows flowing out of the step.
    pub rows_out: f64,
    /// Estimated rows the mediator processes locally (probe + extract).
    pub cpu: f64,
    /// Estimated milliseconds spent on source round-trips.
    pub net: f64,
    /// Estimated rows resident in mediator memory for the step.
    pub memory: f64,
}

impl CostEstimate {
    /// A cardinality-only estimate (scalar-model compatibility: the other
    /// components are unknown and render as absent).
    pub fn rows_only(rows_out: f64) -> CostEstimate {
        CostEstimate {
            rows_out,
            ..Default::default()
        }
    }

    /// Whether the row estimate is usable for drift reporting: finite and
    /// not the planner's "unknown" sentinel.
    pub fn has_rows(&self) -> bool {
        self.rows_out.is_finite() && self.rows_out > 0.0 && self.rows_out < SENTINEL_THRESHOLD
    }

    /// Component-wise sum (accumulating a whole join order).
    pub fn add(&self, other: &CostEstimate) -> CostEstimate {
        CostEstimate {
            rows_out: other.rows_out, // the running cardinality, not a sum
            cpu: self.cpu + other.cpu,
            net: self.net + other.net,
            memory: self.memory + other.memory,
        }
    }

    /// Weighted scalar total for order comparison. NaN (degenerate
    /// statistics) sanitizes to `f64::MAX` so comparisons stay total and
    /// join ordering deterministic (the PR 3 NaN pin).
    pub fn total(&self, w: &CostWeights) -> f64 {
        let t = self.rows_out * w.rows + self.cpu * w.cpu + self.net * w.net + self.memory * w.mem;
        if t.is_nan() {
            f64::MAX
        } else {
            t
        }
    }
}

/// Estimates at or above this are treated as "no estimate" — the planner
/// sanitizes NaN scores to `f64::MAX`, and dividing observed rows by that
/// sentinel would render as meaningless `drift 0.00x` noise.
pub const SENTINEL_THRESHOLD: f64 = f64::MAX / 2.0;

/// Relative weights collapsing a [`CostEstimate`] to one comparable
/// number. The defaults make a row of intermediate result the unit,
/// price a millisecond of round-trip like a row (both ~the cost the user
/// waits on), and price local row handling and resident memory at a
/// fraction of that — tune with `--cost-weights`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// Weight per estimated output row.
    pub rows: f64,
    /// Weight per locally-processed row.
    pub cpu: f64,
    /// Weight per estimated round-trip millisecond.
    pub net: f64,
    /// Weight per resident row.
    pub mem: f64,
}

impl Default for CostWeights {
    fn default() -> CostWeights {
        CostWeights {
            rows: 1.0,
            cpu: 0.01,
            net: 1.0,
            mem: 0.005,
        }
    }
}

impl CostWeights {
    /// Parse a `--cost-weights` argument: comma-separated `key=value`
    /// pairs over `rows`, `cpu`, `net`, `mem`; omitted keys keep their
    /// defaults. Example: `rows=1,net=5,cpu=0.02`.
    pub fn parse(spec: &str) -> Result<CostWeights, String> {
        let mut w = CostWeights::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("cost weight '{part}' is not KEY=VALUE"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("cost weight '{part}' has a non-numeric value"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("cost weight '{part}' must be finite and >= 0"));
            }
            match key.trim() {
                "rows" => w.rows = value,
                "cpu" => w.cpu = value,
                "net" => w.net = value,
                "mem" | "memory" => w.mem = value,
                other => {
                    return Err(format!(
                        "unknown cost weight '{other}' (expected rows/cpu/net/mem)"
                    ))
                }
            }
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_total_combines_components() {
        let e = CostEstimate {
            rows_out: 10.0,
            cpu: 100.0,
            net: 2.0,
            memory: 200.0,
        };
        let w = CostWeights::default();
        let t = e.total(&w);
        assert!((t - (10.0 + 1.0 + 2.0 + 1.0)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn nan_totals_sanitize_to_max() {
        let e = CostEstimate {
            rows_out: f64::NAN,
            ..Default::default()
        };
        assert_eq!(e.total(&CostWeights::default()), f64::MAX);
        assert!(!e.has_rows());
    }

    #[test]
    fn sentinel_rows_are_not_estimates() {
        assert!(!CostEstimate::rows_only(f64::MAX).has_rows());
        assert!(!CostEstimate::rows_only(0.0).has_rows());
        assert!(CostEstimate::rows_only(2.0).has_rows());
    }

    #[test]
    fn parse_overrides_selected_keys() {
        let w = CostWeights::parse("net=5, cpu=0.02").unwrap();
        assert_eq!(w.net, 5.0);
        assert_eq!(w.cpu, 0.02);
        assert_eq!(w.rows, CostWeights::default().rows);
        assert!(CostWeights::parse("bogus=1").is_err());
        assert!(CostWeights::parse("net").is_err());
        assert!(CostWeights::parse("net=-1").is_err());
        assert_eq!(CostWeights::parse("").unwrap(), CostWeights::default());
    }
}
