//! The cost-based optimizer (§3.4–3.5).
//!
//! Turns each logical datamerge rule into a physical chain:
//!
//! * groups the tail's match items by source;
//! * orders the groups by **join enumeration** over a multi-objective
//!   [`CostEstimate`] (rows / cpu / net / memory, weighted by
//!   [`CostWeights`]): exhaustive enumeration of every feasible order for
//!   small rule bodies ([`PlannerOptions::exhaustive_limit`], default 6
//!   groups), greedy cheapest-next above it. The `net` component prices
//!   round-trips with the measured per-source latency, failure-rate and
//!   cache-hit EWMAs ([`crate::stats::StatsCache::per_call_cost_ms`]).
//!   [`JoinEnumeration::Scalar`] restores the seed behavior — a sort by
//!   scalar cardinality estimate — as the ablation baseline;
//! * chooses, for every non-outer group, between a **parameterized query**
//!   (bind join, the plan of Figure 3.6) and a **fetch + hash join**;
//! * pushes every condition the source can evaluate; conditions a source
//!   *cannot* evaluate (capability restrictions, §3.5) are stripped from
//!   the source query and kept as client-side filters;
//! * places external-predicate calls at the earliest point where an
//!   implementation is callable (§2's adornments);
//! * appends duplicate elimination per MSL's semantics (footnote 9).

use crate::cost::{CostEstimate, CostWeights};
use crate::error::{MedError, Result};
use crate::externals::ExternalRegistry;
use crate::graph::{ExtractVar, Node, PhysicalPlan, RulePlan, VarKind};
use crate::logical::LogicalProgram;
use crate::stats::{condition_count, StatsCache, JOIN_EQ_SELECTIVITY};
use engine::subst::{subst_pattern, Subst};
use msl::{Head, PatValue, Pattern, RestSpec, Rule, SetElem, SetPattern, TailItem, Term};
use oem::{Symbol, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use wrappers::Wrapper;

/// Planner knobs (ablations + experiments).
#[derive(Clone, Debug)]
pub struct PlannerOptions {
    /// Push source-evaluable conditions into source queries (the "push
    /// selections down" optimization, §3.3). Disabling keeps every
    /// condition in the mediator — the ablation baseline.
    pub pushdown: bool,
    /// `Some(true)` forces bind joins, `Some(false)` forces hash joins,
    /// `None` decides by cost.
    pub prefer_bind_join: Option<bool>,
    /// Apply duplicate elimination (MSL semantics; the paper's original
    /// implementation omitted it, fn. 9).
    pub dedup: bool,
    /// Use statistics for join ordering; otherwise use only the
    /// most-conditions-first heuristic.
    pub use_stats: bool,
    /// Prune chains [`crate::analysis::SpecAnalysis::rule_infeasible`]
    /// proves empty (type-mismatched joins, unsatisfiable required
    /// conditions) instead of executing them. Requires
    /// [`PlanContext::analysis`]; pruning never changes answers, only
    /// skips provably-empty work.
    pub prune_infeasible: bool,
    /// How join orders are searched (and which cost model scores them).
    pub enumeration: JoinEnumeration,
    /// Weights collapsing a [`CostEstimate`] to one comparable number
    /// (`--cost-weights`); ignored under [`JoinEnumeration::Scalar`].
    pub cost_weights: CostWeights,
    /// Rule bodies with at most this many source groups are ordered by
    /// exhaustive enumeration under [`JoinEnumeration::Auto`]; larger
    /// bodies fall back to the greedy cheapest-next heuristic.
    pub exhaustive_limit: usize,
}

impl Default for PlannerOptions {
    fn default() -> PlannerOptions {
        PlannerOptions {
            pushdown: true,
            prefer_bind_join: None,
            dedup: true,
            use_stats: true,
            prune_infeasible: true,
            enumeration: JoinEnumeration::Auto,
            cost_weights: CostWeights::default(),
            exhaustive_limit: 6,
        }
    }
}

/// Join-order search strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinEnumeration {
    /// Exhaustive for rule bodies up to
    /// [`PlannerOptions::exhaustive_limit`] groups, greedy above.
    #[default]
    Auto,
    /// Score every feasible permutation with the multi-objective cost
    /// model (factorial in the group count — capped by callers via
    /// [`JoinEnumeration::Auto`]).
    Exhaustive,
    /// Pick the cheapest feasible next group under the already-bound
    /// variables, one position at a time.
    Greedy,
    /// The seed planner: sort by scalar cardinality estimate with the
    /// most-conditions-first tie-breaker, naive group products, and the
    /// seed bind-vs-hash heuristic. The baseline `experiments cost`
    /// measures the multi-objective model against.
    Scalar,
}

/// Everything the planner consults.
pub struct PlanContext<'a> {
    /// The registered source wrappers, by name.
    pub sources: &'a HashMap<Symbol, Arc<dyn Wrapper>>,
    /// External predicate implementations (for placement feasibility).
    pub registry: &'a ExternalRegistry,
    /// Cardinality statistics (provided + learned, §3.5).
    pub stats: &'a StatsCache,
    /// Planner knobs.
    pub options: &'a PlannerOptions,
    /// The whole-spec analysis, when the mediator ran one — enables
    /// infeasible-chain pruning.
    pub analysis: Option<&'a crate::analysis::SpecAnalysis>,
}

/// Plan a whole logical program. When an analysis is available and
/// [`PlannerOptions::prune_infeasible`] is on, chains the analysis proves
/// empty are dropped up front (recorded in [`PhysicalPlan::pruned`]).
pub fn plan(program: &LogicalProgram, ctx: &PlanContext) -> Result<PhysicalPlan> {
    let mut rules = Vec::with_capacity(program.rules.len());
    let mut pruned = Vec::new();
    for rule in &program.rules {
        if ctx.options.prune_infeasible {
            if let Some(analysis) = ctx.analysis {
                if let Some(reason) = analysis.rule_infeasible(rule) {
                    pruned.push(reason);
                    continue;
                }
            }
        }
        rules.push(plan_rule(rule, ctx)?);
    }
    Ok(PhysicalPlan {
        rules,
        dedup_results: ctx.options.dedup,
        pruned,
    })
}

struct Group {
    source: Symbol,
    patterns: Vec<Pattern>,
    /// Required condition labels no pattern satisfies on its own — the
    /// planner must order this group after one that binds the condition
    /// variable and reach it by bind join ($param fills the condition).
    missing_required: Vec<Symbol>,
}

/// A condition stripped out of a source query, to be applied client-side.
enum ClientFilter {
    /// `var = value` on a freshly introduced retrieval variable.
    ValueEq { var: Symbol, value: Value },
    /// The object-set bound to `var` must contain a member matching the
    /// condition.
    Rest { var: Symbol, condition: Pattern },
}

fn plan_rule(rule: &Rule, ctx: &PlanContext) -> Result<RulePlan> {
    // ---- partition the tail --------------------------------------------
    let mut groups: Vec<Group> = Vec::new();
    let mut externals: Vec<(Symbol, Vec<Term>)> = Vec::new();
    for item in &rule.tail {
        match item {
            TailItem::Match { pattern, source } => {
                let Some(src) = source else {
                    return Err(MedError::Planning(
                        "datamerge rule has an unannotated match item".into(),
                    ));
                };
                if !ctx.sources.contains_key(src) {
                    return Err(MedError::UnknownSource(src.as_str()));
                }
                match groups.iter_mut().find(|g| g.source == *src) {
                    Some(g) => g.patterns.push(pattern.clone()),
                    None => groups.push(Group {
                        source: *src,
                        patterns: vec![pattern.clone()],
                        missing_required: Vec::new(),
                    }),
                }
            }
            TailItem::External { name, args } => externals.push((*name, args.clone())),
        }
    }

    // ---- capability handling / pushdown --------------------------------
    let mut fresh_counter = 0usize;
    let mut processed: Vec<(Group, Vec<ClientFilter>)> = Vec::new();
    for g in groups {
        let wrapper = &ctx.sources[&g.source];
        let caps = wrapper.capabilities();
        let mut filters: Vec<ClientFilter> = Vec::new();
        let patterns: Vec<Pattern> = g
            .patterns
            .iter()
            .map(|p| {
                strip_conditions(
                    p,
                    &|cond: &Pattern| {
                        if !ctx.options.pushdown {
                            return true; // ablation: strip everything
                        }
                        match &cond.label {
                            Term::Const(v) => v
                                .as_str_sym()
                                .is_some_and(|l| caps.unsupported_condition_labels.contains(&l)),
                            _ => false,
                        }
                    },
                    &mut fresh_counter,
                    &mut filters,
                )
            })
            .collect();
        // After stripping, the source must accept what remains. A missing
        // *required* condition is not fatal here: the planner can still
        // satisfy it by bind join (a `$param` fills the condition), so it
        // is recorded and resolved during join ordering instead.
        let mut missing_required: Vec<Symbol> = Vec::new();
        for p in &patterns {
            for v in caps.pattern_violations(p, true) {
                match v {
                    wrappers::CapViolation::MissingRequiredCondition { label } => {
                        if !missing_required.contains(&label) {
                            missing_required.push(label);
                        }
                    }
                    other => {
                        return Err(MedError::Planning(format!(
                            "source '{}': {other}",
                            g.source
                        )))
                    }
                }
            }
        }
        processed.push((
            Group {
                source: g.source,
                patterns,
                missing_required,
            },
            filters,
        ));
    }

    // ---- variable bookkeeping -------------------------------------------
    // "Needed" variables must be extracted from source results: head vars,
    // external-predicate arguments, client-filter vars, and join/param vars
    // (shared between groups).
    let mut head_vars = Vec::new();
    rule.head.collect_vars(&mut head_vars);
    let mut needed: HashSet<Symbol> = head_vars.iter().copied().collect();
    for (_, args) in &externals {
        let mut vs = Vec::new();
        for a in args {
            a.collect_vars(&mut vs);
        }
        needed.extend(vs);
    }
    for (g, filters) in &processed {
        for f in filters {
            match f {
                ClientFilter::ValueEq { var, .. } => {
                    needed.insert(*var);
                }
                ClientFilter::Rest { var, .. } => {
                    needed.insert(*var);
                }
            }
        }
        let _ = g;
    }
    // Vars shared between groups are join/param variables → needed.
    {
        let mut seen_in: HashMap<Symbol, usize> = HashMap::new();
        for (g, _) in &processed {
            let mut vs = Vec::new();
            for p in &g.patterns {
                p.collect_vars(&mut vs);
            }
            let uniq: HashSet<Symbol> = vs.into_iter().collect();
            for v in uniq {
                *seen_in.entry(v).or_insert(0) += 1;
            }
        }
        for (v, n) in seen_in {
            if n > 1 {
                needed.insert(v);
            }
        }
    }

    // ---- join order ------------------------------------------------------
    // Pick the evaluation order by simulating candidate prefixes with the
    // same cost model the chain builder prices nodes with, so the scores
    // that chose the order are exactly the estimates EXPLAIN renders.
    // Orders that cannot fill a group's required conditions are skipped;
    // under [`JoinEnumeration::Scalar`] this is the seed's sort instead.
    let model = CostModel::new(ctx);
    let order = choose_join_order(&processed, &externals, &needed, &model)?;
    let mut slots: Vec<Option<(Group, Vec<ClientFilter>)>> =
        processed.into_iter().map(Some).collect();
    let processed: Vec<(Group, Vec<ClientFilter>)> = order
        .iter()
        .map(|&i| slots[i].take().expect("join order is a permutation"))
        .collect();

    // ---- build the chain ---------------------------------------------------
    // `estimates` stays parallel to `nodes`: every push into one is paired
    // with a push into the other, so EXPLAIN ANALYZE can line the cost
    // model's guess up against what actually flowed through each node.
    let mut nodes: Vec<Node> = Vec::new();
    let mut estimates: Vec<CostEstimate> = Vec::new();
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut placed_ext = vec![false; externals.len()];
    let mut running_est: f64 = 1.0;

    let place_externals = |nodes: &mut Vec<Node>,
                           estimates: &mut Vec<CostEstimate>,
                           cur_est: f64,
                           bound: &mut HashSet<Symbol>,
                           placed: &mut Vec<bool>,
                           ctx: &PlanContext| {
        loop {
            let mut progressed = false;
            for (i, (pred, args)) in externals.iter().enumerate() {
                if placed[i] || !callable_static(*pred, args, bound, ctx.registry) {
                    continue;
                }
                let mut vs = Vec::new();
                for a in args {
                    a.collect_vars(&mut vs);
                }
                let new_vars: Vec<Symbol> = vs.into_iter().filter(|v| !bound.contains(v)).collect();
                bound.extend(new_vars.iter().copied());
                nodes.push(Node::ExternalPred {
                    pred: *pred,
                    args: args.clone(),
                    new_vars,
                });
                estimates.push(CostEstimate::rows_only(cur_est));
                placed[i] = true;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    };

    for (gi, (group, filters)) in processed.iter().enumerate() {
        let wrapper = &ctx.sources[&group.source];
        let caps = wrapper.capabilities();

        // Variables of this group.
        let mut gvars = Vec::new();
        for p in &group.patterns {
            p.collect_vars(&mut gvars);
        }
        let gvars_set: HashSet<Symbol> = gvars.iter().copied().collect();
        let obj_vars = object_vars(&group.patterns);

        // Parameterizable vars: already bound, occur in term positions.
        let param_vars: Vec<Symbol> = if gi == 0 {
            Vec::new()
        } else {
            term_position_vars(&group.patterns)
                .into_iter()
                .filter(|v| bound.contains(v))
                .collect()
        };

        // Extraction: group vars that are needed downstream and not already
        // bound (params are in the table).
        let extract: Vec<ExtractVar> = gvars_set
            .iter()
            .filter(|v| needed.contains(v) && !bound.contains(v))
            .map(|v| ExtractVar {
                var: *v,
                kind: if obj_vars.contains(v) {
                    VarKind::Object
                } else {
                    VarKind::Scalar
                },
            })
            .collect();
        let mut extract = extract;
        extract.sort_by_key(|e| e.var.as_str());

        // A group with unmet required conditions (a form-based source's
        // mandatory field) is only evaluable as a bind join whose `$param`
        // slots fill those conditions — verify the params cover them.
        let forced_bind = !group.missing_required.is_empty();
        if forced_bind && !params_fill_required(group, caps, &param_vars) {
            return Err(unfillable_order_error(group));
        }

        let (step_est, use_bind) = if ctx.options.enumeration == JoinEnumeration::Scalar {
            // The seed model: one scalar running-cardinality estimate and
            // the seed's bind-vs-hash heuristic. Bind join sends one source
            // query per outer tuple; if the source answers parameterized
            // lookups cheaply (indexed), compare cardinalities, else bind
            // joins only pay off for tiny outers.
            let pr: Vec<&Pattern> = group.patterns.iter().collect();
            let est = if ctx.options.use_stats && ctx.stats.knows(group.source) {
                ctx.stats.estimate_group_naive(group.source, &pr)
            } else {
                StatsCache::new().estimate_group_naive(group.source, &pr)
            };
            let use_bind = forced_bind
                || !param_vars.is_empty()
                    && caps.parameterized
                    && match ctx.options.prefer_bind_join {
                        Some(b) => b,
                        None => {
                            if caps.parameterized_cheap {
                                running_est <= est
                            } else {
                                running_est <= 8.0
                            }
                        }
                    };
            let next = if gi == 0 {
                est
            } else {
                running_est.min(est).max(1.0)
            };
            (CostEstimate::rows_only(next), use_bind)
        } else {
            model
                .assess(
                    group,
                    caps,
                    &param_vars,
                    &gvars_set,
                    &bound,
                    running_est,
                    gi == 0,
                )
                .ok_or_else(|| unfillable_order_error(group))?
        };
        running_est = step_est.rows_out;

        if gi == 0 {
            let query = build_source_query(group.source, &group.patterns, &extract, &[]);
            nodes.push(Node::Query {
                source: group.source,
                query,
                vars: extract.clone(),
            });
        } else if use_bind {
            let query = build_source_query(group.source, &group.patterns, &extract, &param_vars);
            nodes.push(Node::ParamQuery {
                source: group.source,
                query,
                params: param_vars.clone(),
                vars: extract.clone(),
            });
        } else {
            // Fetch the group and hash-join on the shared bound vars.
            let join_vars: Vec<Symbol> = {
                let mut jv: Vec<Symbol> = gvars_set
                    .iter()
                    .filter(|v| bound.contains(v))
                    .copied()
                    .collect();
                jv.sort_by_key(|v| v.as_str());
                jv
            };
            // Inner extraction must include the join vars.
            let mut inner_extract = extract.clone();
            for v in &join_vars {
                if !inner_extract.iter().any(|e| e.var == *v) {
                    inner_extract.push(ExtractVar {
                        var: *v,
                        kind: if obj_vars.contains(v) {
                            VarKind::Object
                        } else {
                            VarKind::Scalar
                        },
                    });
                }
            }
            inner_extract.sort_by_key(|e| e.var.as_str());
            let query = build_source_query(group.source, &group.patterns, &inner_extract, &[]);
            nodes.push(Node::HashJoin {
                source: group.source,
                query,
                vars: inner_extract,
                join_vars,
            });
        }
        estimates.push(step_est);
        bound.extend(extract.iter().map(|e| e.var));
        bound.extend(param_vars.iter().copied());

        // Client-side filters for what the source could not evaluate.
        for f in filters {
            match f {
                ClientFilter::ValueEq { var, value } => nodes.push(Node::ExternalPred {
                    pred: Symbol::intern("eq"),
                    args: vec![Term::Var(*var), Term::Const(value.clone())],
                    new_vars: Vec::new(),
                }),
                ClientFilter::Rest { var, condition } => nodes.push(Node::RestFilter {
                    var: *var,
                    condition: condition.clone(),
                }),
            }
            estimates.push(CostEstimate::rows_only(running_est));
        }

        place_externals(
            &mut nodes,
            &mut estimates,
            running_est,
            &mut bound,
            &mut placed_ext,
            ctx,
        );
    }

    // Last chance for stragglers (e.g. all-bound checks).
    place_externals(
        &mut nodes,
        &mut estimates,
        running_est,
        &mut bound,
        &mut placed_ext,
        ctx,
    );
    if let Some(i) = placed_ext.iter().position(|p| !p) {
        return Err(MedError::Planning(format!(
            "external predicate {} is not callable in any placement \
             (no implementation matches the available bindings)",
            externals[i].0
        )));
    }

    if ctx.options.dedup {
        let mut hv = Vec::new();
        rule.head.collect_vars(&mut hv);
        let mut seen = HashSet::new();
        hv.retain(|v| seen.insert(*v));
        nodes.push(Node::DupElim { vars: hv });
        estimates.push(CostEstimate::rows_only(running_est));
    }

    Ok(RulePlan {
        nodes,
        estimates,
        head: rule.head.clone(),
    })
}

/// The shared error for a group whose required conditions (a form-based
/// source's mandatory field) no evaluation order can fill via `$param`.
fn unfillable_order_error(group: &Group) -> MedError {
    MedError::Planning(format!(
        "source '{}' requires a bound condition on '{}', and no \
         evaluation order can supply one",
        group.source, group.missing_required[0]
    ))
}

/// Do the bind-join `$param` slots fill every required condition the
/// group's own patterns left unmet?
fn params_fill_required(
    group: &Group,
    caps: &wrappers::Capabilities,
    param_vars: &[Symbol],
) -> bool {
    caps.parameterized
        && group.missing_required.iter().all(|&label| {
            group.patterns.iter().any(|p| {
                let PatValue::Set(sp) = &p.value else {
                    return false;
                };
                sp.elements.iter().any(|e| match e {
                    SetElem::Pattern(c) | SetElem::Wildcard(c) => {
                        matches!(&c.label, Term::Const(v)
                            if v.as_str_sym() == Some(label))
                            && matches!(&c.value, PatValue::Term(Term::Var(v))
                                if param_vars.contains(v))
                    }
                    SetElem::Var(_) => false,
                })
            })
        })
}

/// The multi-objective cost model. One instance prices both the
/// enumerator's simulated steps and the chain builder's final per-node
/// estimates, so the scores that choose the join order are exactly the
/// numbers `EXPLAIN ANALYZE` renders drift against.
struct CostModel<'a, 'b> {
    ctx: &'b PlanContext<'a>,
    /// Fallback estimates for sources with no provided/learned statistics.
    defaults: StatsCache,
}

impl<'a, 'b> CostModel<'a, 'b> {
    fn new(ctx: &'b PlanContext<'a>) -> CostModel<'a, 'b> {
        CostModel {
            ctx,
            defaults: StatsCache::new(),
        }
    }

    /// Estimated result rows of the group's own patterns
    /// ([`StatsCache::estimate_group`], shared-variable discounts
    /// included).
    fn group_rows(&self, group: &Group) -> f64 {
        let pr: Vec<&Pattern> = group.patterns.iter().collect();
        if self.ctx.options.use_stats && self.ctx.stats.knows(group.source) {
            self.ctx.stats.estimate_group(group.source, &pr)
        } else {
            self.defaults.estimate_group(group.source, &pr)
        }
    }

    /// Priced milliseconds per round trip to the source: the measured
    /// latency EWMA marked up by the failure rate and discounted by the
    /// observed cache-hit probability (§3.5's per-call cost signal).
    fn per_call_ms(&self, source: Symbol) -> f64 {
        if self.ctx.options.use_stats {
            self.ctx.stats.per_call_cost_ms(source)
        } else {
            crate::stats::DEFAULT_LATENCY_MS
        }
    }

    /// Price `group` as the next step of a chain: `running` rows flow in
    /// and `bound` variables are available. Returns the step's cost
    /// breakdown and whether a bind join was chosen; `None` when the step
    /// is infeasible at this position (required conditions no `$param`
    /// can fill yet).
    #[allow(clippy::too_many_arguments)]
    fn assess(
        &self,
        group: &Group,
        caps: &wrappers::Capabilities,
        param_vars: &[Symbol],
        gvars: &HashSet<Symbol>,
        bound: &HashSet<Symbol>,
        running: f64,
        first: bool,
    ) -> Option<(CostEstimate, bool)> {
        let forced_bind = !group.missing_required.is_empty();
        if forced_bind && !params_fill_required(group, caps, param_vars) {
            return None;
        }
        let rows_g = self.group_rows(group);
        let per_call = self.per_call_ms(group.source);
        if first {
            // One fetch: every group row crosses the wire, is scanned
            // once, and flows on.
            return Some((
                CostEstimate {
                    rows_out: rows_g,
                    cpu: rows_g,
                    net: per_call,
                    memory: rows_g,
                },
                false,
            ));
        }
        let shared = gvars.iter().filter(|v| bound.contains(*v)).count();
        // Floored at one row: observed cardinalities for inner groups are
        // fed by per-probe bind-join calls, so they already reflect the
        // join condition — multiplying the equi-join selectivity back in
        // would compound the discount below anything a join that runs at
        // all actually emits.
        let rows_out =
            (running * rows_g * JOIN_EQ_SELECTIVITY.powi(shared.min(127) as i32)).max(1.0);
        // Bind join: one parameterized call per outer row; only the
        // matching rows come back, so state is output-sized. Hash join:
        // one fetch, but the whole group crosses the wire, resides in the
        // hash table, and is scanned.
        let bind = CostEstimate {
            rows_out,
            cpu: running + rows_out,
            net: running.max(1.0).ceil() * per_call,
            memory: rows_out,
        };
        let hash = CostEstimate {
            rows_out,
            cpu: running + rows_g + rows_out,
            net: per_call,
            memory: rows_g + running,
        };
        let bind_possible = !param_vars.is_empty() && caps.parameterized;
        let use_bind = forced_bind
            || bind_possible
                && match self.ctx.options.prefer_bind_join {
                    Some(b) => b,
                    None => {
                        bind.total(&self.ctx.options.cost_weights)
                            <= hash.total(&self.ctx.options.cost_weights)
                    }
                };
        Some((if use_bind { bind } else { hash }, use_bind))
    }
}

/// Simulated execution state for join-order search. Stepping a group
/// mirrors exactly what the chain builder will do for that prefix: bind
/// the group's needed variables and `$param`s, then run the
/// external-predicate placement fixpoint (externals bind variables too,
/// which can make later groups' bind joins feasible).
#[derive(Clone)]
struct OrderSim<'a, 'b> {
    model: &'b CostModel<'a, 'b>,
    processed: &'b [(Group, Vec<ClientFilter>)],
    externals: &'b [(Symbol, Vec<Term>)],
    needed: &'b HashSet<Symbol>,
    bound: HashSet<Symbol>,
    placed: Vec<bool>,
    running: f64,
    first: bool,
}

impl<'a, 'b> OrderSim<'a, 'b> {
    fn new(
        model: &'b CostModel<'a, 'b>,
        processed: &'b [(Group, Vec<ClientFilter>)],
        externals: &'b [(Symbol, Vec<Term>)],
        needed: &'b HashSet<Symbol>,
    ) -> OrderSim<'a, 'b> {
        OrderSim {
            model,
            processed,
            externals,
            needed,
            bound: HashSet::new(),
            placed: vec![false; externals.len()],
            running: 1.0,
            first: true,
        }
    }

    /// Take group `i` as the next step; returns its weighted cost, or
    /// `None` when the group is infeasible at this position.
    fn step(&mut self, i: usize) -> Option<f64> {
        let ctx = self.model.ctx;
        let (group, _) = &self.processed[i];
        let caps = ctx.sources[&group.source].capabilities();
        let mut gv = Vec::new();
        for p in &group.patterns {
            p.collect_vars(&mut gv);
        }
        let gvars: HashSet<Symbol> = gv.into_iter().collect();
        let param_vars: Vec<Symbol> = if self.first {
            Vec::new()
        } else {
            term_position_vars(&group.patterns)
                .into_iter()
                .filter(|v| self.bound.contains(v))
                .collect()
        };
        let (est, _) = self.model.assess(
            group,
            caps,
            &param_vars,
            &gvars,
            &self.bound,
            self.running,
            self.first,
        )?;
        let cost = est.total(&ctx.options.cost_weights);
        self.running = est.rows_out;
        self.first = false;
        self.bound
            .extend(gvars.iter().filter(|v| self.needed.contains(*v)).copied());
        self.bound.extend(param_vars);
        loop {
            let mut progressed = false;
            for (k, (pred, args)) in self.externals.iter().enumerate() {
                if self.placed[k] || !callable_static(*pred, args, &self.bound, ctx.registry) {
                    continue;
                }
                let mut vs = Vec::new();
                for a in args {
                    a.collect_vars(&mut vs);
                }
                self.bound.extend(vs);
                self.placed[k] = true;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        Some(cost)
    }
}

/// Pick the evaluation order of the rule's source groups, as indices into
/// `processed`. Errors when a group's required conditions cannot be
/// filled under any order.
fn choose_join_order(
    processed: &[(Group, Vec<ClientFilter>)],
    externals: &[(Symbol, Vec<Term>)],
    needed: &HashSet<Symbol>,
    model: &CostModel,
) -> Result<Vec<usize>> {
    let ctx = model.ctx;
    let n = processed.len();
    if ctx.options.enumeration == JoinEnumeration::Scalar {
        return Ok(scalar_order(processed, ctx));
    }
    if n <= 1 {
        return Ok((0..n).collect());
    }
    let exhaustive = match ctx.options.enumeration {
        JoinEnumeration::Exhaustive => true,
        JoinEnumeration::Greedy => false,
        _ => n <= ctx.options.exhaustive_limit,
    };
    let sim = OrderSim::new(model, processed, externals, needed);
    let order = if exhaustive {
        exhaustive_order(&sim, n)
    } else {
        greedy_order(sim, n)
    };
    order.ok_or_else(|| {
        let offender = processed
            .iter()
            .map(|(g, _)| g)
            .find(|g| !g.missing_required.is_empty())
            .expect("an order search only fails over unfillable required conditions");
        unfillable_order_error(offender)
    })
}

/// Score every feasible permutation, keeping the strictly-cheapest one.
/// Ties keep the first (lexicographically-smallest) order found, so equal
/// costs never make planning order-dependent. Prefixes already at or
/// above the best score are pruned (step costs are non-negative).
fn exhaustive_order(sim: &OrderSim, n: usize) -> Option<Vec<usize>> {
    fn search(
        sim: &OrderSim,
        score: f64,
        used: &mut Vec<bool>,
        prefix: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
    ) {
        if let Some((best_score, _)) = best {
            if score >= *best_score {
                return;
            }
        }
        if prefix.len() == used.len() {
            *best = Some((score, prefix.clone()));
            return;
        }
        for i in 0..used.len() {
            if used[i] {
                continue;
            }
            let mut next = sim.clone();
            let Some(cost) = next.step(i) else { continue };
            used[i] = true;
            prefix.push(i);
            search(&next, score + cost, used, prefix, best);
            prefix.pop();
            used[i] = false;
        }
    }
    let mut best = None;
    search(sim, 0.0, &mut vec![false; n], &mut Vec::new(), &mut best);
    best.map(|(_, order)| order)
}

/// Greedy cheapest-next: at each position take the feasible group with
/// the lowest incremental weighted cost (first index wins ties).
fn greedy_order(mut sim: OrderSim, n: usize) -> Option<Vec<usize>> {
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<(f64, usize, OrderSim)> = None;
        for (i, &taken) in used.iter().enumerate() {
            if taken {
                continue;
            }
            let mut next = sim.clone();
            if let Some(cost) = next.step(i) {
                if best.as_ref().is_none_or(|(bc, _, _)| cost < *bc) {
                    best = Some((cost, i, next));
                }
            }
        }
        let (_, i, next) = best?;
        sim = next;
        used[i] = true;
        order.push(i);
    }
    Some(order)
}

/// The seed planner's join order (the `Scalar` ablation): groups whose
/// source demands a condition no pattern supplies sort last; within each
/// class ascending naive cardinality estimate, most-conditions-first as
/// the tie-breaker and as the whole story without statistics.
fn scalar_order(processed: &[(Group, Vec<ClientFilter>)], ctx: &PlanContext) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..processed.len()).collect();
    idx.sort_by(|&x, &y| {
        let (a, b) = (&processed[x].0, &processed[y].0);
        let class = a
            .missing_required
            .is_empty()
            .cmp(&b.missing_required.is_empty())
            .reverse();
        if class != std::cmp::Ordering::Equal {
            return class;
        }
        let pa: Vec<&Pattern> = a.patterns.iter().collect();
        let pb: Vec<&Pattern> = b.patterns.iter().collect();
        let conds_a = condition_count(&pa);
        let conds_b = condition_count(&pb);
        let (ka, kb) = (
            ctx.options.use_stats && ctx.stats.knows(a.source),
            ctx.options.use_stats && ctx.stats.knows(b.source),
        );
        // NaN estimates (degenerate statistics, e.g. 0.0/0.0 selectivity)
        // must not compare as Equal: that would make the join order depend
        // on input position. Unknown ⇒ last, same as a missing estimate,
        // keeping the ordering total and deterministic.
        let sanitize = |est: f64| if est.is_nan() { f64::MAX } else { est };
        let est_a = if ka {
            sanitize(ctx.stats.estimate_group_naive(a.source, &pa))
        } else {
            f64::MAX
        };
        let est_b = if kb {
            sanitize(ctx.stats.estimate_group_naive(b.source, &pb))
        } else {
            f64::MAX
        };
        est_a
            .partial_cmp(&est_b)
            .expect("estimates are NaN-free after sanitize")
            .then(conds_b.cmp(&conds_a))
    });
    idx
}

/// Is the external predicate callable given the statically-known bound
/// variables?
fn callable_static(
    pred: Symbol,
    args: &[Term],
    bound: &HashSet<Symbol>,
    registry: &ExternalRegistry,
) -> bool {
    let arg_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
        _ => false,
    };
    if crate::externals::is_builtin(pred) {
        let n = args.iter().filter(|t| arg_bound(t)).count();
        return n == args.len() || (pred == Symbol::intern("eq") && n + 1 == args.len());
    }
    registry.impls_for(pred).iter().any(|imp| {
        imp.adornment.len() == args.len()
            && imp
                .adornment
                .iter()
                .zip(args)
                .all(|(a, t)| *a == msl::Adornment::Free || arg_bound(t))
    })
}

/// Object variables appearing anywhere in the patterns.
fn object_vars(patterns: &[Pattern]) -> HashSet<Symbol> {
    fn walk(p: &Pattern, out: &mut HashSet<Symbol>) {
        if let Some(v) = p.obj_var {
            out.insert(v);
        }
        if let PatValue::Set(sp) = &p.value {
            for e in &sp.elements {
                if let SetElem::Pattern(q) | SetElem::Wildcard(q) = e {
                    walk(q, out);
                }
            }
            if let Some(r) = &sp.rest {
                for c in &r.conditions {
                    walk(c, out);
                }
            }
        }
    }
    let mut out = HashSet::new();
    for p in patterns {
        walk(p, &mut out);
    }
    out
}

/// Variables in *term* positions (oid/label/type/value slots) — the ones a
/// parameterized query can substitute.
fn term_position_vars(patterns: &[Pattern]) -> Vec<Symbol> {
    fn walk(p: &Pattern, out: &mut Vec<Symbol>) {
        for t in [Some(&p.label), p.oid.as_ref(), p.typ.as_ref()]
            .into_iter()
            .flatten()
        {
            t.collect_vars(out);
        }
        match &p.value {
            PatValue::Term(t) => t.collect_vars(out),
            PatValue::Set(sp) => {
                for e in &sp.elements {
                    if let SetElem::Pattern(q) | SetElem::Wildcard(q) = e {
                        walk(q, out);
                    }
                }
                if let Some(r) = &sp.rest {
                    for c in &r.conditions {
                        walk(c, out);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for p in patterns {
        walk(p, &mut out);
    }
    let mut seen = HashSet::new();
    out.retain(|v| seen.insert(*v));
    out
}

/// Build the bind_for-style source query: head
/// `<bind_for_<src> { <bind_for_V V> ... }>`, tail = the group's patterns,
/// with `params` turned into `$param` slots (§3.4's Qw/Qcs shapes).
fn build_source_query(
    source: Symbol,
    patterns: &[Pattern],
    extract: &[ExtractVar],
    params: &[Symbol],
) -> Rule {
    let mut elements: Vec<SetElem> = Vec::new();
    for e in extract {
        let carrier = Symbol::intern(&format!("bind_for_{}", e.var));
        let inner = match e.kind {
            VarKind::Scalar => Pattern::lv(
                Term::Const(Value::Str(carrier)),
                PatValue::Term(Term::Var(e.var)),
            ),
            VarKind::Object => Pattern::lv(
                Term::Const(Value::Str(carrier)),
                PatValue::Set(SetPattern {
                    elements: vec![SetElem::Var(e.var)],
                    rest: None,
                }),
            ),
        };
        elements.push(SetElem::Pattern(inner));
    }
    let head = Head::Pattern(Pattern::lv(
        Term::Const(Value::Str(Symbol::intern(&format!("bind_for_{source}")))),
        PatValue::Set(SetPattern {
            elements,
            rest: None,
        }),
    ));

    // Parameterize: replace bound vars with $param slots.
    let subst: Subst = params.iter().map(|v| (*v, Term::Param(*v))).collect();
    let tail = patterns
        .iter()
        .map(|p| TailItem::Match {
            pattern: subst_pattern(p, &subst),
            source: Some(source),
        })
        .collect();
    Rule { head, tail }
}

/// Strip conditions selected by `should_strip` out of a pattern, emitting
/// client-side filters. Constant-valued subpatterns become
/// variable-valued retrievals plus an equality filter; rest-variable
/// conditions move to [`ClientFilter::Rest`].
fn strip_conditions(
    p: &Pattern,
    should_strip: &dyn Fn(&Pattern) -> bool,
    fresh: &mut usize,
    filters: &mut Vec<ClientFilter>,
) -> Pattern {
    let value = match &p.value {
        PatValue::Term(t) => PatValue::Term(t.clone()),
        PatValue::Set(sp) => {
            let mut elements = Vec::with_capacity(sp.elements.len());
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(q) => {
                        let mut q2 = strip_conditions(q, should_strip, fresh, filters);
                        if matches!(&q2.value, PatValue::Term(Term::Const(_))) && should_strip(&q2)
                        {
                            if let PatValue::Term(Term::Const(v)) = q2.value.clone() {
                                *fresh += 1;
                                let var = Symbol::intern(&format!("StripV{fresh}"));
                                q2.value = PatValue::Term(Term::Var(var));
                                filters.push(ClientFilter::ValueEq { var, value: v });
                            }
                        }
                        elements.push(SetElem::Pattern(q2));
                    }
                    SetElem::Wildcard(q) => {
                        elements.push(SetElem::Wildcard(q.clone()));
                    }
                    SetElem::Var(v) => elements.push(SetElem::Var(*v)),
                }
            }
            let rest = sp.rest.as_ref().map(|r| {
                let mut kept = Vec::new();
                for c in &r.conditions {
                    if should_strip(c) {
                        filters.push(ClientFilter::Rest {
                            var: r.var,
                            condition: c.clone(),
                        });
                    } else {
                        kept.push(c.clone());
                    }
                }
                RestSpec {
                    var: r.var,
                    conditions: kept,
                }
            });
            PatValue::Set(SetPattern { elements, rest })
        }
    };
    Pattern {
        obj_var: p.obj_var,
        oid: p.oid.clone(),
        label: p.label.clone(),
        typ: p.typ.clone(),
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::externals::standard_registry;
    use crate::spec::MediatorSpec;
    use crate::veao::expand;
    use engine::unify::UnifyMode;
    use msl::parse_query;
    use oem::sym;
    use wrappers::scenario::{cs_wrapper, whois_wrapper, MS1};
    use wrappers::Capabilities;

    fn sources() -> HashMap<Symbol, Arc<dyn Wrapper>> {
        let mut m: HashMap<Symbol, Arc<dyn Wrapper>> = HashMap::new();
        m.insert(sym("whois"), Arc::new(whois_wrapper()));
        m.insert(sym("cs"), Arc::new(cs_wrapper()));
        m
    }

    fn plan_query(query: &str, options: PlannerOptions) -> PhysicalPlan {
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query(query).unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let stats = StatsCache::new();
        let srcs = sources();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        plan(&program, &ctx).unwrap()
    }

    #[test]
    fn q1_plan_matches_figure_3_6_shape() {
        // Query → ExternalPred(decomp) → ParamQuery → DupElim, plus the
        // constructor held in RulePlan::head. (Figure 3.6 splits query and
        // extractor; our Query node fuses them.)
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions::default(),
        );
        assert_eq!(plan.rules.len(), 1);
        let ops: Vec<&str> = plan.rules[0].nodes.iter().map(|n| n.op_name()).collect();
        assert_eq!(
            ops,
            vec!["query", "external pred", "parameterized query", "dup elim"],
            "{ops:?}"
        );
        // The outer query goes to whois (3 conditions vs cs's 0, and no
        // decomp inputs are available before whois runs).
        let Node::Query { source, query, .. } = &plan.rules[0].nodes[0] else {
            panic!()
        };
        assert_eq!(*source, sym("whois"));
        let qtext = msl::printer::rule(query);
        assert!(qtext.contains("bind_for_whois"), "{qtext}");
        assert!(qtext.contains("<dept 'CS'>"), "{qtext}");

        // The parameterized query carries $ slots for R, LN, FN.
        let Node::ParamQuery {
            source,
            params,
            query,
            ..
        } = &plan.rules[0].nodes[2]
        else {
            panic!()
        };
        assert_eq!(*source, sym("cs"));
        let qtext = msl::printer::rule(query);
        let mut ps: Vec<String> = params.iter().map(|p| p.as_str()).collect();
        ps.sort();
        assert_eq!(ps.len(), 3, "{ps:?} in {qtext}");
        assert!(qtext.contains("$"), "{qtext}");
    }

    #[test]
    fn nan_producing_stats_keep_join_order_deterministic() {
        // A wrapper computing selectivity as 0.0/0.0 hands the optimizer a
        // NaN. The join-order comparator must stay total (NaN ⇒ f64::MAX,
        // unknown sorts last) — planning must neither panic nor depend on
        // the input position of the groups.
        use wrappers::SourceStats;
        let mut stats = StatsCache::new();
        for src in ["whois", "cs"] {
            stats.provide(
                sym(src),
                SourceStats {
                    top_level_count: 5,
                    label_counts: [(sym("person"), 5), (sym("R"), 5)].into_iter().collect(),
                    eq_selectivity: [
                        (sym("name"), f64::NAN),
                        (sym("dept"), f64::NAN),
                        (sym("relation"), f64::NAN),
                    ]
                    .into_iter()
                    .collect(),
                },
            );
        }
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let srcs = sources();
        let options = PlannerOptions::default();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        let order = |p: &PhysicalPlan| -> Vec<String> {
            p.rules[0]
                .nodes
                .iter()
                .filter_map(|n| match n {
                    Node::Query { source, .. }
                    | Node::ParamQuery { source, .. }
                    | Node::HashJoin { source, .. } => Some(source.as_str()),
                    _ => None,
                })
                .collect()
        };
        let first = order(&plan(&program, &ctx).unwrap());
        for _ in 0..10 {
            assert_eq!(order(&plan(&program, &ctx).unwrap()), first);
        }
    }

    #[test]
    fn forced_hash_join() {
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions {
                prefer_bind_join: Some(false),
                ..Default::default()
            },
        );
        let ops: Vec<&str> = plan.rules[0].nodes.iter().map(|n| n.op_name()).collect();
        assert!(ops.contains(&"hash join"), "{ops:?}");
        assert!(!ops.contains(&"parameterized query"), "{ops:?}");
    }

    #[test]
    fn dedup_omitted_when_disabled() {
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions {
                dedup: false,
                ..Default::default()
            },
        );
        let ops: Vec<&str> = plan.rules[0].nodes.iter().map(|n| n.op_name()).collect();
        assert!(!ops.contains(&"dup elim"));
        assert!(!plan.dedup_results);
    }

    #[test]
    fn pushdown_ablation_strips_conditions() {
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions {
                pushdown: false,
                ..Default::default()
            },
        );
        let nodes = &plan.rules[0].nodes;
        // The whois query must no longer contain the 'CS' constant...
        let Node::Query { query, .. } = &nodes[0] else {
            panic!()
        };
        let qtext = msl::printer::rule(query);
        assert!(!qtext.contains("'CS'"), "{qtext}");
        // ...and eq-filters appear client-side.
        let eq_filters = nodes
            .iter()
            .filter(|n| matches!(n, Node::ExternalPred { pred, .. } if *pred == sym("eq")))
            .count();
        assert!(eq_filters >= 2, "expected stripped filters, got {nodes:?}");
    }

    #[test]
    fn capability_restriction_inserts_rest_filter() {
        // whois cannot evaluate 'year' conditions: the Q3-style rule keeps
        // <year 3> in the mediator as a RestFilter.
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query("S :- S:<cs_person {<year 3>}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let stats = StatsCache::new();
        let mut srcs: HashMap<Symbol, Arc<dyn Wrapper>> = HashMap::new();
        srcs.insert(
            sym("whois"),
            Arc::new(
                whois_wrapper()
                    .with_capabilities(Capabilities::full().without_condition_on(sym("year"))),
            ),
        );
        srcs.insert(sym("cs"), Arc::new(cs_wrapper()));
        let options = PlannerOptions::default();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        let plan = plan(&program, &ctx).unwrap();
        // One of the two rules (the push-into-Rest1 one) gets a RestFilter.
        let has_rest_filter = plan.rules.iter().flat_map(|r| &r.nodes).any(
            |n| matches!(n, Node::RestFilter { var, .. } if var.as_str().starts_with("Rest1")),
        );
        assert!(has_rest_filter, "{plan:?}");
        // And the whois query no longer carries the year condition.
        for r in &plan.rules {
            for n in &r.nodes {
                if let Node::Query { source, query, .. } = n {
                    if *source == sym("whois") {
                        assert!(!msl::printer::rule(query).contains("<year 3>"));
                    }
                }
            }
        }
    }

    #[test]
    fn scan_based_inner_prefers_hash_join() {
        // whois (2000 rows) answers parameterized queries by scanning, so
        // whenever whois is inner the planner must choose a hash join
        // rather than per-tuple scans — under the multi-objective model
        // the bind join's `net` (one priced round-trip per outer row)
        // dwarfs the hash join's single fetch. Under the Scalar ablation
        // the seed behavior is pinned exactly: cs (80 rows) goes outer and
        // whois is hash-joined.
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query("P :- P:<cs_person {}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let mut stats = StatsCache::new();
        // Provide stats for both sources so ordering is cardinality-based.
        stats.provide(
            sym("cs"),
            wrappers::SourceStats {
                top_level_count: 80,
                label_counts: Default::default(),
                eq_selectivity: Default::default(),
            },
        );
        stats.provide(
            sym("whois"),
            wrappers::SourceStats {
                top_level_count: 2000,
                label_counts: [(sym("person"), 2000)].into_iter().collect(),
                eq_selectivity: Default::default(),
            },
        );
        let srcs = sources();
        for enumeration in [
            JoinEnumeration::Auto,
            JoinEnumeration::Greedy,
            JoinEnumeration::Scalar,
        ] {
            let options = PlannerOptions {
                enumeration,
                ..Default::default()
            };
            let ctx = PlanContext {
                sources: &srcs,
                registry: &registry,
                stats: &stats,
                options: &options,
                analysis: None,
            };
            let plan = plan(&program, &ctx).unwrap();
            let nodes = &plan.rules[0].nodes;
            if enumeration == JoinEnumeration::Scalar {
                let Node::Query { source, .. } = &nodes[0] else {
                    panic!("expected a query first, got {nodes:?}")
                };
                assert_eq!(*source, sym("cs"), "seed model: small side goes outer");
            }
            let whois_bind_joined = nodes
                .iter()
                .any(|n| matches!(n, Node::ParamQuery { source, .. } if *source == sym("whois")));
            assert!(
                !whois_bind_joined,
                "{enumeration:?}: scan-based whois must never be bind-joined: {nodes:?}"
            );
        }
    }

    #[test]
    fn shared_variable_discount_flips_join_order() {
        // Two whois patterns share X, so the whois group is an equi-join
        // (50 × 50 × 0.1 = 250 rows), not a cross product (2500). The
        // seed's naive product ranks whois *larger* than cs (300) and
        // starts with cs; the fixed estimate ranks whois smaller and
        // starts there. Satellite check for the shared-variable fix:
        // the two models must genuinely disagree on this ordering.
        let spec = "<v {<x X> <y Y>}> :- <a {<x X> <y Y>}>@whois \
                    AND <b {<x X>}>@whois AND <c {<y Y>}>@cs";
        let med = MediatorSpec::parse("med", spec).unwrap();
        let q = parse_query("V :- V:<v {}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let mut stats = StatsCache::new();
        stats.provide(
            sym("whois"),
            wrappers::SourceStats {
                top_level_count: 100,
                label_counts: [(sym("a"), 50), (sym("b"), 50)].into_iter().collect(),
                eq_selectivity: Default::default(),
            },
        );
        stats.provide(
            sym("cs"),
            wrappers::SourceStats {
                top_level_count: 300,
                label_counts: [(sym("c"), 300)].into_iter().collect(),
                eq_selectivity: Default::default(),
            },
        );
        let srcs = sources();
        let first_source = |enumeration: JoinEnumeration| -> Symbol {
            let options = PlannerOptions {
                enumeration,
                ..Default::default()
            };
            let ctx = PlanContext {
                sources: &srcs,
                registry: &registry,
                stats: &stats,
                options: &options,
                analysis: None,
            };
            let plan = plan(&program, &ctx).unwrap();
            let Node::Query { source, .. } = &plan.rules[0].nodes[0] else {
                panic!("expected a query first: {:?}", plan.rules[0].nodes)
            };
            *source
        };
        assert_eq!(first_source(JoinEnumeration::Scalar), sym("cs"));
        assert_eq!(first_source(JoinEnumeration::Auto), sym("whois"));
        assert_eq!(first_source(JoinEnumeration::Greedy), sym("whois"));
    }

    #[test]
    fn equal_cost_orders_tie_break_on_input_order() {
        // Two indistinguishable groups (same wrapper, same stats): every
        // join order costs the same. Both enumerators must settle the tie
        // on input position — first spec order, then its mirror — and do
        // so identically on every replan.
        let registry = standard_registry();
        let mut stats = StatsCache::new();
        for src in ["s1", "s2"] {
            stats.provide(
                sym(src),
                wrappers::SourceStats {
                    top_level_count: 100,
                    label_counts: [(sym("p"), 100)].into_iter().collect(),
                    eq_selectivity: Default::default(),
                },
            );
        }
        let mut srcs: HashMap<Symbol, Arc<dyn Wrapper>> = HashMap::new();
        srcs.insert(sym("s1"), Arc::new(cs_wrapper()));
        srcs.insert(sym("s2"), Arc::new(cs_wrapper()));
        for (spec, want_first) in [
            ("<v {<x X>}> :- <p {<x X>}>@s1 AND <p {<x X>}>@s2", "s1"),
            ("<v {<x X>}> :- <p {<x X>}>@s2 AND <p {<x X>}>@s1", "s2"),
        ] {
            let med = MediatorSpec::parse("med", spec).unwrap();
            let q = parse_query("V :- V:<v {}>@med").unwrap();
            let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
            for enumeration in [JoinEnumeration::Exhaustive, JoinEnumeration::Greedy] {
                let options = PlannerOptions {
                    enumeration,
                    ..Default::default()
                };
                let ctx = PlanContext {
                    sources: &srcs,
                    registry: &registry,
                    stats: &stats,
                    options: &options,
                    analysis: None,
                };
                for _ in 0..5 {
                    let plan = plan(&program, &ctx).unwrap();
                    let Node::Query { source, .. } = &plan.rules[0].nodes[0] else {
                        panic!("expected a query first: {:?}", plan.rules[0].nodes)
                    };
                    assert_eq!(
                        *source,
                        sym(want_first),
                        "{enumeration:?} must keep the input order on ties"
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_inner_prefers_bind_join() {
        // The reverse shape: whois outer (selective conditions), cs inner.
        // cs answers parameterized lookups via indexes → bind join.
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions::default(),
        );
        let nodes = &plan.rules[0].nodes;
        assert!(
            nodes.iter().any(|n| matches!(
                n,
                Node::ParamQuery { source, .. } if *source == sym("cs")
            )),
            "{nodes:?}"
        );
    }

    #[test]
    fn unknown_source_is_an_error() {
        let med = MediatorSpec::parse("med", "<v {<a A>}> :- <p {<a A>}>@nowhere").unwrap();
        let q = parse_query("X :- X:<v {}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let stats = StatsCache::new();
        let srcs = sources();
        let options = PlannerOptions::default();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        assert!(matches!(
            plan(&program, &ctx),
            Err(MedError::UnknownSource(_))
        ));
    }
}
