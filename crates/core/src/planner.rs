//! The cost-based optimizer (§3.4–3.5).
//!
//! Turns each logical datamerge rule into a physical chain:
//!
//! * groups the tail's match items by source;
//! * orders the groups — by estimated cardinality when statistics are
//!   available, falling back to the paper's heuristic ("the outer patterns
//!   of the join order are the ones that have the greatest number of
//!   conditions");
//! * chooses, for every non-outer group, between a **parameterized query**
//!   (bind join, the plan of Figure 3.6) and a **fetch + hash join**;
//! * pushes every condition the source can evaluate; conditions a source
//!   *cannot* evaluate (capability restrictions, §3.5) are stripped from
//!   the source query and kept as client-side filters;
//! * places external-predicate calls at the earliest point where an
//!   implementation is callable (§2's adornments);
//! * appends duplicate elimination per MSL's semantics (footnote 9).

use crate::error::{MedError, Result};
use crate::externals::ExternalRegistry;
use crate::graph::{ExtractVar, Node, PhysicalPlan, RulePlan, VarKind};
use crate::logical::LogicalProgram;
use crate::stats::{condition_count, StatsCache};
use engine::subst::{subst_pattern, Subst};
use msl::{Head, PatValue, Pattern, RestSpec, Rule, SetElem, SetPattern, TailItem, Term};
use oem::{Symbol, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use wrappers::Wrapper;

/// Planner knobs (ablations + experiments).
#[derive(Clone, Debug)]
pub struct PlannerOptions {
    /// Push source-evaluable conditions into source queries (the "push
    /// selections down" optimization, §3.3). Disabling keeps every
    /// condition in the mediator — the ablation baseline.
    pub pushdown: bool,
    /// `Some(true)` forces bind joins, `Some(false)` forces hash joins,
    /// `None` decides by cost.
    pub prefer_bind_join: Option<bool>,
    /// Apply duplicate elimination (MSL semantics; the paper's original
    /// implementation omitted it, fn. 9).
    pub dedup: bool,
    /// Use statistics for join ordering; otherwise use only the
    /// most-conditions-first heuristic.
    pub use_stats: bool,
    /// Prune chains [`crate::analysis::SpecAnalysis::rule_infeasible`]
    /// proves empty (type-mismatched joins, unsatisfiable required
    /// conditions) instead of executing them. Requires
    /// [`PlanContext::analysis`]; pruning never changes answers, only
    /// skips provably-empty work.
    pub prune_infeasible: bool,
}

impl Default for PlannerOptions {
    fn default() -> PlannerOptions {
        PlannerOptions {
            pushdown: true,
            prefer_bind_join: None,
            dedup: true,
            use_stats: true,
            prune_infeasible: true,
        }
    }
}

/// Everything the planner consults.
pub struct PlanContext<'a> {
    /// The registered source wrappers, by name.
    pub sources: &'a HashMap<Symbol, Arc<dyn Wrapper>>,
    /// External predicate implementations (for placement feasibility).
    pub registry: &'a ExternalRegistry,
    /// Cardinality statistics (provided + learned, §3.5).
    pub stats: &'a StatsCache,
    /// Planner knobs.
    pub options: &'a PlannerOptions,
    /// The whole-spec analysis, when the mediator ran one — enables
    /// infeasible-chain pruning.
    pub analysis: Option<&'a crate::analysis::SpecAnalysis>,
}

/// Plan a whole logical program. When an analysis is available and
/// [`PlannerOptions::prune_infeasible`] is on, chains the analysis proves
/// empty are dropped up front (recorded in [`PhysicalPlan::pruned`]).
pub fn plan(program: &LogicalProgram, ctx: &PlanContext) -> Result<PhysicalPlan> {
    let mut rules = Vec::with_capacity(program.rules.len());
    let mut pruned = Vec::new();
    for rule in &program.rules {
        if ctx.options.prune_infeasible {
            if let Some(analysis) = ctx.analysis {
                if let Some(reason) = analysis.rule_infeasible(rule) {
                    pruned.push(reason);
                    continue;
                }
            }
        }
        rules.push(plan_rule(rule, ctx)?);
    }
    Ok(PhysicalPlan {
        rules,
        dedup_results: ctx.options.dedup,
        pruned,
    })
}

struct Group {
    source: Symbol,
    patterns: Vec<Pattern>,
    /// Required condition labels no pattern satisfies on its own — the
    /// planner must order this group after one that binds the condition
    /// variable and reach it by bind join ($param fills the condition).
    missing_required: Vec<Symbol>,
}

/// A condition stripped out of a source query, to be applied client-side.
enum ClientFilter {
    /// `var = value` on a freshly introduced retrieval variable.
    ValueEq { var: Symbol, value: Value },
    /// The object-set bound to `var` must contain a member matching the
    /// condition.
    Rest { var: Symbol, condition: Pattern },
}

fn plan_rule(rule: &Rule, ctx: &PlanContext) -> Result<RulePlan> {
    // ---- partition the tail --------------------------------------------
    let mut groups: Vec<Group> = Vec::new();
    let mut externals: Vec<(Symbol, Vec<Term>)> = Vec::new();
    for item in &rule.tail {
        match item {
            TailItem::Match { pattern, source } => {
                let Some(src) = source else {
                    return Err(MedError::Planning(
                        "datamerge rule has an unannotated match item".into(),
                    ));
                };
                if !ctx.sources.contains_key(src) {
                    return Err(MedError::UnknownSource(src.as_str()));
                }
                match groups.iter_mut().find(|g| g.source == *src) {
                    Some(g) => g.patterns.push(pattern.clone()),
                    None => groups.push(Group {
                        source: *src,
                        patterns: vec![pattern.clone()],
                        missing_required: Vec::new(),
                    }),
                }
            }
            TailItem::External { name, args } => externals.push((*name, args.clone())),
        }
    }

    // ---- capability handling / pushdown --------------------------------
    let mut fresh_counter = 0usize;
    let mut processed: Vec<(Group, Vec<ClientFilter>)> = Vec::new();
    for g in groups {
        let wrapper = &ctx.sources[&g.source];
        let caps = wrapper.capabilities();
        let mut filters: Vec<ClientFilter> = Vec::new();
        let patterns: Vec<Pattern> = g
            .patterns
            .iter()
            .map(|p| {
                strip_conditions(
                    p,
                    &|cond: &Pattern| {
                        if !ctx.options.pushdown {
                            return true; // ablation: strip everything
                        }
                        match &cond.label {
                            Term::Const(v) => v
                                .as_str_sym()
                                .is_some_and(|l| caps.unsupported_condition_labels.contains(&l)),
                            _ => false,
                        }
                    },
                    &mut fresh_counter,
                    &mut filters,
                )
            })
            .collect();
        // After stripping, the source must accept what remains. A missing
        // *required* condition is not fatal here: the planner can still
        // satisfy it by bind join (a `$param` fills the condition), so it
        // is recorded and resolved during join ordering instead.
        let mut missing_required: Vec<Symbol> = Vec::new();
        for p in &patterns {
            for v in caps.pattern_violations(p, true) {
                match v {
                    wrappers::CapViolation::MissingRequiredCondition { label } => {
                        if !missing_required.contains(&label) {
                            missing_required.push(label);
                        }
                    }
                    other => {
                        return Err(MedError::Planning(format!(
                            "source '{}': {other}",
                            g.source
                        )))
                    }
                }
            }
        }
        processed.push((
            Group {
                source: g.source,
                patterns,
                missing_required,
            },
            filters,
        ));
    }

    // ---- join order ------------------------------------------------------
    // Groups whose source demands a condition no pattern supplies must run
    // after a group that binds the condition variable, so they sort last.
    // Within each class: ascending estimated cardinality, with
    // most-conditions-first as the tie-breaker and as the whole story when
    // statistics are unavailable.
    processed.sort_by(|(a, _), (b, _)| {
        let class = a
            .missing_required
            .is_empty()
            .cmp(&b.missing_required.is_empty())
            .reverse();
        if class != std::cmp::Ordering::Equal {
            return class;
        }
        let pa: Vec<&Pattern> = a.patterns.iter().collect();
        let pb: Vec<&Pattern> = b.patterns.iter().collect();
        let conds_a = condition_count(&pa);
        let conds_b = condition_count(&pb);
        let (ka, kb) = (
            ctx.options.use_stats && ctx.stats.knows(a.source),
            ctx.options.use_stats && ctx.stats.knows(b.source),
        );
        // NaN estimates (degenerate statistics, e.g. 0.0/0.0 selectivity)
        // must not compare as Equal: that would make the join order depend
        // on input position. Unknown ⇒ last, same as a missing estimate,
        // keeping the ordering total and deterministic.
        let sanitize = |est: f64| if est.is_nan() { f64::MAX } else { est };
        let est_a = if ka {
            sanitize(ctx.stats.estimate_group(a.source, &pa))
        } else {
            f64::MAX
        };
        let est_b = if kb {
            sanitize(ctx.stats.estimate_group(b.source, &pb))
        } else {
            f64::MAX
        };
        est_a
            .partial_cmp(&est_b)
            .expect("estimates are NaN-free after sanitize")
            .then(conds_b.cmp(&conds_a))
    });

    // ---- variable bookkeeping -------------------------------------------
    // "Needed" variables must be extracted from source results: head vars,
    // external-predicate arguments, client-filter vars, and join/param vars
    // (shared between groups).
    let mut head_vars = Vec::new();
    rule.head.collect_vars(&mut head_vars);
    let mut needed: HashSet<Symbol> = head_vars.iter().copied().collect();
    for (_, args) in &externals {
        let mut vs = Vec::new();
        for a in args {
            a.collect_vars(&mut vs);
        }
        needed.extend(vs);
    }
    for (g, filters) in &processed {
        for f in filters {
            match f {
                ClientFilter::ValueEq { var, .. } => {
                    needed.insert(*var);
                }
                ClientFilter::Rest { var, .. } => {
                    needed.insert(*var);
                }
            }
        }
        let _ = g;
    }
    // Vars shared between groups are join/param variables → needed.
    {
        let mut seen_in: HashMap<Symbol, usize> = HashMap::new();
        for (g, _) in &processed {
            let mut vs = Vec::new();
            for p in &g.patterns {
                p.collect_vars(&mut vs);
            }
            let uniq: HashSet<Symbol> = vs.into_iter().collect();
            for v in uniq {
                *seen_in.entry(v).or_insert(0) += 1;
            }
        }
        for (v, n) in seen_in {
            if n > 1 {
                needed.insert(v);
            }
        }
    }

    // ---- build the chain ---------------------------------------------------
    // `estimates` stays parallel to `nodes`: every push into one is paired
    // with a push into the other, so EXPLAIN ANALYZE can line the cost
    // model's guess up against what actually flowed through each node.
    let mut nodes: Vec<Node> = Vec::new();
    let mut estimates: Vec<f64> = Vec::new();
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut placed_ext = vec![false; externals.len()];
    let mut running_est: f64 = 1.0;

    let place_externals = |nodes: &mut Vec<Node>,
                           estimates: &mut Vec<f64>,
                           cur_est: f64,
                           bound: &mut HashSet<Symbol>,
                           placed: &mut Vec<bool>,
                           ctx: &PlanContext| {
        loop {
            let mut progressed = false;
            for (i, (pred, args)) in externals.iter().enumerate() {
                if placed[i] || !callable_static(*pred, args, bound, ctx.registry) {
                    continue;
                }
                let mut vs = Vec::new();
                for a in args {
                    a.collect_vars(&mut vs);
                }
                let new_vars: Vec<Symbol> = vs.into_iter().filter(|v| !bound.contains(v)).collect();
                bound.extend(new_vars.iter().copied());
                nodes.push(Node::ExternalPred {
                    pred: *pred,
                    args: args.clone(),
                    new_vars,
                });
                estimates.push(cur_est);
                placed[i] = true;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    };

    for (gi, (group, filters)) in processed.iter().enumerate() {
        let wrapper = &ctx.sources[&group.source];
        let caps = wrapper.capabilities();

        // Variables of this group.
        let mut gvars = Vec::new();
        for p in &group.patterns {
            p.collect_vars(&mut gvars);
        }
        let gvars_set: HashSet<Symbol> = gvars.iter().copied().collect();
        let obj_vars = object_vars(&group.patterns);

        // Parameterizable vars: already bound, occur in term positions.
        let param_vars: Vec<Symbol> = if gi == 0 {
            Vec::new()
        } else {
            term_position_vars(&group.patterns)
                .into_iter()
                .filter(|v| bound.contains(v))
                .collect()
        };

        // Extraction: group vars that are needed downstream and not already
        // bound (params are in the table).
        let extract: Vec<ExtractVar> = gvars_set
            .iter()
            .filter(|v| needed.contains(v) && !bound.contains(v))
            .map(|v| ExtractVar {
                var: *v,
                kind: if obj_vars.contains(v) {
                    VarKind::Object
                } else {
                    VarKind::Scalar
                },
            })
            .collect();
        let mut extract = extract;
        extract.sort_by_key(|e| e.var.as_str());

        let est = if ctx.options.use_stats && ctx.stats.knows(group.source) {
            let pr: Vec<&Pattern> = group.patterns.iter().collect();
            ctx.stats.estimate_group(group.source, &pr)
        } else {
            crate::stats::StatsCache::new()
                .estimate_group(group.source, &group.patterns.iter().collect::<Vec<_>>())
        };

        // A group with unmet required conditions (a form-based source's
        // mandatory field) is only evaluable as a bind join whose `$param`
        // slots fill those conditions — verify the params cover them.
        let forced_bind = !group.missing_required.is_empty();
        if forced_bind {
            let fillable = caps.parameterized
                && group.missing_required.iter().all(|&label| {
                    group.patterns.iter().any(|p| {
                        let PatValue::Set(sp) = &p.value else {
                            return false;
                        };
                        sp.elements.iter().any(|e| match e {
                            SetElem::Pattern(c) | SetElem::Wildcard(c) => {
                                matches!(&c.label, Term::Const(v)
                                    if v.as_str_sym() == Some(label))
                                    && matches!(&c.value, PatValue::Term(Term::Var(v))
                                        if param_vars.contains(v))
                            }
                            SetElem::Var(_) => false,
                        })
                    })
                });
            if !fillable {
                return Err(MedError::Planning(format!(
                    "source '{}' requires a bound condition on '{}', and no \
                     evaluation order can supply one",
                    group.source, group.missing_required[0]
                )));
            }
        }

        if gi == 0 {
            let query = build_source_query(group.source, &group.patterns, &extract, &[]);
            nodes.push(Node::Query {
                source: group.source,
                query,
                vars: extract.clone(),
            });
            running_est = est;
        } else {
            let use_bind = forced_bind
                || !param_vars.is_empty()
                    && caps.parameterized
                    && match ctx.options.prefer_bind_join {
                        Some(b) => b,
                        // Bind join sends one source query per outer tuple. If
                        // the source answers parameterized lookups cheaply
                        // (indexed), compare cardinalities; if every call is a
                        // scan, bind joins only pay off for tiny outers (the
                        // per-call cost signal of §3.5).
                        None => {
                            if caps.parameterized_cheap {
                                running_est <= est
                            } else {
                                running_est <= 8.0
                            }
                        }
                    };
            if use_bind {
                let query =
                    build_source_query(group.source, &group.patterns, &extract, &param_vars);
                nodes.push(Node::ParamQuery {
                    source: group.source,
                    query,
                    params: param_vars.clone(),
                    vars: extract.clone(),
                });
            } else {
                // Fetch the group and hash-join on the shared bound vars.
                let join_vars: Vec<Symbol> = {
                    let mut jv: Vec<Symbol> = gvars_set
                        .iter()
                        .filter(|v| bound.contains(v))
                        .copied()
                        .collect();
                    jv.sort_by_key(|v| v.as_str());
                    jv
                };
                // Inner extraction must include the join vars.
                let mut inner_extract = extract.clone();
                for v in &join_vars {
                    if !inner_extract.iter().any(|e| e.var == *v) {
                        inner_extract.push(ExtractVar {
                            var: *v,
                            kind: if obj_vars.contains(v) {
                                VarKind::Object
                            } else {
                                VarKind::Scalar
                            },
                        });
                    }
                }
                inner_extract.sort_by_key(|e| e.var.as_str());
                let query = build_source_query(group.source, &group.patterns, &inner_extract, &[]);
                nodes.push(Node::HashJoin {
                    source: group.source,
                    query,
                    vars: inner_extract,
                    join_vars,
                });
            }
            running_est = running_est.min(est).max(1.0);
        }
        estimates.push(running_est);
        bound.extend(extract.iter().map(|e| e.var));
        bound.extend(param_vars.iter().copied());

        // Client-side filters for what the source could not evaluate.
        for f in filters {
            match f {
                ClientFilter::ValueEq { var, value } => nodes.push(Node::ExternalPred {
                    pred: Symbol::intern("eq"),
                    args: vec![Term::Var(*var), Term::Const(value.clone())],
                    new_vars: Vec::new(),
                }),
                ClientFilter::Rest { var, condition } => nodes.push(Node::RestFilter {
                    var: *var,
                    condition: condition.clone(),
                }),
            }
            estimates.push(running_est);
        }

        place_externals(
            &mut nodes,
            &mut estimates,
            running_est,
            &mut bound,
            &mut placed_ext,
            ctx,
        );
    }

    // Last chance for stragglers (e.g. all-bound checks).
    place_externals(
        &mut nodes,
        &mut estimates,
        running_est,
        &mut bound,
        &mut placed_ext,
        ctx,
    );
    if let Some(i) = placed_ext.iter().position(|p| !p) {
        return Err(MedError::Planning(format!(
            "external predicate {} is not callable in any placement \
             (no implementation matches the available bindings)",
            externals[i].0
        )));
    }

    if ctx.options.dedup {
        let mut hv = Vec::new();
        rule.head.collect_vars(&mut hv);
        let mut seen = HashSet::new();
        hv.retain(|v| seen.insert(*v));
        nodes.push(Node::DupElim { vars: hv });
        estimates.push(running_est);
    }

    Ok(RulePlan {
        nodes,
        estimates,
        head: rule.head.clone(),
    })
}

/// Is the external predicate callable given the statically-known bound
/// variables?
fn callable_static(
    pred: Symbol,
    args: &[Term],
    bound: &HashSet<Symbol>,
    registry: &ExternalRegistry,
) -> bool {
    let arg_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
        _ => false,
    };
    if crate::externals::is_builtin(pred) {
        let n = args.iter().filter(|t| arg_bound(t)).count();
        return n == args.len() || (pred == Symbol::intern("eq") && n + 1 == args.len());
    }
    registry.impls_for(pred).iter().any(|imp| {
        imp.adornment.len() == args.len()
            && imp
                .adornment
                .iter()
                .zip(args)
                .all(|(a, t)| *a == msl::Adornment::Free || arg_bound(t))
    })
}

/// Object variables appearing anywhere in the patterns.
fn object_vars(patterns: &[Pattern]) -> HashSet<Symbol> {
    fn walk(p: &Pattern, out: &mut HashSet<Symbol>) {
        if let Some(v) = p.obj_var {
            out.insert(v);
        }
        if let PatValue::Set(sp) = &p.value {
            for e in &sp.elements {
                if let SetElem::Pattern(q) | SetElem::Wildcard(q) = e {
                    walk(q, out);
                }
            }
            if let Some(r) = &sp.rest {
                for c in &r.conditions {
                    walk(c, out);
                }
            }
        }
    }
    let mut out = HashSet::new();
    for p in patterns {
        walk(p, &mut out);
    }
    out
}

/// Variables in *term* positions (oid/label/type/value slots) — the ones a
/// parameterized query can substitute.
fn term_position_vars(patterns: &[Pattern]) -> Vec<Symbol> {
    fn walk(p: &Pattern, out: &mut Vec<Symbol>) {
        for t in [Some(&p.label), p.oid.as_ref(), p.typ.as_ref()]
            .into_iter()
            .flatten()
        {
            t.collect_vars(out);
        }
        match &p.value {
            PatValue::Term(t) => t.collect_vars(out),
            PatValue::Set(sp) => {
                for e in &sp.elements {
                    if let SetElem::Pattern(q) | SetElem::Wildcard(q) = e {
                        walk(q, out);
                    }
                }
                if let Some(r) = &sp.rest {
                    for c in &r.conditions {
                        walk(c, out);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for p in patterns {
        walk(p, &mut out);
    }
    let mut seen = HashSet::new();
    out.retain(|v| seen.insert(*v));
    out
}

/// Build the bind_for-style source query: head
/// `<bind_for_<src> { <bind_for_V V> ... }>`, tail = the group's patterns,
/// with `params` turned into `$param` slots (§3.4's Qw/Qcs shapes).
fn build_source_query(
    source: Symbol,
    patterns: &[Pattern],
    extract: &[ExtractVar],
    params: &[Symbol],
) -> Rule {
    let mut elements: Vec<SetElem> = Vec::new();
    for e in extract {
        let carrier = Symbol::intern(&format!("bind_for_{}", e.var));
        let inner = match e.kind {
            VarKind::Scalar => Pattern::lv(
                Term::Const(Value::Str(carrier)),
                PatValue::Term(Term::Var(e.var)),
            ),
            VarKind::Object => Pattern::lv(
                Term::Const(Value::Str(carrier)),
                PatValue::Set(SetPattern {
                    elements: vec![SetElem::Var(e.var)],
                    rest: None,
                }),
            ),
        };
        elements.push(SetElem::Pattern(inner));
    }
    let head = Head::Pattern(Pattern::lv(
        Term::Const(Value::Str(Symbol::intern(&format!("bind_for_{source}")))),
        PatValue::Set(SetPattern {
            elements,
            rest: None,
        }),
    ));

    // Parameterize: replace bound vars with $param slots.
    let subst: Subst = params.iter().map(|v| (*v, Term::Param(*v))).collect();
    let tail = patterns
        .iter()
        .map(|p| TailItem::Match {
            pattern: subst_pattern(p, &subst),
            source: Some(source),
        })
        .collect();
    Rule { head, tail }
}

/// Strip conditions selected by `should_strip` out of a pattern, emitting
/// client-side filters. Constant-valued subpatterns become
/// variable-valued retrievals plus an equality filter; rest-variable
/// conditions move to [`ClientFilter::Rest`].
fn strip_conditions(
    p: &Pattern,
    should_strip: &dyn Fn(&Pattern) -> bool,
    fresh: &mut usize,
    filters: &mut Vec<ClientFilter>,
) -> Pattern {
    let value = match &p.value {
        PatValue::Term(t) => PatValue::Term(t.clone()),
        PatValue::Set(sp) => {
            let mut elements = Vec::with_capacity(sp.elements.len());
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(q) => {
                        let mut q2 = strip_conditions(q, should_strip, fresh, filters);
                        if matches!(&q2.value, PatValue::Term(Term::Const(_))) && should_strip(&q2)
                        {
                            if let PatValue::Term(Term::Const(v)) = q2.value.clone() {
                                *fresh += 1;
                                let var = Symbol::intern(&format!("StripV{fresh}"));
                                q2.value = PatValue::Term(Term::Var(var));
                                filters.push(ClientFilter::ValueEq { var, value: v });
                            }
                        }
                        elements.push(SetElem::Pattern(q2));
                    }
                    SetElem::Wildcard(q) => {
                        elements.push(SetElem::Wildcard(q.clone()));
                    }
                    SetElem::Var(v) => elements.push(SetElem::Var(*v)),
                }
            }
            let rest = sp.rest.as_ref().map(|r| {
                let mut kept = Vec::new();
                for c in &r.conditions {
                    if should_strip(c) {
                        filters.push(ClientFilter::Rest {
                            var: r.var,
                            condition: c.clone(),
                        });
                    } else {
                        kept.push(c.clone());
                    }
                }
                RestSpec {
                    var: r.var,
                    conditions: kept,
                }
            });
            PatValue::Set(SetPattern { elements, rest })
        }
    };
    Pattern {
        obj_var: p.obj_var,
        oid: p.oid.clone(),
        label: p.label.clone(),
        typ: p.typ.clone(),
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::externals::standard_registry;
    use crate::spec::MediatorSpec;
    use crate::veao::expand;
    use engine::unify::UnifyMode;
    use msl::parse_query;
    use oem::sym;
    use wrappers::scenario::{cs_wrapper, whois_wrapper, MS1};
    use wrappers::Capabilities;

    fn sources() -> HashMap<Symbol, Arc<dyn Wrapper>> {
        let mut m: HashMap<Symbol, Arc<dyn Wrapper>> = HashMap::new();
        m.insert(sym("whois"), Arc::new(whois_wrapper()));
        m.insert(sym("cs"), Arc::new(cs_wrapper()));
        m
    }

    fn plan_query(query: &str, options: PlannerOptions) -> PhysicalPlan {
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query(query).unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let stats = StatsCache::new();
        let srcs = sources();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        plan(&program, &ctx).unwrap()
    }

    #[test]
    fn q1_plan_matches_figure_3_6_shape() {
        // Query → ExternalPred(decomp) → ParamQuery → DupElim, plus the
        // constructor held in RulePlan::head. (Figure 3.6 splits query and
        // extractor; our Query node fuses them.)
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions::default(),
        );
        assert_eq!(plan.rules.len(), 1);
        let ops: Vec<&str> = plan.rules[0].nodes.iter().map(|n| n.op_name()).collect();
        assert_eq!(
            ops,
            vec!["query", "external pred", "parameterized query", "dup elim"],
            "{ops:?}"
        );
        // The outer query goes to whois (3 conditions vs cs's 0, and no
        // decomp inputs are available before whois runs).
        let Node::Query { source, query, .. } = &plan.rules[0].nodes[0] else {
            panic!()
        };
        assert_eq!(*source, sym("whois"));
        let qtext = msl::printer::rule(query);
        assert!(qtext.contains("bind_for_whois"), "{qtext}");
        assert!(qtext.contains("<dept 'CS'>"), "{qtext}");

        // The parameterized query carries $ slots for R, LN, FN.
        let Node::ParamQuery {
            source,
            params,
            query,
            ..
        } = &plan.rules[0].nodes[2]
        else {
            panic!()
        };
        assert_eq!(*source, sym("cs"));
        let qtext = msl::printer::rule(query);
        let mut ps: Vec<String> = params.iter().map(|p| p.as_str()).collect();
        ps.sort();
        assert_eq!(ps.len(), 3, "{ps:?} in {qtext}");
        assert!(qtext.contains("$"), "{qtext}");
    }

    #[test]
    fn nan_producing_stats_keep_join_order_deterministic() {
        // A wrapper computing selectivity as 0.0/0.0 hands the optimizer a
        // NaN. The join-order comparator must stay total (NaN ⇒ f64::MAX,
        // unknown sorts last) — planning must neither panic nor depend on
        // the input position of the groups.
        use wrappers::SourceStats;
        let mut stats = StatsCache::new();
        for src in ["whois", "cs"] {
            stats.provide(
                sym(src),
                SourceStats {
                    top_level_count: 5,
                    label_counts: [(sym("person"), 5), (sym("R"), 5)].into_iter().collect(),
                    eq_selectivity: [
                        (sym("name"), f64::NAN),
                        (sym("dept"), f64::NAN),
                        (sym("relation"), f64::NAN),
                    ]
                    .into_iter()
                    .collect(),
                },
            );
        }
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let srcs = sources();
        let options = PlannerOptions::default();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        let order = |p: &PhysicalPlan| -> Vec<String> {
            p.rules[0]
                .nodes
                .iter()
                .filter_map(|n| match n {
                    Node::Query { source, .. }
                    | Node::ParamQuery { source, .. }
                    | Node::HashJoin { source, .. } => Some(source.as_str()),
                    _ => None,
                })
                .collect()
        };
        let first = order(&plan(&program, &ctx).unwrap());
        for _ in 0..10 {
            assert_eq!(order(&plan(&program, &ctx).unwrap()), first);
        }
    }

    #[test]
    fn forced_hash_join() {
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions {
                prefer_bind_join: Some(false),
                ..Default::default()
            },
        );
        let ops: Vec<&str> = plan.rules[0].nodes.iter().map(|n| n.op_name()).collect();
        assert!(ops.contains(&"hash join"), "{ops:?}");
        assert!(!ops.contains(&"parameterized query"), "{ops:?}");
    }

    #[test]
    fn dedup_omitted_when_disabled() {
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions {
                dedup: false,
                ..Default::default()
            },
        );
        let ops: Vec<&str> = plan.rules[0].nodes.iter().map(|n| n.op_name()).collect();
        assert!(!ops.contains(&"dup elim"));
        assert!(!plan.dedup_results);
    }

    #[test]
    fn pushdown_ablation_strips_conditions() {
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions {
                pushdown: false,
                ..Default::default()
            },
        );
        let nodes = &plan.rules[0].nodes;
        // The whois query must no longer contain the 'CS' constant...
        let Node::Query { query, .. } = &nodes[0] else {
            panic!()
        };
        let qtext = msl::printer::rule(query);
        assert!(!qtext.contains("'CS'"), "{qtext}");
        // ...and eq-filters appear client-side.
        let eq_filters = nodes
            .iter()
            .filter(|n| matches!(n, Node::ExternalPred { pred, .. } if *pred == sym("eq")))
            .count();
        assert!(eq_filters >= 2, "expected stripped filters, got {nodes:?}");
    }

    #[test]
    fn capability_restriction_inserts_rest_filter() {
        // whois cannot evaluate 'year' conditions: the Q3-style rule keeps
        // <year 3> in the mediator as a RestFilter.
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query("S :- S:<cs_person {<year 3>}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let stats = StatsCache::new();
        let mut srcs: HashMap<Symbol, Arc<dyn Wrapper>> = HashMap::new();
        srcs.insert(
            sym("whois"),
            Arc::new(
                whois_wrapper()
                    .with_capabilities(Capabilities::full().without_condition_on(sym("year"))),
            ),
        );
        srcs.insert(sym("cs"), Arc::new(cs_wrapper()));
        let options = PlannerOptions::default();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        let plan = plan(&program, &ctx).unwrap();
        // One of the two rules (the push-into-Rest1 one) gets a RestFilter.
        let has_rest_filter = plan.rules.iter().flat_map(|r| &r.nodes).any(
            |n| matches!(n, Node::RestFilter { var, .. } if var.as_str().starts_with("Rest1")),
        );
        assert!(has_rest_filter, "{plan:?}");
        // And the whois query no longer carries the year condition.
        for r in &plan.rules {
            for n in &r.nodes {
                if let Node::Query { source, query, .. } = n {
                    if *source == sym("whois") {
                        assert!(!msl::printer::rule(query).contains("<year 3>"));
                    }
                }
            }
        }
    }

    #[test]
    fn scan_based_inner_prefers_hash_join() {
        // With statistics, cs (80 rows) orders before whois (2000). whois
        // answers parameterized queries by scanning, so the planner must
        // choose a hash join rather than 80 per-tuple scans. (With a tiny
        // outer — a handful of tuples — bind joins remain worthwhile even
        // into scan-based sources; the threshold is in plan_rule.)
        let med = MediatorSpec::parse("med", MS1).unwrap();
        let q = parse_query("P :- P:<cs_person {}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let mut stats = StatsCache::new();
        // Provide stats for both sources so ordering is cardinality-based.
        stats.provide(
            sym("cs"),
            wrappers::SourceStats {
                top_level_count: 80,
                label_counts: Default::default(),
                eq_selectivity: Default::default(),
            },
        );
        stats.provide(
            sym("whois"),
            wrappers::SourceStats {
                top_level_count: 2000,
                label_counts: [(sym("person"), 2000)].into_iter().collect(),
                eq_selectivity: Default::default(),
            },
        );
        let srcs = sources();
        let options = PlannerOptions::default();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        let plan = plan(&program, &ctx).unwrap();
        let nodes = &plan.rules[0].nodes;
        let Node::Query { source, .. } = &nodes[0] else {
            panic!("expected a query first, got {nodes:?}")
        };
        assert_eq!(*source, sym("cs"), "small side goes outer");
        let whois_hash_joined = nodes
            .iter()
            .any(|n| matches!(n, Node::HashJoin { source, .. } if *source == sym("whois")));
        assert!(
            whois_hash_joined,
            "scan-based whois must be hash-joined, not bind-joined: {nodes:?}"
        );
    }

    #[test]
    fn indexed_inner_prefers_bind_join() {
        // The reverse shape: whois outer (selective conditions), cs inner.
        // cs answers parameterized lookups via indexes → bind join.
        let plan = plan_query(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
            PlannerOptions::default(),
        );
        let nodes = &plan.rules[0].nodes;
        assert!(
            nodes.iter().any(|n| matches!(
                n,
                Node::ParamQuery { source, .. } if *source == sym("cs")
            )),
            "{nodes:?}"
        );
    }

    #[test]
    fn unknown_source_is_an_error() {
        let med = MediatorSpec::parse("med", "<v {<a A>}> :- <p {<a A>}>@nowhere").unwrap();
        let q = parse_query("X :- X:<v {}>@med").unwrap();
        let program = expand(&q, &med, UnifyMode::Minimal).unwrap();
        let registry = standard_registry();
        let stats = StatsCache::new();
        let srcs = sources();
        let options = PlannerOptions::default();
        let ctx = PlanContext {
            sources: &srcs,
            registry: &registry,
            stats: &stats,
            options: &options,
            analysis: None,
        };
        assert!(matches!(
            plan(&program, &ctx),
            Err(MedError::UnknownSource(_))
        ));
    }
}
