//! The mediator runtime — the full MSI pipeline behind one `query()` call
//! (Figure 2.5).
//!
//! A [`Mediator`] also implements [`wrappers::Wrapper`], so mediators can
//! serve as sources of other mediators — stacking exactly as in the
//! TSIMMIS architecture of Figure 1.1.

use crate::cache::{AnswerCache, CacheCounters, CacheOptions, ParamMemo, SourceDelta};
use crate::error::{MedError, Result};
use crate::exec::{execute, ExecOptions, ExecOutcome};
use crate::externals::ExternalRegistry;
use crate::logical::LogicalProgram;
use crate::planner::{plan, PlanContext, PlannerOptions};
use crate::recursion::materialize_fixpoint;
use crate::spec::MediatorSpec;
use crate::stats::{SharedStats, StatsCache};
use crate::veao::expand;
use engine::unify::UnifyMode;
use msl::Rule;
use oem::{ObjectStore, Symbol};
use std::collections::HashMap;
use std::sync::Arc;
use wrappers::{Capabilities, SourceStats, Wrapper, WrapperError};

/// Mediator-level options.
#[derive(Clone, Debug)]
pub struct MediatorOptions {
    /// Options forwarded to the cost-based optimizer.
    pub planner: PlannerOptions,
    /// Unifier enumeration mode. `Exhaustive` (default) is complete;
    /// `Minimal` reproduces the paper's worked expansions.
    pub unify_mode: UnifyMode,
    /// Evaluate recursive specifications by fixpoint materialization.
    pub allow_recursion: bool,
    /// Record per-node execution traces (explain).
    pub trace: bool,
    /// Execute independent rule chains on separate threads.
    pub parallel: bool,
    /// Learn statistics from observed query results (§3.5).
    pub learn_stats: bool,
    /// Fault policy applied to every source call: retries, deadlines,
    /// circuit breaking, and Fail/Partial degradation.
    pub fault: crate::retry::FaultOptions,
    /// Source-answer cache configuration. Disabled by default: without
    /// `--cache` every query pays its round-trips, exactly as before the
    /// cache existed.
    pub cache: CacheOptions,
    /// Run the whole-spec dataflow analysis ([`crate::analysis`]) at
    /// construction. Error-level findings (`E301`/`E302`) reject the
    /// specification like lint errors; warnings join
    /// [`Mediator::lint_warnings`], and the result feeds the planner's
    /// infeasible-chain pruning. On by default.
    pub analysis: bool,
    /// Execute chains as pull-based pipelines of bounded binding batches
    /// ([`ExecOptions::streaming`]). Defaults to the `streaming` cargo
    /// feature's presence; turn off to use the materializing oracle path.
    pub streaming: bool,
    /// Rows per streamed batch ([`ExecOptions::batch_size`]).
    pub batch_size: usize,
}

/// Per-query resource limits, applied on top of a mediator's standing
/// [`MediatorOptions`] by [`Mediator::query_rule_with`]. `None` fields
/// inherit the mediator's configuration. The serving layer uses these to
/// cap what any single request may cost a shared mediator; see
/// DESIGN.md §10.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Per-source-call deadline in milliseconds, mapped onto
    /// [`crate::retry::FaultOptions::source_deadline_ms`] for this query
    /// only. When the mediator already has a standing deadline, the
    /// tighter of the two applies. This bounds each source round-trip,
    /// not the whole query: a query of `k` source calls can take up to
    /// `k × deadline_ms` before its slowest call trips.
    pub deadline_ms: Option<u64>,
    /// Cap on top-level answer objects returned to the client. Enforced
    /// where answers are rendered (the server truncates the printed
    /// answer and marks it truncated) — execution itself is not cut
    /// short, so a capped answer is a prefix of the full one. Carried
    /// here so the cap participates in coalescing identity.
    pub max_rows: Option<usize>,
    /// Rows per streamed batch for this query only
    /// ([`ExecOptions::batch_size`]); bounds the query's peak resident
    /// rows under streaming execution.
    pub batch_size: Option<usize>,
}

impl QueryLimits {
    /// A stable fingerprint of the limit set, appended to the canonical
    /// query key ([`crate::cache::canonical_key`]) when coalescing
    /// in-flight requests: two textually-identical queries carrying
    /// different limits must not share one execution.
    pub fn fingerprint(&self) -> String {
        format!(
            "d={:?};r={:?};b={:?}",
            self.deadline_ms, self.max_rows, self.batch_size
        )
    }
}

impl Default for MediatorOptions {
    fn default() -> MediatorOptions {
        MediatorOptions {
            planner: PlannerOptions::default(),
            unify_mode: UnifyMode::Exhaustive,
            allow_recursion: true,
            trace: false,
            parallel: false,
            learn_stats: true,
            fault: crate::retry::FaultOptions::default(),
            cache: CacheOptions::default(),
            analysis: true,
            streaming: ExecOptions::default().streaming,
            batch_size: ExecOptions::default().batch_size,
        }
    }
}

/// A declaratively-specified mediator.
///
/// ```
/// use medmaker::Mediator;
/// use std::sync::Arc;
/// use wrappers::scenario::{cs_wrapper, whois_wrapper, MS1};
///
/// let med = Mediator::new(
///     "med",
///     MS1,
///     vec![Arc::new(whois_wrapper()), Arc::new(cs_wrapper())],
///     medmaker::externals::standard_registry(),
/// ).unwrap();
/// let results = med
///     .query_text("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
///     .unwrap();
/// assert_eq!(results.top_level().len(), 1);
/// ```
pub struct Mediator {
    spec: MediatorSpec,
    sources: HashMap<Symbol, Arc<dyn Wrapper>>,
    registry: ExternalRegistry,
    options: MediatorOptions,
    stats: Arc<SharedStats>,
    caps: Capabilities,
    lint_warnings: Vec<msl::Diagnostic>,
    /// Whole-spec analysis result ([`crate::analysis`]), computed at
    /// construction when [`MediatorOptions::analysis`] is on. The planner
    /// consults it to prune provably-empty chains.
    analysis: Option<crate::analysis::SpecAnalysis>,
    /// The source-answer cache. Persists across queries (that is the
    /// point); rebuilt by [`Mediator::with_options`] so a reconfigured
    /// cache starts cold.
    cache: Arc<AnswerCache>,
    /// Cross-query memo for parameterized source calls (bind joins).
    /// Handed to the executor only while the cache is enabled — with the
    /// cache off, every execution falls back to its own ephemeral memo
    /// and repeated queries pay their round-trips exactly as before.
    /// Follows the cache's TTL and failed-source embargo; cleared by
    /// [`Mediator::invalidate_source`] and rebuilt (cold) by
    /// [`Mediator::with_options`].
    param_memo: Arc<ParamMemo>,
}

impl Mediator {
    /// Build a mediator from a specification text, sources and an external
    /// function registry.
    pub fn new(
        name: &str,
        spec_text: &str,
        sources: Vec<Arc<dyn Wrapper>>,
        registry: ExternalRegistry,
    ) -> Result<Mediator> {
        Mediator::new_with_options(
            name,
            spec_text,
            sources,
            registry,
            MediatorOptions::default(),
        )
    }

    /// Like [`Mediator::new`], but with an explicit option set — in
    /// particular [`MediatorOptions::analysis`], which must be decided
    /// before construction because the analysis runs (and can reject the
    /// specification) while the mediator is built.
    pub fn new_with_options(
        name: &str,
        spec_text: &str,
        sources: Vec<Arc<dyn Wrapper>>,
        registry: ExternalRegistry,
        options: MediatorOptions,
    ) -> Result<Mediator> {
        let spec = MediatorSpec::parse(name, spec_text)?;
        spec.check_registry(&registry)?;
        let mut map = HashMap::new();
        for s in sources {
            map.insert(s.name(), s);
        }
        // Every referenced source must be present, except the mediator
        // itself (recursive specifications).
        for s in spec.sources() {
            if s != spec.name && !map.contains_key(&s) {
                return Err(MedError::UnknownSource(s.as_str()));
            }
        }
        // speclint (§3.4, §3.5): every static-analysis pass, including the
        // capability checks against the registered sources' declarations.
        // Error-level findings mean some rule can never be answered —
        // reject the specification outright; warnings are kept and exposed
        // through [`Mediator::lint_warnings`].
        let caps_by_source: std::collections::BTreeMap<Symbol, Capabilities> = map
            .iter()
            .map(|(n, w)| (*n, w.capabilities().clone()))
            .collect();
        let (_, mut diags) = crate::lint::lint_text(spec_text, name, &caps_by_source)?;
        if diags.iter().any(|d| d.is_error()) {
            diags.retain(|d| d.is_error());
            return Err(MedError::Lint(diags));
        }
        let mut lint_warnings = diags;
        // specflow (the whole-spec dataflow analysis): interprocedural type
        // inference and answerability over the view dependency graph.
        // Error-level findings mean a provably-empty join (`E301`) or a
        // statically unanswerable view (`E302`) — rejected like lint
        // errors; warnings join the lint warnings.
        let analysis = if options.analysis {
            let (parsed, spans) = msl::parse_spec_spanned(spec_text)?;
            let infos: std::collections::BTreeMap<Symbol, crate::analysis::SourceInfo> = map
                .iter()
                .map(|(n, w)| (*n, crate::analysis::SourceInfo::of_wrapper(w.as_ref())))
                .collect();
            let (analysis, mut adiags) =
                crate::analysis::analyze_spec(&parsed, &spans, spec.name, &infos);
            if adiags.iter().any(|d| d.is_error()) {
                adiags.retain(|d| d.is_error());
                msl::diag::sort(&mut adiags);
                return Err(MedError::Lint(adiags));
            }
            lint_warnings.append(&mut adiags);
            msl::diag::sort(&mut lint_warnings);
            Some(analysis)
        } else {
            None
        };
        // Seed the statistics cache with whatever the wrappers offer.
        let mut stats = StatsCache::new();
        for (name, w) in &map {
            if let Some(s) = w.stats() {
                stats.provide(*name, s);
            }
        }
        // What this mediator supports as a *source*: full MSL matching on
        // virtual objects except wildcards (any-depth search cannot be
        // pushed through view expansion soundly — see veao docs).
        let mut caps = Capabilities::full();
        caps.wildcards = false;
        let stats = Arc::new(SharedStats::new(stats));
        let cache = Arc::new(AnswerCache::with_stats(
            options.cache.clone(),
            Some(Arc::clone(&stats)),
        ));
        let param_memo = Arc::new(ParamMemo::shared(&options.cache));
        Ok(Mediator {
            spec,
            sources: map,
            registry,
            options,
            stats,
            caps,
            lint_warnings,
            analysis,
            cache,
            param_memo,
        })
    }

    /// Warning-level speclint findings recorded while building the
    /// mediator (capability compensations, redundant rules, unused
    /// variables, ...). Error-level findings reject construction with
    /// [`MedError::Lint`].
    pub fn lint_warnings(&self) -> &[msl::Diagnostic] {
        &self.lint_warnings
    }

    /// Replace the option set. The answer cache and the cross-query
    /// parameterized-call memo are rebuilt from the new
    /// [`MediatorOptions::cache`] configuration, starting cold.
    pub fn with_options(mut self, options: MediatorOptions) -> Mediator {
        self.cache = Arc::new(AnswerCache::with_stats(
            options.cache.clone(),
            Some(Arc::clone(&self.stats)),
        ));
        self.param_memo = Arc::new(ParamMemo::shared(&options.cache));
        if !options.analysis {
            // The analysis can only be *disabled* after construction: it
            // runs while the mediator is built (use
            // [`Mediator::new_with_options`] to skip it up front).
            self.analysis = None;
        }
        self.options = options;
        self
    }

    /// The whole-spec analysis result, when [`MediatorOptions::analysis`]
    /// is on (the default).
    pub fn analysis(&self) -> Option<&crate::analysis::SpecAnalysis> {
        self.analysis.as_ref()
    }

    /// Drop every cached source answer for `source` — the explicit
    /// invalidation hook for when a source is known to have changed.
    /// Clears both the answer cache (hot and warm tiers) and the
    /// cross-query parameterized memo, so the next query pays fresh
    /// round-trips to that source. Returns the number of distinct
    /// cached answers dropped.
    pub fn invalidate_source(&self, source: Symbol) -> usize {
        let n = self.cache.invalidate_source(source);
        self.param_memo.invalidate_source(source);
        n
    }

    /// Apply a scoped change report from a wrapper: only cache entries
    /// whose query could have observed the changed objects are dropped
    /// (see [`SourceDelta`] for the matching rules; an unscoped delta is
    /// whole-source invalidation). The parameterized-call memo has no
    /// per-key scoping — its keys are parameter tuples, not canonical
    /// queries — so any delta purges it whole-source. Returns the number
    /// of distinct cached answers dropped.
    pub fn apply_delta(&self, delta: &SourceDelta) -> usize {
        let n = self.cache.apply_delta(delta);
        self.param_memo.invalidate_source(delta.source);
        n
    }

    /// Snapshot of the answer cache's lifetime counters (hits, misses,
    /// evictions, bytes). All zeros while the cache is disabled.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// The cache handle handed to the executor: `Some` only when caching
    /// is enabled, so a disabled cache stays entirely off the query path.
    fn exec_cache(&self) -> Option<Arc<AnswerCache>> {
        if self.options.cache.enabled {
            Some(Arc::clone(&self.cache))
        } else {
            None
        }
    }

    /// The cross-query memo handed to the executor: `Some` only when the
    /// cache is enabled. With the cache off the executor uses a
    /// per-execution ephemeral memo, preserving exact seed behavior.
    fn exec_param_memo(&self) -> Option<Arc<ParamMemo>> {
        if self.options.cache.enabled {
            Some(Arc::clone(&self.param_memo))
        } else {
            None
        }
    }

    /// Entries currently held by the cross-query parameterized-call
    /// memo. Process-wide, like [`Mediator::cache_counters`].
    pub fn param_memo_len(&self) -> usize {
        self.param_memo.len()
    }

    /// Lifetime count of statistics observations folded into the learned
    /// EWMA tables (§3.5), across every query this mediator has served.
    /// One executed query can contribute several per-source
    /// observations; cache hits contribute none. Serves `/metrics`.
    pub fn stats_observations(&self) -> u64 {
        self.stats.observations()
    }

    /// The mediator's specification.
    pub fn spec(&self) -> &MediatorSpec {
        &self.spec
    }

    /// Run an MSL query (text form) through the full pipeline.
    pub fn query_text(&self, text: &str) -> Result<ObjectStore> {
        let rule = msl::parse_query(text)?;
        self.query_rule(&rule).map(|o| o.results)
    }

    /// Run a parsed query, returning the full execution outcome (results,
    /// traces, observations).
    pub fn query_rule(&self, query: &Rule) -> Result<ExecOutcome> {
        self.query_rule_with(query, &QueryLimits::default())
    }

    /// Like [`Mediator::query_rule`], with per-query resource limits
    /// layered over the mediator's standing options. This is the serving
    /// layer's entry point: many threads call it concurrently against
    /// one resident mediator (`&self`), sharing the answer cache, the
    /// parameterized-call memo, learned statistics, and circuit
    /// breakers. `max_rows` is carried but not enforced here — see
    /// [`QueryLimits::max_rows`].
    pub fn query_rule_with(&self, query: &Rule, limits: &QueryLimits) -> Result<ExecOutcome> {
        msl::validate::validate_rule(query, &self.spec.spec.externals)?;

        if self.spec.is_recursive() {
            if !self.options.allow_recursion {
                return Err(MedError::RecursionDisabled(self.spec.name.as_str()));
            }
            return self.query_recursive(query);
        }

        let mut fault = self.options.fault.clone();
        if let Some(d) = limits.deadline_ms {
            fault.source_deadline_ms = Some(match fault.source_deadline_ms {
                Some(standing) => standing.min(d),
                None => d,
            });
        }
        let program = self.expand(query)?;
        let physical = {
            let stats = self.stats.read();
            let ctx = PlanContext {
                sources: &self.sources,
                registry: &self.registry,
                stats: &stats,
                options: &self.options.planner,
                analysis: self.analysis.as_ref(),
            };
            plan(&program, &ctx)?
        };
        let mut outcome = execute(
            &physical,
            &self.sources,
            &self.registry,
            &ExecOptions {
                trace: self.options.trace,
                parallel: self.options.parallel,
                fault,
                cache: self.exec_cache(),
                param_memo: self.exec_param_memo(),
                streaming: self.options.streaming,
                batch_size: limits.batch_size.unwrap_or(self.options.batch_size),
            },
        )?;
        outcome.trace.query = msl::printer::rule(query);
        if self.options.learn_stats {
            self.stats.record_trace(&outcome.trace);
        }
        Ok(outcome)
    }

    /// View expansion only (used by explain and the experiments).
    pub fn expand(&self, query: &Rule) -> Result<LogicalProgram> {
        expand(query, &self.spec, self.options.unify_mode)
    }

    /// Recursive path: materialize the view to fixpoint, then answer the
    /// query against the materialization.
    fn query_recursive(&self, query: &Rule) -> Result<ExecOutcome> {
        let (view, _iters) = materialize_fixpoint(&self.spec, &self.sources, &self.registry)?;
        let view_wrapper = wrappers::SemiStructuredWrapper::new(&self.spec.name.as_str(), view);
        let results = view_wrapper.query(query)?;
        let trace = crate::metrics::QueryTrace {
            query: msl::printer::rule(query),
            result_count: results.top_level().len(),
            ..Default::default()
        };
        Ok(ExecOutcome {
            results,
            memory: ObjectStore::new(),
            trace,
        })
    }

    /// A snapshot of the learned statistics (experiments).
    pub fn stats_snapshot(&self) -> StatsCache {
        self.stats.snapshot()
    }

    /// Full EXPLAIN: render the logical datamerge program, the physical
    /// plan, and (when `run` is true) a traced execution with the binding
    /// tables that flowed between nodes — the Figure 3.6 presentation.
    pub fn explain_text(&self, text: &str, run: bool) -> Result<String> {
        use std::fmt::Write;
        let query = msl::parse_query(text)?;
        msl::validate::validate_rule(&query, &self.spec.spec.externals)?;
        if self.spec.is_recursive() {
            return Ok(format!(
                "specification of '{}' is recursive: evaluated by fixpoint \
                 materialization (up to {} iterations), then matched directly",
                self.spec.name,
                crate::recursion::MAX_ITERATIONS
            ));
        }
        let program = self.expand(&query)?;
        let mut out = String::new();
        out.push_str(&crate::explain::render_logical(&program));
        let physical = {
            let stats = self.stats.read();
            let ctx = PlanContext {
                sources: &self.sources,
                registry: &self.registry,
                stats: &stats,
                options: &self.options.planner,
                analysis: self.analysis.as_ref(),
            };
            plan(&program, &ctx)?
        };
        let _ = writeln!(out);
        out.push_str(&crate::explain::render_plan(&physical));
        if run {
            let outcome = execute(
                &physical,
                &self.sources,
                &self.registry,
                &ExecOptions {
                    trace: true,
                    parallel: false,
                    fault: self.options.fault.clone(),
                    cache: self.exec_cache(),
                    param_memo: self.exec_param_memo(),
                    streaming: self.options.streaming,
                    batch_size: self.options.batch_size,
                },
            )?;
            let _ = writeln!(out);
            out.push_str(&crate::explain::render_execution(&physical, &outcome));
        }
        Ok(out)
    }

    /// EXPLAIN ANALYZE: execute the query and render the physical plan with
    /// observed per-node cardinalities, timings and source round-trips next
    /// to the optimizer's estimates. Returns the rendered report together
    /// with the raw [`crate::metrics::QueryTrace`] (for JSON export).
    ///
    /// Like [`Mediator::query_rule`], a run with `learn_stats` on feeds the
    /// trace's observations back into the statistics cache.
    pub fn explain_analyze(&self, text: &str) -> Result<(String, crate::metrics::QueryTrace)> {
        let query = msl::parse_query(text)?;
        msl::validate::validate_rule(&query, &self.spec.spec.externals)?;
        if self.spec.is_recursive() {
            let outcome = self.query_rule(&query)?;
            let report = format!(
                "specification of '{}' is recursive: evaluated by fixpoint \
                 materialization, no per-node datamerge metrics\n\
                 result objects: {}\n",
                self.spec.name, outcome.trace.result_count
            );
            return Ok((report, outcome.trace));
        }
        let program = self.expand(&query)?;
        let physical = {
            let stats = self.stats.read();
            let ctx = PlanContext {
                sources: &self.sources,
                registry: &self.registry,
                stats: &stats,
                options: &self.options.planner,
                analysis: self.analysis.as_ref(),
            };
            plan(&program, &ctx)?
        };
        let mut outcome = execute(
            &physical,
            &self.sources,
            &self.registry,
            &ExecOptions {
                trace: false,
                parallel: self.options.parallel,
                fault: self.options.fault.clone(),
                cache: self.exec_cache(),
                param_memo: self.exec_param_memo(),
                streaming: self.options.streaming,
                batch_size: self.options.batch_size,
            },
        )?;
        outcome.trace.query = msl::printer::rule(&query);
        if self.options.learn_stats {
            self.stats.record_trace(&outcome.trace);
        }
        let report = crate::explain::render_analyze(&physical, &outcome);
        Ok((report, outcome.trace))
    }

    /// Snapshot of every source wrapper's own counters (queries received,
    /// objects exported, capability rejections), for wrappers that are
    /// instrumented. Sorted by source name for stable output.
    pub fn wrapper_metrics(&self) -> Vec<(Symbol, wrappers::WrapperMetrics)> {
        let mut out: Vec<(Symbol, wrappers::WrapperMetrics)> = self
            .sources
            .iter()
            .filter_map(|(name, w)| w.metrics().map(|m| (*name, m)))
            .collect();
        out.sort_by_key(|(n, _)| n.as_str());
        out
    }
}

impl Wrapper for Mediator {
    fn name(&self) -> Symbol {
        self.spec.name
    }

    fn capabilities(&self) -> &Capabilities {
        &self.caps
    }

    fn stats(&self) -> Option<SourceStats> {
        None // virtual views: cardinalities unknown until queried
    }

    fn query(&self, q: &Rule) -> std::result::Result<ObjectStore, WrapperError> {
        // Queries arriving from an upper mediator name this mediator as
        // their source; our own pipeline expects that too, so pass through.
        // A dead downstream source stays transient through the stack: the
        // upper mediator's own retry/Partial policy can act on it.
        self.query_rule(q).map(|o| o.results).map_err(|e| match e {
            MedError::SourceUnavailable { .. } => WrapperError::Unavailable(e.to_string()),
            other => WrapperError::BadQuery(other.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::externals::standard_registry;
    use oem::printer::compact;
    use oem::sym;
    use wrappers::scenario::{cs_wrapper, whois_wrapper, MS1};

    pub fn paper_mediator() -> Mediator {
        Mediator::new(
            "med",
            MS1,
            vec![Arc::new(whois_wrapper()), Arc::new(cs_wrapper())],
            standard_registry(),
        )
        .unwrap()
    }

    #[test]
    fn paper_mediator_has_no_lint_warnings() {
        assert!(paper_mediator().lint_warnings().is_empty());
    }

    #[test]
    fn adornment_infeasible_spec_rejected_at_construction() {
        // `decomp` only binds L,F from a bound N, but no tail pattern
        // binds its first argument (§3.4).
        let err = Mediator::new(
            "med",
            "<o {<f F>}> :- <p {<n N>}>@whois AND decomp(L, F)\n\
             decomp(bound, free) by name_to_lnfn",
            vec![Arc::new(whois_wrapper())],
            standard_registry(),
        )
        .err()
        .expect("infeasible spec must be rejected");
        assert!(err.to_string().contains("never be evaluated"), "{err}");
    }

    #[test]
    fn capability_unanswerable_spec_rejected_at_construction() {
        // A wildcard pattern against a source that declares no wildcard
        // support: the planner could never send this query anywhere.
        let whois = whois_wrapper().with_capabilities(Capabilities::restricted());
        let err = Mediator::new(
            "med",
            "<v {<y Y>}> :- <person {* <year Y>}>@whois",
            vec![Arc::new(whois)],
            standard_registry(),
        )
        .err()
        .expect("unanswerable spec must be rejected");
        let MedError::Lint(diags) = err else {
            panic!("expected MedError::Lint, got {err}");
        };
        assert!(diags.iter().all(|d| d.is_error()));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, msl::diag::codes::CAPABILITY_UNANSWERABLE);
    }

    #[test]
    fn compensated_conditions_surface_as_warnings() {
        // §3.5's example: whois cannot filter on year, the mediator
        // compensates — the mediator is built, with a recorded warning.
        let whois = whois_wrapper()
            .with_capabilities(Capabilities::full().without_condition_on(sym("year")));
        let med = Mediator::new(
            "med",
            "<v {<n N>}> :- <person {<name N> <year 2>}>@whois",
            vec![Arc::new(whois)],
            standard_registry(),
        )
        .unwrap();
        let warns = med.lint_warnings();
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].code, msl::diag::codes::CAPABILITY_COMPENSATED);
        assert!(warns[0].message.contains("year"), "{}", warns[0].message);
    }

    #[test]
    fn q1_end_to_end() {
        let med = paper_mediator();
        let results = med
            .query_text("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
            .unwrap();
        assert_eq!(results.top_level().len(), 1);
        let printed = compact(&results, results.top_level()[0]);
        assert!(printed.contains("<title 'professor'>"), "{printed}");
    }

    #[test]
    fn whole_view_lists_both_people() {
        let med = paper_mediator();
        let results = med.query_text("P :- P:<cs_person {}>@med").unwrap();
        assert_eq!(results.top_level().len(), 2);
    }

    #[test]
    fn exhaustive_mode_is_still_correct_on_q1() {
        // Exhaustive unification explores extra unifiers; duplicate
        // elimination collapses their results back to the same answer.
        let med = paper_mediator();
        let results = med
            .query_text("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
            .unwrap();
        assert_eq!(results.top_level().len(), 1);
    }

    #[test]
    fn unknown_source_rejected_at_construction() {
        let res = Mediator::new(
            "m",
            "<v {<a A>}> :- <p {<a A>}>@missing",
            vec![],
            standard_registry(),
        );
        assert!(matches!(res.err(), Some(MedError::UnknownSource(_))));
    }

    #[test]
    fn mediators_stack() {
        // An upper mediator over `med`, renaming cs_person to staff.
        let lower = Arc::new(paper_mediator());
        let upper = Mediator::new(
            "top",
            "<staff {<who N>}> :- <cs_person {<name N>}>@med",
            vec![lower],
            standard_registry(),
        )
        .unwrap();
        let results = upper.query_text("X :- X:<staff {}>@top").unwrap();
        assert_eq!(results.top_level().len(), 2);
        let printed: Vec<String> = results
            .top_level()
            .iter()
            .map(|&t| compact(&results, t))
            .collect();
        assert!(
            printed.iter().any(|p| p.contains("'Joe Chung'")),
            "{printed:?}"
        );
    }

    #[test]
    fn recursive_mediator_answers_queries() {
        let mut s = ObjectStore::new();
        for (of, is) in [("a", "b"), ("b", "c")] {
            oem::ObjectBuilder::set("parent")
                .atom("of", of)
                .atom("is", is)
                .build_top(&mut s);
        }
        let src: Arc<dyn Wrapper> = Arc::new(wrappers::SemiStructuredWrapper::new("src", s));
        let med = Mediator::new(
            "m",
            "<anc {<of X> <is Y>}> :- <parent {<of X> <is Y>}>@src\n\
             <anc {<of X> <is Z>}> :- <parent {<of X> <is Y>}>@src \
             AND <anc {<of Y> <is Z>}>@m",
            vec![src],
            standard_registry(),
        )
        .unwrap();
        let results = med.query_text("X :- X:<anc {<of 'a'>}>@m").unwrap();
        assert_eq!(results.top_level().len(), 2); // a→b, a→c
    }

    #[test]
    fn recursion_can_be_disabled() {
        let mut s = ObjectStore::new();
        oem::ObjectBuilder::set("parent")
            .atom("of", "a")
            .atom("is", "b")
            .build_top(&mut s);
        let src: Arc<dyn Wrapper> = Arc::new(wrappers::SemiStructuredWrapper::new("src", s));
        let med = Mediator::new(
            "m",
            "<anc {<of X> <is Y>}> :- <parent {<of X> <is Y>}>@src\n\
             <anc {<of X> <is Z>}> :- <parent {<of X> <is Y>}>@src \
             AND <anc {<of Y> <is Z>}>@m",
            vec![src],
            standard_registry(),
        )
        .unwrap()
        .with_options(MediatorOptions {
            allow_recursion: false,
            ..Default::default()
        });
        assert!(matches!(
            med.query_text("X :- X:<anc {}>@m"),
            Err(MedError::RecursionDisabled(_))
        ));
    }

    #[test]
    fn learn_stats_off_keeps_cache_empty() {
        let med = paper_mediator().with_options(MediatorOptions {
            learn_stats: false,
            ..Default::default()
        });
        med.query_text("P :- P:<cs_person {}>@med").unwrap();
        // Wrapper-provided stats (cs) are still there, but no observations
        // accumulate for whois.
        assert!(!med.stats_snapshot().knows(sym("whois")));
    }

    #[test]
    fn parallel_option_works_through_mediator() {
        let med = paper_mediator().with_options(MediatorOptions {
            parallel: true,
            ..Default::default()
        });
        let res = med.query_text("S :- S:<cs_person {<year 3>}>@med").unwrap();
        assert_eq!(res.top_level().len(), 1);
    }

    #[test]
    fn trace_option_populates_traces() {
        let med = paper_mediator().with_options(MediatorOptions {
            trace: true,
            ..Default::default()
        });
        let q = msl::parse_query("P :- P:<cs_person {}>@med").unwrap();
        let out = med.query_rule(&q).unwrap();
        assert!(out.trace.rules.iter().any(|r| !r.nodes.is_empty()));
        assert!(out.trace.nodes().all(|t| !t.table.is_empty()));
        assert_eq!(out.trace.query, msl::printer::rule(&q));
    }

    #[test]
    fn ewma_updates_exactly_once_per_query() {
        // Minimal mode expands the year-3 query into exactly the paper's
        // two rules, both with cs outer and whois inner. Sequential
        // execution observes cs: [2, 1] and whois (per bind-join call):
        // [0, 1, 1]. One record_trace per query gives EWMA chains
        //   cs    2 → 2.0,  1 → 1.5
        //   whois 0 → 0.0,  1 → 0.5,  1 → 0.75
        // A mediator that recorded the trace twice would replay the blend
        // and land on cs = 1.25, whois = 0.84375 instead. (Scalar
        // enumeration pins the seed plan shape the expected chains assume;
        // the property under test is once-per-query recording.)
        let med = paper_mediator().with_options(MediatorOptions {
            unify_mode: UnifyMode::Minimal,
            planner: crate::planner::PlannerOptions {
                enumeration: crate::planner::JoinEnumeration::Scalar,
                ..Default::default()
            },
            ..Default::default()
        });
        med.query_text("S :- S:<cs_person {<year 3>}>@med").unwrap();
        let snap = med.stats_snapshot();
        assert_eq!(
            snap.base_count(sym("cs"), None),
            1.5,
            "trace must be recorded exactly once"
        );
        assert_eq!(
            snap.base_count(sym("whois"), Some(sym("person"))),
            0.75,
            "trace must be recorded exactly once"
        );
    }

    #[test]
    fn explain_analyze_reports_and_round_trips() {
        use serde::{Deserialize, Serialize};
        let med = paper_mediator();
        let (report, trace) = med
            .explain_analyze("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
            .unwrap();
        assert!(report.contains("EXPLAIN ANALYZE"), "{report}");
        assert!(report.contains("rows: "), "{report}");
        assert!(report.contains("=== totals ==="), "{report}");
        assert_eq!(trace.result_count, 1);
        // The trace survives a JSON round trip unchanged.
        let json = serde_json::to_string_pretty(&trace.to_value()).unwrap();
        let back =
            crate::metrics::QueryTrace::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn wrapper_metrics_accumulate_across_queries() {
        let med = paper_mediator();
        med.query_text("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
            .unwrap();
        let metrics = med.wrapper_metrics();
        assert_eq!(metrics.len(), 2, "{metrics:?}");
        for (name, m) in &metrics {
            assert!(m.queries_received >= 1, "{name}: {m:?}");
            assert!(m.objects_exported >= 1, "{name}: {m:?}");
            assert_eq!(m.capability_rejections, 0, "{name}: {m:?}");
        }
    }

    #[test]
    fn stats_learned_across_queries() {
        let med = paper_mediator();
        assert!(!med.stats_snapshot().knows(sym("whois")));
        med.query_text("P :- P:<cs_person {}>@med").unwrap();
        assert!(med.stats_snapshot().knows(sym("whois")));
    }

    // ---- answer cache ----------------------------------------------------

    fn cache_test_options(cache: CacheOptions) -> MediatorOptions {
        // learn_stats off keeps the plan identical across iterations so
        // round-trip counts compare cleanly.
        MediatorOptions {
            learn_stats: false,
            cache,
            ..Default::default()
        }
    }

    #[test]
    fn cache_off_is_exactly_seed_behavior() {
        // Guard for the default path: with the cache disabled, repeated
        // queries pay identical round-trips and produce byte-identical
        // answers — exactly the pre-cache behavior.
        let q = "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med";
        let off = paper_mediator().with_options(cache_test_options(CacheOptions::default()));
        let a = off.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        let b = off.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        assert_eq!(a.trace.source_calls, b.trace.source_calls);
        assert!(a.trace.total_source_calls() > 0);
        assert_eq!(
            oem::printer::print_store(&a.results),
            oem::printer::print_store(&b.results)
        );
        assert_eq!(off.cache_counters().hits + off.cache_counters().misses, 0);
    }

    #[test]
    fn cache_on_and_off_agree_and_warm_runs_skip_sources() {
        let q = "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med";
        let off = paper_mediator().with_options(cache_test_options(CacheOptions::default()));
        let on = paper_mediator().with_options(cache_test_options(CacheOptions::enabled()));
        let baseline = off.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        let cold = on.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        // Iteration 1: the cache may already dedup duplicate source
        // queries across Exhaustive-mode chains, but never adds calls —
        // and the answer bytes are identical either way.
        assert!(
            cold.trace.total_source_calls() <= baseline.trace.total_source_calls(),
            "on={:?} off={:?}",
            cold.trace.source_calls,
            baseline.trace.source_calls
        );
        assert_eq!(
            oem::printer::print_store(&baseline.results),
            oem::printer::print_store(&cold.results)
        );
        // Iteration 2 is answered entirely from the cache, same bytes.
        let warm = on.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        assert_eq!(
            warm.trace.total_source_calls(),
            0,
            "{:?}",
            warm.trace.source_calls
        );
        assert_eq!(
            oem::printer::print_store(&baseline.results),
            oem::printer::print_store(&warm.results)
        );
        let c = on.cache_counters();
        assert!(c.hits >= 1, "{c:?}");
    }

    #[test]
    fn invalidate_source_forces_refetch() {
        let q = "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med";
        let med = paper_mediator().with_options(cache_test_options(CacheOptions::enabled()));
        med.query_text(q).unwrap();
        let warm = med.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        assert_eq!(warm.trace.total_source_calls(), 0);
        // Drop whois: the next query must go back to that source (and
        // only that source — the cs answer is still cached).
        med.invalidate_source(sym("whois"));
        let after = med.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        assert!(
            after.trace.calls(sym("whois")) > 0,
            "{:?}",
            after.trace.source_calls
        );
        assert_eq!(
            after.trace.calls(sym("cs")),
            0,
            "{:?}",
            after.trace.source_calls
        );
    }

    #[test]
    fn param_memo_shared_across_queries_and_cleared_by_invalidation() {
        // The bind-join memo outlives a single execution when the cache
        // is on: a later query reuses the whois answers fetched for the
        // same parameter tuples. Explicit invalidation must clear it, or
        // it would serve data the caller just declared stale.
        let med = paper_mediator().with_options(cache_test_options(CacheOptions::enabled()));
        assert_eq!(med.param_memo_len(), 0);
        med.query_text("S :- S:<cs_person {<year 3>}>@med").unwrap();
        let after_first = med.param_memo_len();
        assert!(after_first > 0, "bind joins must populate the shared memo");
        med.invalidate_source(sym("whois"));
        assert!(
            med.param_memo_len() < after_first,
            "invalidation must drop the source's memo entries"
        );
    }

    #[test]
    fn param_memo_unused_while_cache_disabled() {
        // Cache off = exact seed behavior: executions use their own
        // ephemeral memo and nothing accumulates on the mediator.
        let med = paper_mediator().with_options(cache_test_options(CacheOptions::default()));
        med.query_text("S :- S:<cs_person {<year 3>}>@med").unwrap();
        assert_eq!(med.param_memo_len(), 0);
    }

    #[test]
    fn query_limits_preserve_answers_and_fingerprints_differ() {
        let q = "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med";
        let med = paper_mediator();
        let rule = msl::parse_query(q).unwrap();
        let base = med.query_rule(&rule).unwrap();
        let limited = med
            .query_rule_with(
                &rule,
                &QueryLimits {
                    deadline_ms: Some(5_000),
                    max_rows: Some(10),
                    batch_size: Some(1),
                },
            )
            .unwrap();
        assert_eq!(
            oem::printer::print_store(&base.results),
            oem::printer::print_store(&limited.results)
        );
        // Different limits must not coalesce to one execution: the
        // fingerprint distinguishes them.
        assert_ne!(
            QueryLimits::default().fingerprint(),
            QueryLimits {
                max_rows: Some(10),
                ..Default::default()
            }
            .fingerprint()
        );
    }

    #[test]
    fn cache_hits_feed_cardinality_observations() {
        // A cache hit serves rows the source once actually returned for
        // this query — a real cardinality sample. The seed skipped the
        // observation entirely, starving §3.5 learning on cache-heavy
        // workloads; now a fully-cached run still carries observations.
        let med = paper_mediator().with_options(MediatorOptions {
            cache: CacheOptions::enabled(),
            ..Default::default()
        });
        assert_eq!(med.stats_observations(), 0);
        // Two warm-ups: the first learns statistics, which can change the
        // second run's plan (and issue genuinely new source queries).
        med.query_text("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
            .unwrap();
        med.query_text("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
            .unwrap();
        let warmed = med.stats_observations();
        assert!(warmed > 0, "real source traffic must be observed");
        // The fully-cached run pays zero round-trips yet keeps observing.
        let served = med
            .query_rule(&msl::parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med").unwrap())
            .unwrap();
        assert_eq!(
            served.trace.total_source_calls(),
            0,
            "{:?}",
            served.trace.source_calls
        );
        assert!(
            med.stats_observations() > warmed,
            "cached answers must still feed cardinality learning \
             ({warmed} before, {} after)",
            med.stats_observations()
        );
    }

    #[test]
    fn cached_hits_do_not_feed_latency_learning() {
        // Round-trip accounting must see only real source traffic: a hit
        // pays no call, so it must not touch the latency/failure EWMAs —
        // only the cardinality feed (see
        // `cache_hits_feed_cardinality_observations`).
        let q = "P :- P:<cs_person {}>@med";
        let med = paper_mediator().with_options(MediatorOptions {
            cache: CacheOptions::enabled(),
            ..Default::default()
        });
        // Two warm-up runs: the first learns statistics, which can change
        // the second run's plan (and issue genuinely new source queries).
        med.query_text(q).unwrap();
        med.query_text(q).unwrap();
        let learned = med.stats_snapshot();
        let served = med.query_rule(&msl::parse_query(q).unwrap()).unwrap();
        assert_eq!(
            served.trace.total_source_calls(),
            0,
            "{:?}",
            served.trace.source_calls
        );
        assert!(
            served.trace.latency_ms.is_empty() && served.trace.latency_calls.is_empty(),
            "a fully-cached run must record no latency samples: {:?}",
            served.trace.latency_calls
        );
        let after = med.stats_snapshot();
        for src in [sym("whois"), sym("cs")] {
            assert_eq!(
                after.runtime(src).latency_ms,
                learned.runtime(src).latency_ms,
                "{src:?}: cached run must not move the latency EWMA"
            );
            assert_eq!(
                after.runtime(src).failure_rate,
                learned.runtime(src).failure_rate,
                "{src:?}: cached run must not move the failure EWMA"
            );
        }
    }

    #[test]
    fn fully_cached_workload_keeps_learning_cardinalities() {
        // The satellite regression: a 100%-hit workload (same query
        // replayed under a warm cache) must keep the §3.5 cardinality
        // EWMA alive — observation counts grow every run and the learned
        // base count converges on the cached answer's row count.
        let q = "P :- P:<cs_person {}>@med";
        let med = paper_mediator().with_options(MediatorOptions {
            cache: CacheOptions::enabled(),
            ..Default::default()
        });
        // Two warm-ups: the first learns statistics (possibly replanning
        // the second), the second fills the cache for the settled plan.
        med.query_text(q).unwrap();
        med.query_text(q).unwrap();
        let mut last = med.stats_observations();
        let mut cached_count = None;
        for _ in 0..5 {
            let out = med.query_rule(&msl::parse_query(q).unwrap()).unwrap();
            assert_eq!(
                out.trace.total_source_calls(),
                0,
                "workload must be 100% hits: {:?}",
                out.trace.source_calls
            );
            let now = med.stats_observations();
            assert!(now > last, "each cached run must observe ({last} → {now})");
            last = now;
            cached_count = out
                .trace
                .observations
                .iter()
                .find(|o| o.source == sym("whois") && o.label == Some(sym("person")))
                .map(|o| o.count as f64);
        }
        // Each cached run replays the same known cardinality, so five EWMA
        // folds converge onto it (within 2⁻⁵ of the initial gap).
        let c = cached_count.expect("cached runs must observe whois/person");
        let whois = med
            .stats_snapshot()
            .base_count(sym("whois"), Some(sym("person")));
        assert!(
            (whois - c).abs() < 0.1,
            "cardinality EWMA should converge on the cached count {c}, got {whois}"
        );
    }
}
