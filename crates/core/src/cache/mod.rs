//! Source-answer cache: containment-aware, tiered reuse of wrapper answers.
//!
//! Every mediator query used to re-fetch from the wrapped sources cold,
//! even though MedMaker's MSI design (§3.4–3.6) makes source round-trips
//! the dominant cost of both the fetch-and-join and parameterized-query
//! strategies. The [`AnswerCache`] keeps the wrapper's exported
//! `ObjectStore` answer for every source query the executor sends, keyed
//! by a *canonicalized* form of the query (variable names normalized,
//! conditions sorted), and serves repeats without touching the source.
//!
//! Lookup goes beyond exact repetition: a **containment probe** (§3.2's
//! query-containment notion, see [`engine::containment`]) finds a cached
//! query that is *more general* than the incoming one — same shape, but
//! with a variable where the new query pins a constant, or without a rest
//! condition the new query adds. The cached answer is then filtered
//! locally, `wrappers/eval.rs`-style, against the extra constants and
//! conditions instead of paying a round-trip.
//!
//! Keys are computed over the *post-capability-strip* node queries (the
//! planner already removed conditions the source cannot evaluate), so the
//! cache never conflates what the source was actually asked with what the
//! mediator filters afterwards.
//!
//! Soundness rule: a probe that meets *any* structural surprise — a
//! pinned variable the cached query never exported, a rest condition
//! whose carrier is missing, a rest condition referencing a variable the
//! query binds elsewhere (local filtering cannot thread bindings the way
//! the live matcher does), mismatched extraction kinds — rejects the
//! entry and falls back to a miss. A containment false-positive can never
//! serve a wrong answer; the worst case is a redundant round-trip.
//!
//! ## Tiers
//!
//! The store is split in two (submodules [`hot`] and [`warm`]):
//!
//! * the **hot tier** holds recently useful answers in memory, evicted
//!   cost-aware past capacity ([`EvictionPolicy`], value score = source
//!   latency × per-entry hit EWMA over bytes; `--cache-fifo` restores the
//!   seed FIFO as an ablation);
//! * the **warm tier** (enabled by [`CacheOptions::cache_dir`]) is an
//!   append-only checksummed disk log that every insert writes through,
//!   so hot-tier losers *demote* (drop from memory, stay on disk) instead
//!   of vanishing, and a restarted process reopens yesterday's answers
//!   without re-paying the source round-trips. A warm hit re-reads,
//!   re-verifies and *promotes* the entry back to hot.
//!
//! Invalidation is tiered too: beyond whole-source
//! ([`AnswerCache::invalidate_source`]), a scoped [`SourceDelta`]
//! ([`AnswerCache::apply_delta`]) drops only entries whose canonical key
//! or label footprint ([`keyidx`]) could touch the changed objects; warm
//! removals are made durable with tombstone records so they survive a
//! restart.
//!
//! Fault interaction: once the executor reports a source failed
//! ([`AnswerCache::mark_failed`]), cached answers for that source are
//! *not* served (the cache must not mask an outage behind stale data)
//! unless [`CacheOptions::stale_ok`] opts into stale serving. A later
//! success ([`AnswerCache::mark_ok`]) lifts the embargo.
//!
//! Statistics interaction: a hit carries a *known* result cardinality, so
//! the executor records it as a §3.5 observation exactly like a live
//! answer — a fully-cached workload keeps refining the optimizer's row
//! estimates. What a hit must **never** feed is the round-trip
//! accounting: no `source_calls`, no latency samples, no failure-rate
//! samples. The cost model's `net` component prices what talking to the
//! source costs; serving from memory says nothing about that, and before
//! this rule cache-heavy workloads starved latency learning with
//! zero-cost samples. The dependency runs the *other* way now: eviction
//! reads the per-source latency EWMA from [`crate::stats`] (snapshotted
//! at insert, outside the cache lock) to price what an entry saves.

pub mod hot;
pub mod keyidx;
pub mod warm;

pub use hot::EvictionPolicy;
pub use keyidx::{rule_labels, LabelFootprint, SourceDelta};
pub use warm::{CompactStats, WarmStats, WarmTier};

use crate::graph::{ExtractVar, VarKind};
use crate::stats::SharedStats;
use engine::bindings::{Bindings, BoundValue};
use engine::matcher::{atomic_eq, match_pattern};
use hot::HotTier;
use msl::{Head, PatValue, Pattern, RestSpec, Rule, SetElem, SetPattern, TailItem, Term};
use oem::{copy, ObjectStore, Symbol, Value};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use wrappers::fault::{Clock, SystemClock};

/// Configuration of the source-answer cache. Carried in
/// [`crate::MediatorOptions`]; disabled by default so a mediator without
/// `--cache` behaves exactly like the seed (every query pays its
/// round-trips, statistics learn from every call).
#[derive(Clone)]
pub struct CacheOptions {
    /// Master switch; `false` (default) keeps the cache completely out of
    /// the execution path.
    pub enabled: bool,
    /// Maximum cached answers per source shard of the hot tier; the
    /// lowest-value (or, under [`Self::fifo`], oldest) entry is evicted
    /// when a shard overflows.
    pub capacity: usize,
    /// Time-to-live per entry in milliseconds, measured on [`Self::clock`];
    /// `None` means entries never expire. Applies to both tiers.
    pub ttl_ms: Option<u64>,
    /// Serve cached answers even for a source currently marked failed
    /// (the `--cache-stale-ok` escape hatch). Default `false`: a failed
    /// source's entries are embargoed until it answers again.
    pub stale_ok: bool,
    /// Sources excluded from caching (always fetched live).
    pub disabled_sources: BTreeSet<Symbol>,
    /// Injectable clock for TTL measurement; `None` =
    /// [`wrappers::fault::SystemClock`]. Share a
    /// [`wrappers::fault::VirtualClock`] with [`crate::retry::FaultOptions`]
    /// to run expiry on virtual time in tests.
    pub clock: Option<Arc<dyn Clock>>,
    /// Directory of the warm on-disk tier (`--cache-dir`). `None`
    /// (default) keeps the cache memory-only, exactly like the seed. When
    /// set, every insert writes through to disk and the cache survives
    /// process restarts. An unopenable directory degrades to memory-only
    /// rather than failing the mediator.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget of the warm tier (`--cache-warm-bytes`). When the
    /// segment files outgrow it, compaction rewrites live entries in
    /// value order and drops the lowest-value ones past the budget.
    pub warm_bytes: u64,
    /// Ablation flag (`--cache-fifo`): evict the hot tier oldest-first
    /// like the seed instead of cost-aware.
    pub fifo: bool,
}

/// Default warm-tier byte budget: 64 MiB.
pub const DEFAULT_WARM_BYTES: u64 = 64 << 20;

impl Default for CacheOptions {
    fn default() -> CacheOptions {
        CacheOptions {
            enabled: false,
            capacity: 64,
            ttl_ms: None,
            stale_ok: false,
            disabled_sources: BTreeSet::new(),
            clock: None,
            cache_dir: None,
            warm_bytes: DEFAULT_WARM_BYTES,
            fifo: false,
        }
    }
}

impl CacheOptions {
    /// An enabled cache with the default capacity and no TTL.
    pub fn enabled() -> CacheOptions {
        CacheOptions {
            enabled: true,
            ..Default::default()
        }
    }
}

impl fmt::Debug for CacheOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheOptions")
            .field("enabled", &self.enabled)
            .field("capacity", &self.capacity)
            .field("ttl_ms", &self.ttl_ms)
            .field("stale_ok", &self.stale_ok)
            .field("disabled_sources", &self.disabled_sources)
            .field("clock", &self.clock.as_ref().map(|_| "<injected>"))
            .field("cache_dir", &self.cache_dir)
            .field("warm_bytes", &self.warm_bytes)
            .field("fifo", &self.fifo)
            .finish()
    }
}

/// How a lookup was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheHit {
    /// The canonicalized query matched a cached key exactly.
    Exact,
    /// A more general cached query contained the new one; the cached
    /// answer was filtered locally.
    Containment,
}

/// A snapshot of the cache's lifetime counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheCounters {
    /// Exact-key lookup hits (either tier).
    pub hits: usize,
    /// Containment-probe hits (served by filtering a broader answer).
    pub containment_hits: usize,
    /// Lookups that had to fall through to the source.
    pub misses: usize,
    /// Entries removed from the cache entirely: capacity pressure with no
    /// warm tier, TTL expiry, invalidation, compaction drops.
    pub evictions: usize,
    /// Approximate bytes resident in the hot tier (printed-form size).
    pub bytes_cached: usize,
    /// Entries currently resident in the hot tier.
    pub entries: usize,
    /// Hits served off the warm disk tier (each also counts in
    /// [`Self::hits`] or [`Self::containment_hits`]).
    pub warm_hits: usize,
    /// Hot-tier losers dropped from memory but still durable on disk.
    pub demotions: usize,
    /// Warm entries copied back into the hot tier on a warm hit.
    pub promotions: usize,
    /// Warm-tier compaction runs.
    pub compactions: usize,
    /// Entries currently live in the warm tier's index.
    pub warm_entries: usize,
    /// Live answer bytes in the warm tier (garbage excluded).
    pub warm_bytes: usize,
}

/// One cached source answer (hot tier).
pub(crate) struct Entry {
    /// Canonical key — the printed canonicalized query.
    key: String,
    /// The original (post-strip) source query, for containment probes.
    query: Rule,
    /// The variables the cached answer's `bind_for_*` carriers export.
    extract: Vec<ExtractVar>,
    /// Label footprint of the query, for delta-driven invalidation.
    footprint: LabelFootprint,
    /// The wrapper's exported answer, as returned.
    answer: Arc<ObjectStore>,
    /// Insertion time on the cache clock, for TTL expiry.
    inserted_ms: u64,
    /// Approximate size of the answer (printed form), for accounting.
    size_bytes: usize,
    /// Source per-call latency EWMA at insert (ms): what a miss would
    /// re-pay. Snapshotted outside the cache lock.
    unit_cost_ms: f64,
    /// Per-entry hit EWMA, seeded from the source's hit rate and raised
    /// toward 1 on every hit this entry serves.
    hit_boost: f64,
}

impl Entry {
    /// Value score: expected ms saved per resident byte. The cost-aware
    /// eviction victim is the minimum of this across the shard.
    fn value_score(&self) -> f64 {
        self.unit_cost_ms * self.hit_boost / self.size_bytes.max(1) as f64
    }
}

#[derive(Default)]
struct CacheInner {
    /// The in-memory tier.
    hot: HotTier,
    /// The disk tier, when [`CacheOptions::cache_dir`] is set and opened.
    warm: Option<WarmTier>,
    /// Sources currently embargoed after an observed failure.
    failed: BTreeSet<Symbol>,
    hits: usize,
    containment_hits: usize,
    misses: usize,
    evictions: usize,
    bytes_cached: usize,
    warm_hits: usize,
    demotions: usize,
    promotions: usize,
    compactions: usize,
}

/// The mediator-level source-answer cache. One instance lives on a
/// [`crate::Mediator`] and persists across queries; the executor shares
/// it across parallel chains behind this struct's internal lock (the same
/// pattern as [`crate::retry::CircuitBreaker`]).
pub struct AnswerCache {
    opts: CacheOptions,
    clock: Arc<dyn Clock>,
    policy: EvictionPolicy,
    /// Mediator statistics, when wired ([`AnswerCache::with_stats`]):
    /// the source of eviction value-score inputs. Read *before* taking
    /// [`Self::inner`]'s lock — the two locks never nest.
    stats: Option<Arc<SharedStats>>,
    inner: Mutex<CacheInner>,
}

impl fmt::Debug for AnswerCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counters();
        f.debug_struct("AnswerCache")
            .field("opts", &self.opts)
            .field("policy", &self.policy)
            .field("counters", &c)
            .finish()
    }
}

impl AnswerCache {
    /// Build a cache from options with no statistics wired: eviction
    /// value scores fall back to the default latency and hit seed. The
    /// clock defaults to [`wrappers::fault::SystemClock`] when not
    /// injected.
    pub fn new(opts: CacheOptions) -> AnswerCache {
        AnswerCache::with_stats(opts, None)
    }

    /// Build a cache wired to the mediator's runtime statistics, so
    /// cost-aware eviction prices entries by the observed per-call
    /// latency of their source. Opens the warm tier when
    /// [`CacheOptions::cache_dir`] is set (an unopenable directory
    /// degrades to memory-only).
    pub fn with_stats(opts: CacheOptions, stats: Option<Arc<SharedStats>>) -> AnswerCache {
        let clock = opts
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(SystemClock::new()));
        let warm = if opts.enabled {
            opts.cache_dir
                .as_ref()
                .and_then(|dir| WarmTier::open(dir).ok())
        } else {
            None
        };
        let policy = if opts.fifo {
            EvictionPolicy::Fifo
        } else {
            EvictionPolicy::CostAware
        };
        AnswerCache {
            opts,
            clock,
            policy,
            stats,
            inner: Mutex::new(CacheInner {
                warm,
                ..Default::default()
            }),
        }
    }

    /// Whether the cache participates in calls to `source`.
    pub fn enabled_for(&self, source: Symbol) -> bool {
        self.opts.enabled && !self.opts.disabled_sources.contains(&source)
    }

    /// Value-score inputs for a fresh entry of `source`:
    /// `(unit_cost_ms, hit_boost seed)`. Reads the stats lock, so must be
    /// called before taking the cache lock.
    fn value_inputs(&self, source: Symbol) -> (f64, f64) {
        match &self.stats {
            Some(stats) => stats.read().value_inputs(source),
            None => (crate::stats::DEFAULT_LATENCY_MS, 0.25),
        }
    }

    /// Look up an answer for `query` against `source`. On a hit, the
    /// needed `bind_for_*` carriers are deep-copied into `memory` and
    /// returned as binding rows ready for the executor's table — exactly
    /// what extraction from a live answer would have produced.
    ///
    /// The hot tier is probed first (exact keys, then containment,
    /// newest first); on a hot miss the warm tier's index is probed the
    /// same way, the winning record re-read and re-checksummed off disk,
    /// and the entry promoted back into the hot tier.
    pub fn lookup(
        &self,
        source: Symbol,
        query: &Rule,
        vars: &[ExtractVar],
        memory: &mut ObjectStore,
    ) -> Option<(Vec<Vec<BoundValue>>, CacheHit)> {
        if !self.enabled_for(source) {
            return None;
        }
        let key = canonical_key(query);
        let now = self.clock.now_ms();
        let inner = &mut *self.inner.lock();
        if inner.failed.contains(&source) && !self.opts.stale_ok {
            // An observed outage embargoes the shard: serving would mask
            // the failure behind data of unknown staleness.
            inner.misses += 1;
            return None;
        }
        self.expire(inner, source, now);

        // Hot probe: exact keys first (newest first), then containment.
        let mut hot_hit: Option<(usize, Vec<Vec<BoundValue>>, CacheHit)> = None;
        if let Some(shard) = inner.hot.shard(source) {
            let order = (0..shard.len())
                .rev()
                .filter(|&i| shard[i].key == key)
                .chain((0..shard.len()).rev().filter(|&i| shard[i].key != key));
            for i in order {
                let entry = &shard[i];
                let Some(m) = specialize_match_rule(query, &entry.query) else {
                    continue;
                };
                let Some(rows) = serve(&entry.extract, &entry.answer, &m, vars, memory) else {
                    continue;
                };
                let kind = if entry.key == key {
                    CacheHit::Exact
                } else {
                    CacheHit::Containment
                };
                hot_hit = Some((i, rows, kind));
                break;
            }
        }
        if let Some((i, rows, kind)) = hot_hit {
            match kind {
                CacheHit::Exact => inner.hits += 1,
                CacheHit::Containment => inner.containment_hits += 1,
            }
            if let Some(shard) = inner.hot.shard_mut(source) {
                let e = &mut shard[i];
                e.hit_boost = 0.5 * e.hit_boost + 0.5;
            }
            return Some((rows, kind));
        }

        // Warm probe.
        let mut warm_hit: Option<(String, ObjectStore, Vec<Vec<BoundValue>>, CacheHit)> = None;
        if let Some(warm) = &inner.warm {
            if let Some(shard) = warm.entries(source) {
                let order = shard
                    .keys()
                    .filter(|k| **k == key)
                    .chain(shard.keys().filter(|k| **k != key));
                for k in order {
                    let we = &shard[k];
                    if let Some(ttl) = self.opts.ttl_ms {
                        if now.saturating_sub(we.inserted_ms) > ttl {
                            continue; // expired on disk; reaped by expire()
                        }
                    }
                    let Some(m) = specialize_match_rule(query, &we.query) else {
                        continue;
                    };
                    // Disk gate: re-read and re-verify the checksum; a
                    // record gone bad since open is a miss, never an error.
                    let Some(store) = warm.read_answer(we) else {
                        continue;
                    };
                    let Some(rows) = serve(&we.extract, &store, &m, vars, memory) else {
                        continue;
                    };
                    let kind = if we.key == key {
                        CacheHit::Exact
                    } else {
                        CacheHit::Containment
                    };
                    warm_hit = Some((k.clone(), store, rows, kind));
                    break;
                }
            }
        }
        if let Some((k, store, rows, kind)) = warm_hit {
            match kind {
                CacheHit::Exact => inner.hits += 1,
                CacheHit::Containment => inner.containment_hits += 1,
            }
            inner.warm_hits += 1;
            if self.opts.capacity == 0 {
                return Some((rows, kind));
            }
            // Promote: refresh the hit EWMA and copy the entry back into
            // the hot tier (keeping its original insert time for TTL).
            let entry = {
                let warm = inner.warm.as_mut().expect("warm tier present on warm hit");
                let we = warm.entry_mut(source, &k).expect("warm entry present");
                we.hit_boost = 0.5 * we.hit_boost + 0.5;
                Entry {
                    key: k,
                    query: we.query.clone(),
                    extract: we.extract.clone(),
                    footprint: we.footprint.clone(),
                    answer: Arc::new(store),
                    inserted_ms: we.inserted_ms,
                    size_bytes: we.size_bytes,
                    unit_cost_ms: we.unit_cost_ms,
                    hit_boost: we.hit_boost,
                }
            };
            let size = entry.size_bytes;
            let (freed, evicted) = inner
                .hot
                .insert(source, entry, self.opts.capacity, self.policy);
            let evicted_bytes: usize = evicted.iter().map(|e| e.size_bytes).sum();
            inner.promotions += 1;
            inner.demotions += evicted.len(); // warm is present: losers demote
            inner.bytes_cached = inner.bytes_cached + size - freed - evicted_bytes;
            return Some((rows, kind));
        }

        inner.misses += 1;
        None
    }

    /// Cache a freshly fetched answer. Replaces an existing entry with
    /// the same canonical key; evicts the shard's lowest-value entry past
    /// capacity (losers demote when a warm tier is configured). With a
    /// warm tier the answer is also written through to disk, and
    /// compaction runs when the segments outgrow the byte budget.
    pub fn insert(&self, source: Symbol, query: &Rule, vars: &[ExtractVar], answer: &ObjectStore) {
        if !self.enabled_for(source) || self.opts.capacity == 0 {
            return;
        }
        let key = canonical_key(query);
        let answer_text = oem::printer::print_store(answer);
        let size_bytes = answer_text.len();
        let (unit_cost_ms, hit_boost) = self.value_inputs(source);
        let inserted_ms = self.clock.now_ms();
        let entry = Entry {
            key: key.clone(),
            query: query.clone(),
            extract: vars.to_vec(),
            footprint: rule_labels(query),
            answer: Arc::new(answer.clone()),
            inserted_ms,
            size_bytes,
            unit_cost_ms,
            hit_boost,
        };
        let inner = &mut *self.inner.lock();
        let (freed, evicted) = inner
            .hot
            .insert(source, entry, self.opts.capacity, self.policy);
        let evicted_bytes: usize = evicted.iter().map(|e| e.size_bytes).sum();
        if inner.warm.is_some() {
            inner.demotions += evicted.len();
        } else {
            inner.evictions += evicted.len();
        }
        inner.bytes_cached = inner.bytes_cached + size_bytes - freed - evicted_bytes;
        if let Some(warm) = &mut inner.warm {
            // Write-through. Warm I/O errors degrade the tier (the entry
            // just won't survive a restart), never the query.
            let _ = warm.append(
                source,
                &key,
                query,
                vars,
                inserted_ms,
                unit_cost_ms,
                hit_boost,
                &answer_text,
            );
            if warm.disk_bytes() > self.opts.warm_bytes {
                if let Ok(st) = warm.compact(self.opts.warm_bytes) {
                    inner.compactions += 1;
                    inner.evictions += st.dropped;
                }
            }
        }
    }

    /// Record that `source` failed its fault policy: its cached answers
    /// are embargoed until [`AnswerCache::mark_ok`] (unless
    /// [`CacheOptions::stale_ok`]).
    pub fn mark_failed(&self, source: Symbol) {
        self.inner.lock().failed.insert(source);
    }

    /// Record that `source` answered successfully, lifting any embargo.
    pub fn mark_ok(&self, source: Symbol) {
        self.inner.lock().failed.remove(&source);
    }

    /// Whether `source` is currently embargoed after an observed failure
    /// (and the embargo is in force, i.e. not overridden by
    /// [`CacheOptions::stale_ok`]). The shared [`ParamMemo`] consults this
    /// so memoized parameterized answers follow the same freshness rules
    /// as cached ones.
    pub fn embargoed(&self, source: Symbol) -> bool {
        !self.opts.stale_ok && self.inner.lock().failed.contains(&source)
    }

    /// Drop every cached answer for `source` in both tiers (counted as
    /// evictions, one per distinct key) and lift any failure embargo. The
    /// explicit invalidation hook behind
    /// [`crate::Mediator::invalidate_source`]. Warm removal is made
    /// durable with a whole-source tombstone. Returns the number of
    /// distinct keys invalidated.
    pub fn invalidate_source(&self, source: Symbol) -> usize {
        let inner = &mut *self.inner.lock();
        let mut keys: BTreeSet<String> = BTreeSet::new();
        if let Some(shard) = inner.hot.shard(source) {
            keys.extend(shard.iter().map(|e| e.key.clone()));
        }
        let (_, freed) = inner.hot.remove_source(source);
        inner.bytes_cached -= freed;
        if let Some(warm) = &mut inner.warm {
            if let Some(shard) = warm.entries(source) {
                keys.extend(shard.keys().cloned());
            }
            warm.remove_source(source);
            let _ = warm.append_tombstone(source, None);
        }
        inner.evictions += keys.len();
        inner.failed.remove(&source);
        keys.len()
    }

    /// Apply a change feed entry: drop only cache entries whose canonical
    /// key or label footprint could have observed the changed objects
    /// ([`SourceDelta::matches`]). An unscoped delta falls back to
    /// [`AnswerCache::invalidate_source`] (and lifts the embargo like
    /// it); a scoped one leaves any failure embargo intact — it reports a
    /// data change, not a recovery. Warm removals are tombstoned so they
    /// survive restart. Returns the number of distinct keys invalidated.
    pub fn apply_delta(&self, delta: &SourceDelta) -> usize {
        if delta.is_unscoped() {
            return self.invalidate_source(delta.source);
        }
        let source = delta.source;
        let inner = &mut *self.inner.lock();
        let mut keys: BTreeSet<String> = BTreeSet::new();
        let (_, freed) = inner.hot.retain(source, |e| {
            let stale = delta.matches(&e.key, &e.footprint);
            if stale {
                keys.insert(e.key.clone());
            }
            !stale
        });
        inner.bytes_cached -= freed;
        if let Some(warm) = &mut inner.warm {
            warm.retain(source, |e| {
                let stale = delta.matches(&e.key, &e.footprint);
                if stale {
                    keys.insert(e.key.clone());
                }
                !stale
            });
            for key in &keys {
                let _ = warm.append_tombstone(source, Some(key));
            }
        }
        inner.evictions += keys.len();
        keys.len()
    }

    /// Snapshot the lifetime counters.
    pub fn counters(&self) -> CacheCounters {
        let inner = self.inner.lock();
        debug_assert_eq!(
            inner.bytes_cached,
            inner.hot.resident_bytes(),
            "the bytes gauge must track hot-resident entries exactly"
        );
        let (warm_entries, warm_bytes) = match &inner.warm {
            Some(warm) => {
                let s = warm.stats();
                (s.entries, s.live_bytes as usize)
            }
            None => (0, 0),
        };
        CacheCounters {
            hits: inner.hits,
            containment_hits: inner.containment_hits,
            misses: inner.misses,
            evictions: inner.evictions,
            bytes_cached: inner.bytes_cached,
            entries: inner.hot.entry_count(),
            warm_hits: inner.warm_hits,
            demotions: inner.demotions,
            promotions: inner.promotions,
            compactions: inner.compactions,
            warm_entries,
            warm_bytes,
        }
    }

    /// Warm-tier operational stats, when a warm tier is open.
    pub fn warm_stats(&self) -> Option<WarmStats> {
        self.inner.lock().warm.as_ref().map(|w| w.stats())
    }

    /// Entries currently resident in the hot tier for `source` (tests
    /// and diagnostics).
    pub fn entry_count(&self, source: Symbol) -> usize {
        self.inner.lock().hot.shard(source).map_or(0, |s| s.len())
    }

    /// Ground truth for the byte-accounting property test: the sum of
    /// hot-resident entry sizes, which `bytes_cached` must equal exactly.
    #[cfg(test)]
    fn hot_resident_bytes(&self) -> usize {
        self.inner.lock().hot.resident_bytes()
    }

    /// Drop the expired entries of one source in both tiers (TTL),
    /// counting evictions once per logical entry (hot entries are
    /// write-through copies of warm ones, so the larger tier's count is
    /// the logical count).
    fn expire(&self, inner: &mut CacheInner, source: Symbol, now: u64) {
        let Some(ttl) = self.opts.ttl_ms else {
            return;
        };
        let (hot_n, freed) = inner.hot.expire(source, ttl, now);
        inner.bytes_cached -= freed;
        let mut warm_n = 0;
        if let Some(warm) = &mut inner.warm {
            (warm_n, _) = warm.retain(source, |e| now.saturating_sub(e.inserted_ms) <= ttl);
        }
        inner.evictions += hot_n.max(warm_n);
    }
}

// ---- parameterized-query memo -------------------------------------------

/// Key of the parameterized-query memo: source, printed unfilled query,
/// bound parameter tuple.
pub type ParamMemoKey = (Symbol, String, Vec<Value>);

/// A memoized answer with its insertion time (for TTL expiry).
pub struct ParamMemoState {
    /// The wrapper's answer for this parameter tuple, as returned.
    pub answer: Arc<ObjectStore>,
    inserted_ms: u64,
}

/// One memo slot per parameter tuple. The slot's own lock is held across
/// the fetch — executions racing on the *same* tuple block and then reuse
/// the one answer — while the map lock is released before any I/O, so
/// distinct tuples and distinct sources fetch concurrently. A failed
/// fetch leaves the slot empty; the next execution to need the tuple
/// retries.
pub type ParamSlot = Arc<Mutex<Option<ParamMemoState>>>;

/// The parameterized-query memo: bound parameter tuples already fetched
/// from a source, keyed by `(source, unfilled query, tuple)`.
///
/// Two scopes exist:
/// - **Ephemeral** ([`ParamMemo::ephemeral`]): created per execution by
///   the datamerge engine. Parallel chains of *one query* sending the
///   same bound tuple to the same source pay one round-trip — the exact
///   pre-serve behavior.
/// - **Shared** ([`ParamMemo::shared`]): owned by a [`crate::Mediator`]
///   alongside its [`AnswerCache`] and passed to every execution while
///   the cache is enabled. Concurrent *and successive* queries then share
///   parameterized fetches process-wide — the source-call-level analogue
///   of the server's whole-query coalescing. Shared entries honor the
///   cache's TTL on the same clock, respect the failed-source embargo
///   (via [`AnswerCache::embargoed`], checked by the executor), and are
///   dropped by [`ParamMemo::invalidate_source`] — which
///   [`crate::Mediator::apply_delta`] invokes for *any* delta touching
///   the source, scoped or not: memo keys are parameter tuples, not
///   canonical query keys, so scoping cannot be mapped onto them and the
///   conservative whole-source purge is the sound choice.
///
/// The memo is a dedup window, not a store: when it outgrows
/// `max_entries` it is simply reset — anything worth keeping longer is
/// already in the answer cache, which the executor consults first.
pub struct ParamMemo {
    ttl_ms: Option<u64>,
    clock: Arc<dyn Clock>,
    /// `true` for the mediator-owned memo shared across queries; gates
    /// the TTL/embargo freshness checks so an ephemeral memo behaves
    /// exactly like the historical per-execution map.
    shared: bool,
    max_entries: usize,
    slots: Mutex<HashMap<ParamMemoKey, ParamSlot>>,
}

/// Reset threshold for a shared memo (entries). Far above any single
/// query's tuple count; purely a bound on resident growth of a long-lived
/// server process.
const PARAM_MEMO_MAX_ENTRIES: usize = 65_536;

impl ParamMemo {
    /// A per-execution memo: no TTL, never consulted across queries.
    pub fn ephemeral() -> ParamMemo {
        ParamMemo {
            ttl_ms: None,
            clock: Arc::new(SystemClock::new()),
            shared: false,
            max_entries: usize::MAX,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// A mediator-owned memo shared across queries, configured from the
    /// answer cache's options (same TTL, same clock).
    pub fn shared(opts: &CacheOptions) -> ParamMemo {
        ParamMemo {
            ttl_ms: opts.ttl_ms,
            clock: opts
                .clock
                .clone()
                .unwrap_or_else(|| Arc::new(SystemClock::new())),
            shared: true,
            max_entries: PARAM_MEMO_MAX_ENTRIES,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Whether this memo is shared across queries (the mediator-owned
    /// scope); the executor then applies the TTL/embargo freshness rules.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// The slot for `key`, created empty if absent. Only the map lock is
    /// held here; callers lock the returned slot across their fetch.
    pub fn slot(&self, key: &ParamMemoKey) -> ParamSlot {
        let mut slots = self.slots.lock();
        if slots.len() >= self.max_entries {
            // Outgrew the dedup window: reset. In-flight fetches keep
            // their own Arc'd slots; future lookups refetch (or hit the
            // answer cache).
            slots.clear();
        }
        Arc::clone(slots.entry(key.clone()).or_default())
    }

    /// Whether a filled slot is still servable: always for an ephemeral
    /// memo, within the TTL for a shared one.
    pub fn live(&self, state: &ParamMemoState) -> bool {
        if !self.shared {
            return true;
        }
        match self.ttl_ms {
            Some(ttl) => self.clock.now_ms().saturating_sub(state.inserted_ms) <= ttl,
            None => true,
        }
    }

    /// Wrap a freshly fetched answer with its insertion timestamp.
    pub fn state(&self, answer: Arc<ObjectStore>) -> ParamMemoState {
        ParamMemoState {
            answer,
            inserted_ms: self.clock.now_ms(),
        }
    }

    /// Drop every memoized tuple for `source` — invoked together with
    /// [`AnswerCache::invalidate_source`], and by
    /// [`crate::Mediator::apply_delta`] for scoped deltas too (see the
    /// type docs for why the purge is always whole-source).
    pub fn invalidate_source(&self, source: Symbol) {
        self.slots.lock().retain(|(s, _, _), _| *s != source);
    }

    /// Memoized tuples currently resident (diagnostics / `/metrics`).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether the memo currently holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }
}

impl fmt::Debug for ParamMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParamMemo")
            .field("shared", &self.shared)
            .field("ttl_ms", &self.ttl_ms)
            .field("entries", &self.len())
            .finish()
    }
}

// ---- canonicalization ---------------------------------------------------

/// The cache key of a source query: conditions sorted structurally and
/// every variable renamed positionally, then printed. Two source queries
/// that differ only in variable names or condition order share a key.
pub fn canonical_key(query: &Rule) -> String {
    msl::printer::rule(&canonical_rule(query))
}

/// The canonicalized form behind [`canonical_key`].
fn canonical_rule(query: &Rule) -> Rule {
    let vars: HashSet<Symbol> = query.variables().into_iter().collect();
    let mut rule = query.clone();
    // Pass 1: sort set elements / rest conditions / tail items by their
    // variable-masked printed form, bottom-up, so condition order cannot
    // influence the key (renaming below is positional over this order).
    sort_head(&mut rule.head, &vars);
    for t in &mut rule.tail {
        sort_tail_item(t, &vars);
    }
    rule.tail
        .sort_by_cached_key(|t| masked_print_tail(t, &vars));
    // Pass 2: rename every variable (and the `bind_for_<var>` carrier
    // labels that embed one) to CV0, CV1, ... in traversal order.
    let mut namer = Namer {
        vars,
        map: HashMap::new(),
    };
    rename_head(&mut rule.head, &mut namer);
    for t in &mut rule.tail {
        rename_tail_item(t, &mut namer);
    }
    rule
}

struct Namer {
    vars: HashSet<Symbol>,
    map: HashMap<Symbol, Symbol>,
}

impl Namer {
    fn rename(&mut self, v: Symbol) -> Symbol {
        let next = self.map.len();
        *self
            .map
            .entry(v)
            .or_insert_with(|| Symbol::intern(&format!("CV{next}")))
    }
}

/// Rewrite a `bind_for_<var>` carrier-label constant through `f` when its
/// suffix is one of the rule's variables. The planner embeds extraction
/// variable names in these labels, so key normalization must follow them.
fn map_bind_for(
    value: &Value,
    vars: &HashSet<Symbol>,
    f: &mut impl FnMut(Symbol) -> Symbol,
) -> Option<Value> {
    let Value::Str(s) = value else { return None };
    let text = s.as_str();
    let suffix = text.strip_prefix("bind_for_")?;
    let sym = Symbol::intern(suffix);
    if !vars.contains(&sym) {
        return None;
    }
    Some(Value::str(&format!("bind_for_{}", f(sym))))
}

fn sort_head(head: &mut Head, vars: &HashSet<Symbol>) {
    if let Head::Pattern(p) = head {
        sort_pattern(p, vars);
    }
}

fn sort_tail_item(t: &mut TailItem, vars: &HashSet<Symbol>) {
    if let TailItem::Match { pattern, .. } = t {
        sort_pattern(pattern, vars);
    }
}

fn sort_pattern(p: &mut Pattern, vars: &HashSet<Symbol>) {
    if let PatValue::Set(sp) = &mut p.value {
        for e in &mut sp.elements {
            if let SetElem::Pattern(q) | SetElem::Wildcard(q) = e {
                sort_pattern(q, vars);
            }
        }
        sp.elements
            .sort_by_cached_key(|e| masked_print_elem(e, vars));
        if let Some(r) = &mut sp.rest {
            for c in &mut r.conditions {
                sort_pattern(c, vars);
            }
            r.conditions
                .sort_by_cached_key(|c| masked_print_pattern(c, vars));
        }
    }
}

fn masked_print_pattern(p: &Pattern, vars: &HashSet<Symbol>) -> String {
    let mut mask = |_: Symbol| Symbol::intern("MASKED");
    msl::printer::pattern(&map_pattern(p, vars, &mut mask))
}

fn masked_print_elem(e: &SetElem, vars: &HashSet<Symbol>) -> String {
    match e {
        SetElem::Pattern(p) => format!("p:{}", masked_print_pattern(p, vars)),
        SetElem::Wildcard(p) => format!("w:{}", masked_print_pattern(p, vars)),
        SetElem::Var(_) => "v:".to_string(),
    }
}

fn masked_print_tail(t: &TailItem, vars: &HashSet<Symbol>) -> String {
    let mut mask = |_: Symbol| Symbol::intern("MASKED");
    match t {
        TailItem::Match { pattern, source } => format!(
            "m:{}@{}",
            msl::printer::pattern(&map_pattern(pattern, vars, &mut mask)),
            source.map(|s| s.as_str().to_string()).unwrap_or_default()
        ),
        TailItem::External { name, args } => {
            let args: Vec<String> = args
                .iter()
                .map(|a| msl::printer::term(&map_term(a, vars, &mut mask), true))
                .collect();
            format!("e:{name}({})", args.join(","))
        }
    }
}

fn map_term(t: &Term, vars: &HashSet<Symbol>, f: &mut impl FnMut(Symbol) -> Symbol) -> Term {
    match t {
        Term::Var(v) => Term::Var(f(*v)),
        Term::Const(v) => match map_bind_for(v, vars, f) {
            Some(mapped) => Term::Const(mapped),
            None => t.clone(),
        },
        Term::Param(p) => Term::Param(*p),
        Term::Func(name, args) => {
            Term::Func(*name, args.iter().map(|a| map_term(a, vars, f)).collect())
        }
    }
}

fn map_pattern(
    p: &Pattern,
    vars: &HashSet<Symbol>,
    f: &mut impl FnMut(Symbol) -> Symbol,
) -> Pattern {
    Pattern {
        obj_var: p.obj_var.map(&mut *f),
        oid: p.oid.as_ref().map(|t| map_term(t, vars, f)),
        label: map_term(&p.label, vars, f),
        typ: p.typ.as_ref().map(|t| map_term(t, vars, f)),
        value: match &p.value {
            PatValue::Term(t) => PatValue::Term(map_term(t, vars, f)),
            PatValue::Set(sp) => PatValue::Set(SetPattern {
                elements: sp
                    .elements
                    .iter()
                    .map(|e| match e {
                        SetElem::Pattern(q) => SetElem::Pattern(map_pattern(q, vars, f)),
                        SetElem::Wildcard(q) => SetElem::Wildcard(map_pattern(q, vars, f)),
                        SetElem::Var(v) => SetElem::Var(f(*v)),
                    })
                    .collect(),
                rest: sp.rest.as_ref().map(|r| RestSpec {
                    var: f(r.var),
                    conditions: r
                        .conditions
                        .iter()
                        .map(|c| map_pattern(c, vars, f))
                        .collect(),
                }),
            }),
        },
    }
}

fn rename_term(t: &mut Term, namer: &mut Namer) {
    let vars = namer.vars.clone();
    *t = map_term(t, &vars, &mut |v| namer.rename(v));
}

fn rename_pattern(p: &mut Pattern, namer: &mut Namer) {
    let vars = namer.vars.clone();
    *p = map_pattern(p, &vars, &mut |v| namer.rename(v));
}

fn rename_head(head: &mut Head, namer: &mut Namer) {
    match head {
        Head::Var(v) => *v = namer.rename(*v),
        Head::Pattern(p) => rename_pattern(p, namer),
    }
}

fn rename_tail_item(t: &mut TailItem, namer: &mut Namer) {
    match t {
        TailItem::Match { pattern, .. } => rename_pattern(pattern, namer),
        TailItem::External { args, .. } => {
            for a in args {
                rename_term(a, namer);
            }
        }
    }
}

// ---- containment probe --------------------------------------------------

/// How a cached (more general) query maps onto a new (more specific) one.
#[derive(Clone, Default)]
struct Mapping {
    /// Cached variable → new-query variable (bijective).
    rho: HashMap<Symbol, Symbol>,
    /// Inverse of `rho`, enforcing injectivity.
    rho_inv: HashMap<Symbol, Symbol>,
    /// Cached variable → constant the new query pins it to.
    sigma: HashMap<Symbol, Value>,
    /// Rest conditions the new query adds under a cached rest variable:
    /// the carrier set must contain a member matching each of these.
    extra_rest: Vec<(Symbol, Pattern)>,
}

impl Mapping {
    fn bind_var(&mut self, cached: Symbol, new: Symbol) -> bool {
        if self.sigma.contains_key(&cached) {
            return false;
        }
        match (self.rho.get(&cached), self.rho_inv.get(&new)) {
            (Some(&n), Some(&c)) => n == new && c == cached,
            (None, None) => {
                self.rho.insert(cached, new);
                self.rho_inv.insert(new, cached);
                true
            }
            _ => false,
        }
    }

    fn bind_const(&mut self, cached: Symbol, value: &Value) -> bool {
        if self.rho.contains_key(&cached) {
            return false;
        }
        match self.sigma.get(&cached) {
            Some(existing) => atomic_eq(existing, value),
            None => {
                self.sigma.insert(cached, value.clone());
                true
            }
        }
    }
}

/// Does the cached query contain the new one, and how? `None` when the
/// probe cannot *prove* containment (the sound default).
fn specialize_match_rule(new: &Rule, cached: &Rule) -> Option<Mapping> {
    if new.tail.len() != cached.tail.len() {
        return None;
    }
    let mut m = Mapping::default();
    // Tails are matched pairwise in order: the planner emits source-query
    // tails deterministically, and the probe only needs to catch the
    // common specialization cases — order permutations across tail items
    // simply miss.
    for (tn, tc) in new.tail.iter().zip(&cached.tail) {
        match (tn, tc) {
            (
                TailItem::Match {
                    pattern: pn,
                    source: sn,
                },
                TailItem::Match {
                    pattern: pc,
                    source: sc,
                },
            ) => {
                if sn != sc || !specialize_pattern(pn, pc, &mut m) {
                    return None;
                }
            }
            // Source queries carry no external predicates; anything else
            // is out of scope for the probe.
            _ => return None,
        }
    }
    if !extra_rest_vars_are_local(&m, new) {
        return None;
    }
    Some(m)
}

/// `serve()` evaluates each extra rest condition independently with empty
/// bindings, so a condition variable is only constrained *within* that
/// condition (`match_pattern` threads bindings inside one pattern). The
/// live matcher instead threads bindings across all elements and
/// conditions of the query: a variable the query binds elsewhere — in a
/// set element, the head, or another rest condition — would constrain the
/// condition there but not here, and the hit could return a superset of
/// the correct answer. Containment is therefore rejected unless every
/// variable of every extra condition occurs *only* inside that condition.
fn extra_rest_vars_are_local(m: &Mapping, new: &Rule) -> bool {
    if m.extra_rest.is_empty() {
        return true;
    }
    let mut rule_counts: HashMap<Symbol, usize> = HashMap::new();
    count_vars_head(&new.head, &mut rule_counts);
    for t in &new.tail {
        count_vars_tail(t, &mut rule_counts);
    }
    for (_, cond) in &m.extra_rest {
        let mut cond_counts: HashMap<Symbol, usize> = HashMap::new();
        count_vars_pattern(cond, &mut cond_counts);
        for (v, n) in &cond_counts {
            if rule_counts.get(v) != Some(n) {
                return false;
            }
        }
    }
    true
}

fn count_vars_term(t: &Term, counts: &mut HashMap<Symbol, usize>) {
    match t {
        Term::Var(v) => *counts.entry(*v).or_insert(0) += 1,
        Term::Const(_) | Term::Param(_) => {}
        Term::Func(_, args) => {
            for a in args {
                count_vars_term(a, counts);
            }
        }
    }
}

fn count_vars_pattern(p: &Pattern, counts: &mut HashMap<Symbol, usize>) {
    if let Some(v) = p.obj_var {
        *counts.entry(v).or_insert(0) += 1;
    }
    if let Some(t) = &p.oid {
        count_vars_term(t, counts);
    }
    count_vars_term(&p.label, counts);
    if let Some(t) = &p.typ {
        count_vars_term(t, counts);
    }
    match &p.value {
        PatValue::Term(t) => count_vars_term(t, counts),
        PatValue::Set(sp) => {
            for e in &sp.elements {
                match e {
                    SetElem::Pattern(q) | SetElem::Wildcard(q) => count_vars_pattern(q, counts),
                    SetElem::Var(v) => *counts.entry(*v).or_insert(0) += 1,
                }
            }
            if let Some(r) = &sp.rest {
                *counts.entry(r.var).or_insert(0) += 1;
                for c in &r.conditions {
                    count_vars_pattern(c, counts);
                }
            }
        }
    }
}

fn count_vars_head(head: &Head, counts: &mut HashMap<Symbol, usize>) {
    match head {
        Head::Var(v) => *counts.entry(*v).or_insert(0) += 1,
        Head::Pattern(p) => count_vars_pattern(p, counts),
    }
}

fn count_vars_tail(t: &TailItem, counts: &mut HashMap<Symbol, usize>) {
    match t {
        TailItem::Match { pattern, .. } => count_vars_pattern(pattern, counts),
        TailItem::External { args, .. } => {
            for a in args {
                count_vars_term(a, counts);
            }
        }
    }
}

/// Match a new pattern against a cached (candidate-general) one,
/// extending `m`. True iff every object matching `pn` also matches `pc`
/// under the recorded variable specializations.
fn specialize_pattern(pn: &Pattern, pc: &Pattern, m: &mut Mapping) -> bool {
    match (pn.obj_var, pc.obj_var) {
        (None, None) => {}
        (Some(vn), Some(vc)) => {
            if !m.bind_var(vc, vn) {
                return false;
            }
        }
        _ => return false,
    }
    match (&pn.oid, &pc.oid) {
        (None, None) => {}
        (Some(tn), Some(tc)) => {
            if !specialize_term(tn, tc, m) {
                return false;
            }
        }
        _ => return false,
    }
    if !specialize_term(&pn.label, &pc.label, m) {
        return false;
    }
    match (&pn.typ, &pc.typ) {
        (None, None) => {}
        (Some(tn), Some(tc)) => {
            if !specialize_term(tn, tc, m) {
                return false;
            }
        }
        _ => return false,
    }
    match (&pn.value, &pc.value) {
        (PatValue::Term(tn), PatValue::Term(tc)) => specialize_term(tn, tc, m),
        (PatValue::Set(sn), PatValue::Set(sc)) => specialize_set(sn, sc, m),
        _ => false,
    }
}

fn specialize_term(tn: &Term, tc: &Term, m: &mut Mapping) -> bool {
    match (tn, tc) {
        (Term::Var(vn), Term::Var(vc)) => m.bind_var(*vc, *vn),
        (Term::Const(k), Term::Var(vc)) => m.bind_const(*vc, k),
        (Term::Const(a), Term::Const(b)) => atomic_eq(a, b),
        (Term::Param(a), Term::Param(b)) => a == b,
        (Term::Func(fa, aa), Term::Func(fb, ab)) => {
            fa == fb
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| specialize_term(x, y, m))
        }
        // A cached constant cannot cover a new variable (§3.2: a constant
        // only covers an equal constant).
        _ => false,
    }
}

/// Set patterns: every cached element must generalize a distinct new
/// element, and vice versa (a perfect matching, found by backtracking —
/// the sets are tiny). Leftover *rest conditions* of the new query are
/// legal: they become local filters over the cached rest carrier.
fn specialize_set(sn: &SetPattern, sc: &SetPattern, m: &mut Mapping) -> bool {
    if sn.elements.len() != sc.elements.len() {
        return false;
    }
    if !match_elements(&sn.elements, &sc.elements, m) {
        return false;
    }
    match (&sn.rest, &sc.rest) {
        (None, None) => true,
        // Cached rest with no conditions does not restrict the answer; a
        // new query without the rest variable asks for the same objects.
        (None, Some(rc)) => rc.conditions.is_empty(),
        (Some(_), None) => false,
        (Some(rn), Some(rc)) => {
            if !m.bind_var(rc.var, rn.var) {
                return false;
            }
            // Each cached condition must generalize a distinct new one;
            // unmatched new conditions become local rest filters.
            let mut used = vec![false; rn.conditions.len()];
            if !match_conditions(&rc.conditions, &rn.conditions, &mut used, 0, m) {
                return false;
            }
            for (i, cond) in rn.conditions.iter().enumerate() {
                if !used[i] {
                    m.extra_rest.push((rc.var, cond.clone()));
                }
            }
            true
        }
    }
}

/// Backtracking perfect matching of new elements onto cached elements.
fn match_elements(new: &[SetElem], cached: &[SetElem], m: &mut Mapping) -> bool {
    fn go(
        i: usize,
        new: &[SetElem],
        cached: &[SetElem],
        used: &mut [bool],
        m: &mut Mapping,
    ) -> bool {
        if i == cached.len() {
            return true;
        }
        for (j, en) in new.iter().enumerate() {
            if used[j] {
                continue;
            }
            let snapshot = m.clone();
            let ok = match (en, &cached[i]) {
                (SetElem::Pattern(pn), SetElem::Pattern(pc)) => specialize_pattern(pn, pc, m),
                (SetElem::Wildcard(pn), SetElem::Wildcard(pc)) => specialize_pattern(pn, pc, m),
                (SetElem::Var(vn), SetElem::Var(vc)) => m.bind_var(*vc, *vn),
                _ => false,
            };
            if ok {
                used[j] = true;
                if go(i + 1, new, cached, used, m) {
                    return true;
                }
                used[j] = false;
            }
            *m = snapshot;
        }
        false
    }
    let mut used = vec![false; new.len()];
    go(0, new, cached, &mut used, m)
}

/// Backtracking match of cached rest conditions onto distinct new ones,
/// marking which new conditions were consumed.
fn match_conditions(
    cached: &[Pattern],
    new: &[Pattern],
    used: &mut [bool],
    i: usize,
    m: &mut Mapping,
) -> bool {
    if i == cached.len() {
        return true;
    }
    for (j, cn) in new.iter().enumerate() {
        if used[j] {
            continue;
        }
        let snapshot = m.clone();
        if specialize_pattern(cn, &cached[i], m) {
            used[j] = true;
            if match_conditions(cached, new, used, i + 1, m) {
                return true;
            }
            used[j] = false;
        }
        *m = snapshot;
    }
    false
}

// ---- serving ------------------------------------------------------------

/// What pass 1 of [`serve`] resolved for one extraction slot of one
/// surviving row; pass 2 turns it into a [`BoundValue`] infallibly.
enum Extraction {
    /// Object-kind carrier: the (validated non-empty) set's first member.
    Obj(oem::ObjId),
    /// Scalar-kind set carrier: every member.
    Set(Vec<oem::ObjId>),
    /// Atomic carrier value.
    Atom(Value),
}

/// Filter a cached answer through the mapping and extract binding rows
/// for the new query's variables, deep-copying the surviving carriers
/// into the chain's memory. `None` on any structural surprise — the
/// caller treats that as "this entry cannot serve the query". Tier-
/// agnostic: the hot path passes the resident answer, the warm path the
/// store it just re-read off disk.
///
/// Two passes: every row is filtered and validated *before* anything is
/// copied, so a structural surprise in a late row cannot leave earlier
/// rows' objects orphaned in the chain's memory. (A bail-out here sends
/// the query to the live path, where e.g. an empty Object-kind carrier
/// raises the same hard error it always did.)
fn serve(
    extract: &[ExtractVar],
    answer: &ObjectStore,
    m: &Mapping,
    vars: &[ExtractVar],
    memory: &mut ObjectStore,
) -> Option<Vec<Vec<BoundValue>>> {
    // Every variable the new query extracts must map onto one the cached
    // answer exported, with the same kind.
    let mut carrier_for: Vec<(Symbol, VarKind)> = Vec::with_capacity(vars.len());
    for v in vars {
        let cached_var = *m.rho_inv.get(&v.var)?;
        let cached_kind = extract
            .iter()
            .find(|e| e.var == cached_var)
            .map(|e| e.kind)?;
        if cached_kind != v.kind {
            return None;
        }
        carrier_for.push((cached_var, v.kind));
    }
    // Every pinned variable and rest-filter variable must have a carrier.
    for pinned in m.sigma.keys() {
        extract.iter().find(|e| e.var == *pinned)?;
    }
    for (rest_var, _) in &m.extra_rest {
        extract.iter().find(|e| e.var == *rest_var)?;
    }
    // Pass 1: filter and validate, touching nothing but the cached answer.
    let mut kept: Vec<Vec<Extraction>> = Vec::new();
    for &top in answer.top_level() {
        // σ filter: the carrier for a pinned variable must hold exactly
        // the pinned constant.
        let mut keep = true;
        for (pinned, value) in &m.sigma {
            let carrier = find_carrier(answer, top, *pinned)?;
            match &answer.get(carrier).value {
                Value::Set(_) => return None, // non-atomic pin: cannot filter
                atomic => {
                    if !atomic_eq(atomic, value) {
                        keep = false;
                        break;
                    }
                }
            }
        }
        // Rest filters: some member of the carrier set must match each
        // extra condition (`wrappers/eval.rs`-style tail matching, the
        // same semantics as the executor's RestFilter node; sound under
        // empty bindings because the probe rejected non-local variables).
        if keep {
            for (rest_var, cond) in &m.extra_rest {
                let carrier = find_carrier(answer, top, *rest_var)?;
                let Value::Set(ids) = &answer.get(carrier).value else {
                    return None;
                };
                let matches = ids
                    .iter()
                    .any(|&id| !match_pattern(answer, id, cond, &Bindings::new()).is_empty());
                if !matches {
                    keep = false;
                    break;
                }
            }
        }
        if !keep {
            continue;
        }
        let mut row = Vec::with_capacity(carrier_for.len());
        for (cached_var, kind) in &carrier_for {
            let carrier = find_carrier(answer, top, *cached_var)?;
            let extraction = match (&answer.get(carrier).value, kind) {
                (Value::Set(kids), VarKind::Object) => Extraction::Obj(*kids.first()?),
                (Value::Set(kids), VarKind::Scalar) => Extraction::Set(kids.clone()),
                (atomic, _) => Extraction::Atom(atomic.clone()),
            };
            row.push(extraction);
        }
        kept.push(row);
    }
    // Pass 2: every row validated — now copy into the chain's memory.
    let rows = kept
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|e| match e {
                    Extraction::Obj(id) => BoundValue::Obj(copy::deep_copy(answer, id, memory)),
                    Extraction::Set(kids) => BoundValue::ObjSet(
                        kids.iter()
                            .map(|&k| copy::deep_copy(answer, k, memory))
                            .collect(),
                    ),
                    Extraction::Atom(v) => BoundValue::Atom(v),
                })
                .collect()
        })
        .collect();
    Some(rows)
}

/// The `bind_for_<var>` carrier child of a top-level answer object.
fn find_carrier(store: &ObjectStore, top: oem::ObjId, var: Symbol) -> Option<oem::ObjId> {
    let label = Symbol::intern(&format!("bind_for_{var}"));
    store
        .children(top)
        .iter()
        .copied()
        .find(|&c| store.get(c).label == label)
}

#[cfg(test)]
mod tests;
