//! The warm tier: an append-only on-disk answer log that survives restarts.
//!
//! Layout under `--cache-dir`: numbered segment files `seg-NNNNNNNN.seg`,
//! each a header plus a run of checksummed records. The cache
//! write-through appends every inserted answer here, so the hot tier can
//! drop entries (demotion) without losing them, and a restarted process
//! re-opens the directory and serves yesterday's answers without paying
//! the source round-trips again.
//!
//! ## On-disk format, version 1
//!
//! ```text
//! segment  := header record*
//! header   := magic:8 = "MMWARM01"  version:u32le = 1
//! record   := len:u32le  crc:u32le  payload[len]      (crc = CRC-32/IEEE of payload)
//! payload  := field*6, each  flen:u32le bytes[flen]
//! fields   := source, key, rule_text, extract_spec, meta, answer_text
//! meta     := "inserted_ms unit_cost_ms hit_boost"    (ASCII, space-separated)
//! ```
//!
//! Queries and answers travel as MSL/OEM text ([`msl::printer::rule`],
//! [`oem::printer::print_store`]) — the same canonical text the cache key
//! is built from — so the format is stable across internal refactors and
//! debuggable with `strings`. The label footprint is *not* stored; it is
//! recomputed from the parsed rule on open, which keeps the two
//! definitions from drifting.
//!
//! ## Recovery
//!
//! [`WarmTier::open`] keeps the **valid prefix** of each segment: it
//! stops at the first record whose length is implausible, whose checksum
//! fails, or whose payload does not parse — exactly what a torn final
//! write (crash mid-append) produces. A segment with a bad header is
//! skipped whole. Later records win over earlier ones with the same
//! `(source, key)`; superseded and invalidated records become garbage
//! that [`WarmTier::compact`] reclaims, rewriting live entries in value
//! order and dropping the lowest-value ones past the byte budget.
//! Appends after open always start a fresh segment, so a torn tail is
//! never appended onto.

use super::keyidx::{rule_labels, LabelFootprint};
use crate::graph::{ExtractVar, VarKind};
use msl::Rule;
use oem::Symbol;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment header magic; the trailing `01` is the format version gate —
/// readers reject anything else.
const MAGIC: &[u8; 8] = b"MMWARM01";
/// On-disk format version written into (and required from) every header.
const VERSION: u32 = 1;
/// Header size: magic + version.
const HEADER_LEN: u64 = 12;
/// Roll to a new segment once the active one crosses this many bytes.
const SEG_ROLL_BYTES: u64 = 1 << 20;
/// Sanity ceiling for a single record payload (a cached answer far past
/// this is garbage or corruption, not data).
const MAX_RECORD_BYTES: u32 = 64 << 20;

/// CRC-32/IEEE (the zlib polynomial), bitwise — small and dependency-free;
/// segment records are the only consumer.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An index entry for one durable answer: everything needed to probe
/// (parsed query, footprint, score inputs) stays in memory; the answer
/// itself stays on disk at `seg`/`offset` until a hit reads it back.
pub(crate) struct WarmEntry {
    /// Canonical cache key ([`super::canonical_key`]).
    pub key: String,
    /// The cached source query, parsed (containment probes need the AST).
    pub query: Rule,
    /// Variables the executor extracts from served answers.
    pub extract: Vec<ExtractVar>,
    /// Label footprint for delta-driven invalidation.
    pub footprint: LabelFootprint,
    /// Insert wall-clock per the cache's [`Clock`](wrappers::fault::Clock).
    pub inserted_ms: u64,
    /// Source per-call latency EWMA snapshotted at insert (ms).
    pub unit_cost_ms: f64,
    /// Per-entry hit EWMA (refreshed in memory on promotion; the on-disk
    /// copy is only as fresh as the last append/compaction).
    pub hit_boost: f64,
    /// Serialized answer size in bytes.
    pub size_bytes: usize,
    /// Segment id holding the record.
    seg: u64,
    /// Byte offset of the record (its `len` field) within the segment.
    offset: u64,
}

impl WarmEntry {
    /// Value score: expected ms saved per resident byte (same formula as
    /// the hot tier — see [`super::hot`]). Compaction keeps high scores.
    pub fn value_score(&self) -> f64 {
        self.unit_cost_ms * self.hit_boost / self.size_bytes.max(1) as f64
    }
}

/// Operational stats for `medmaker cache stats` and the metrics gauges.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmStats {
    /// Live (indexed) entries.
    pub entries: usize,
    /// Sum of live answer bytes (what the `warm_bytes` gauge reports).
    pub live_bytes: u64,
    /// Total bytes of all segment files, garbage included.
    pub disk_bytes: u64,
    /// Segment files on disk.
    pub segments: usize,
    /// Segments skipped at open for a bad header (wrong magic/version).
    pub corrupt_segments: usize,
    /// Segments whose tail was truncated at open (torn final write).
    pub torn_segments: usize,
}

/// Result of one [`WarmTier::compact`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactStats {
    /// Entries rewritten into the new segments.
    pub kept: usize,
    /// Live entries dropped for being past the byte budget (lowest value
    /// first) or unreadable.
    pub dropped: usize,
    /// Segment bytes before compaction.
    pub bytes_before: u64,
    /// Segment bytes after.
    pub bytes_after: u64,
}

/// The file-backed warm tier. See the module docs for format and
/// recovery semantics.
pub struct WarmTier {
    dir: PathBuf,
    /// `source -> key -> entry`; the map keyed by canonical key is what
    /// makes "later records win" a one-line insert.
    index: BTreeMap<Symbol, BTreeMap<String, WarmEntry>>,
    next_seg: u64,
    /// Active append target: `(segment id, handle, bytes written)`.
    active: Option<(u64, File, u64)>,
    disk_bytes: u64,
    corrupt_segments: usize,
    torn_segments: usize,
}

impl WarmTier {
    /// Open (creating if absent) the warm tier under `dir`, indexing the
    /// valid prefix of every segment.
    pub fn open(dir: &Path) -> std::io::Result<WarmTier> {
        fs::create_dir_all(dir)?;
        let mut tier = WarmTier {
            dir: dir.to_path_buf(),
            index: BTreeMap::new(),
            next_seg: 1,
            active: None,
            disk_bytes: 0,
            corrupt_segments: 0,
            torn_segments: 0,
        };
        let mut seg_ids = Vec::new();
        for dirent in fs::read_dir(dir)? {
            let name = dirent?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|r| r.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                seg_ids.push(id);
            }
        }
        seg_ids.sort_unstable();
        for id in seg_ids {
            tier.scan_segment(id)?;
            tier.next_seg = tier.next_seg.max(id + 1);
        }
        Ok(tier)
    }

    /// The directory this tier lives under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn seg_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id:08}.seg"))
    }

    /// Index one segment's valid prefix; bad header skips the file, a bad
    /// record truncates the scan (torn tail).
    fn scan_segment(&mut self, id: u64) -> std::io::Result<()> {
        let bytes = fs::read(self.seg_path(id))?;
        self.disk_bytes += bytes.len() as u64;
        if bytes.len() < HEADER_LEN as usize
            || &bytes[..8] != MAGIC
            || u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) != VERSION
        {
            self.corrupt_segments += 1;
            return Ok(());
        }
        let mut at = HEADER_LEN as usize;
        let mut torn = false;
        while at < bytes.len() {
            match decode_record(&bytes[at..]) {
                Some((rec, consumed)) => {
                    self.index_record(id, at as u64, rec);
                    at += consumed;
                }
                None => {
                    torn = true;
                    break;
                }
            }
        }
        if torn {
            self.torn_segments += 1;
        }
        Ok(())
    }

    /// Insert a decoded record into the index; later records replace
    /// earlier same-key ones. A record with an empty rule text is a
    /// **tombstone**: it undoes an earlier record (one key, or the whole
    /// source when the key is empty too), which is how invalidations
    /// survive a restart of the append-only log.
    fn index_record(&mut self, seg: u64, offset: u64, rec: Record) {
        if rec.rule_text.is_empty() {
            let source = oem::sym(&rec.source);
            if rec.key.is_empty() {
                self.index.remove(&source);
            } else if let Some(shard) = self.index.get_mut(&source) {
                shard.remove(&rec.key);
                if shard.is_empty() {
                    self.index.remove(&source);
                }
            }
            return;
        }
        let Some(entry) = rec.to_entry(seg, offset) else {
            // CRC-valid but semantically unparseable (e.g. written by a
            // newer minor revision): ignore the record, keep scanning.
            return;
        };
        let source = oem::sym(&rec.source);
        self.index
            .entry(source)
            .or_default()
            .insert(entry.key.clone(), entry);
    }

    /// Append one answer. Takes serialized texts (the facade already has
    /// them for sizing) plus the parsed query for the index entry.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn append(
        &mut self,
        source: Symbol,
        key: &str,
        query: &Rule,
        extract: &[ExtractVar],
        inserted_ms: u64,
        unit_cost_ms: f64,
        hit_boost: f64,
        answer_text: &str,
    ) -> std::io::Result<()> {
        let payload = encode_payload(
            &source.as_str(),
            key,
            &msl::printer::rule(query),
            &extract_to_spec(extract),
            &format!("{inserted_ms} {unit_cost_ms} {hit_boost}"),
            answer_text,
        );
        let (seg, offset) = self.write_record(&payload)?;
        let entry = WarmEntry {
            key: key.to_string(),
            query: query.clone(),
            extract: extract.to_vec(),
            footprint: rule_labels(query),
            inserted_ms,
            unit_cost_ms,
            hit_boost,
            size_bytes: answer_text.len(),
            seg,
            offset,
        };
        self.index
            .entry(source)
            .or_default()
            .insert(entry.key.clone(), entry);
        Ok(())
    }

    /// Append a tombstone undoing earlier records: one key, or the whole
    /// source when `key` is `None`. The caller has already dropped the
    /// index entries; this makes the removal durable across reopen.
    pub(crate) fn append_tombstone(
        &mut self,
        source: Symbol,
        key: Option<&str>,
    ) -> std::io::Result<()> {
        let payload = encode_payload(&source.as_str(), key.unwrap_or(""), "", "", "", "");
        self.write_record(&payload)?;
        Ok(())
    }

    /// Frame `payload` as a record and append it to the active segment
    /// (rolling or lazily creating one); returns `(segment, offset)`.
    fn write_record(&mut self, payload: &[u8]) -> std::io::Result<(u64, u64)> {
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);

        let needs_roll = match &self.active {
            Some((_, _, written)) => *written >= SEG_ROLL_BYTES,
            None => true,
        };
        if needs_roll {
            let id = self.next_seg;
            self.next_seg += 1;
            let mut file = OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(self.seg_path(id))?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            self.disk_bytes += HEADER_LEN;
            self.active = Some((id, file, HEADER_LEN));
        }
        let (seg, file, written) = self.active.as_mut().expect("active segment");
        let offset = *written;
        file.write_all(&record)?;
        file.flush()?;
        *written += record.len() as u64;
        self.disk_bytes += record.len() as u64;
        Ok((*seg, offset))
    }

    /// Live entries for one source, if any.
    pub(crate) fn entries(&self, source: Symbol) -> Option<&BTreeMap<String, WarmEntry>> {
        self.index.get(&source)
    }

    /// Mutable entry access (promotion refreshes `hit_boost` in memory).
    pub(crate) fn entry_mut(&mut self, source: Symbol, key: &str) -> Option<&mut WarmEntry> {
        self.index.get_mut(&source)?.get_mut(key)
    }

    /// Read an entry's answer back off disk, re-verifying the checksum —
    /// `None` means the record went bad since open (disk fault), which
    /// the cache treats as a miss.
    pub(crate) fn read_answer(&self, entry: &WarmEntry) -> Option<oem::ObjectStore> {
        let mut file = File::open(self.seg_path(entry.seg)).ok()?;
        file.seek(SeekFrom::Start(entry.offset)).ok()?;
        let mut head = [0u8; 8];
        file.read_exact(&mut head).ok()?;
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
        if len > MAX_RECORD_BYTES {
            return None;
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload).ok()?;
        if crc32(&payload) != crc {
            return None;
        }
        let fields = split_fields(&payload, 6)?;
        let answer_text = std::str::from_utf8(fields[5]).ok()?;
        oem::parser::parse_store(answer_text).ok()
    }

    /// Drop a whole source from the index; returns `(entries, bytes)`
    /// dropped. Disk records become garbage until compaction.
    pub(crate) fn remove_source(&mut self, source: Symbol) -> (usize, usize) {
        match self.index.remove(&source) {
            Some(shard) => (
                shard.len(),
                shard.values().map(|e| e.size_bytes).sum::<usize>(),
            ),
            None => (0, 0),
        }
    }

    /// Drop entries of `source` failing `keep`; returns `(entries, bytes)`
    /// dropped.
    pub(crate) fn retain(
        &mut self,
        source: Symbol,
        mut keep: impl FnMut(&WarmEntry) -> bool,
    ) -> (usize, usize) {
        let Some(shard) = self.index.get_mut(&source) else {
            return (0, 0);
        };
        let before = shard.len();
        let mut freed = 0;
        shard.retain(|_, e| {
            let k = keep(e);
            if !k {
                freed += e.size_bytes;
            }
            k
        });
        let after = shard.len();
        if shard.is_empty() {
            self.index.remove(&source);
        }
        (before - after, freed)
    }

    /// Operational stats (see [`WarmStats`]).
    pub fn stats(&self) -> WarmStats {
        WarmStats {
            entries: self.index.values().map(BTreeMap::len).sum(),
            live_bytes: self
                .index
                .values()
                .flat_map(|s| s.values())
                .map(|e| e.size_bytes as u64)
                .sum(),
            disk_bytes: self.disk_bytes,
            segments: self.segment_ids().len(),
            corrupt_segments: self.corrupt_segments,
            torn_segments: self.torn_segments,
        }
    }

    /// Total bytes of all segment files (garbage included) — the
    /// auto-compaction trigger compares this against the budget.
    pub(crate) fn disk_bytes(&self) -> u64 {
        self.disk_bytes
    }

    fn segment_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        if let Ok(dirents) = fs::read_dir(&self.dir) {
            for dirent in dirents.flatten() {
                let name = dirent.file_name();
                let name = name.to_string_lossy();
                if let Some(id) = name
                    .strip_prefix("seg-")
                    .and_then(|r| r.strip_suffix(".seg"))
                    .and_then(|digits| digits.parse::<u64>().ok())
                {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Delete every segment and empty the index.
    pub fn clear(&mut self) -> std::io::Result<()> {
        for id in self.segment_ids() {
            fs::remove_file(self.seg_path(id))?;
        }
        self.index.clear();
        self.active = None;
        self.disk_bytes = 0;
        Ok(())
    }

    /// Rewrite live entries into fresh segments in value order (highest
    /// first), dropping the lowest-value entries once the rewritten bytes
    /// would exceed `budget_bytes`, then delete the old segments. This is
    /// both garbage collection (superseded/invalidated records go away)
    /// and the warm tier's capacity eviction.
    pub fn compact(&mut self, budget_bytes: u64) -> std::io::Result<CompactStats> {
        let bytes_before = self.disk_bytes;
        let old_ids = self.segment_ids();

        // Pull every live record back through the checksum gate, pairing
        // the index entry with its serialized answer.
        let mut live: Vec<(Symbol, WarmEntry, String)> = Vec::new();
        let mut dropped = 0;
        let sources: Vec<Symbol> = self.index.keys().copied().collect();
        for source in sources {
            let shard = self.index.remove(&source).unwrap_or_default();
            for (_, entry) in shard {
                match self.read_answer(&entry) {
                    Some(store) => {
                        let text = oem::printer::print_store(&store);
                        live.push((source, entry, text));
                    }
                    None => dropped += 1,
                }
            }
        }
        live.sort_by(|a, b| {
            b.1.value_score()
                .partial_cmp(&a.1.value_score())
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Rewrite survivors into fresh segments via the normal append
        // path (which re-indexes them), budget permitting.
        self.active = None;
        let budget_start = self.disk_bytes;
        let mut kept = 0;
        for (source, entry, answer_text) in live {
            let record_cost = (answer_text.len() + 128) as u64; // field framing slack
            if self.disk_bytes - budget_start + record_cost > budget_bytes && kept > 0 {
                dropped += 1;
                continue;
            }
            self.append(
                source,
                &entry.key,
                &entry.query,
                &entry.extract,
                entry.inserted_ms,
                entry.unit_cost_ms,
                entry.hit_boost,
                &answer_text,
            )?;
            kept += 1;
        }

        for id in old_ids {
            let path = self.seg_path(id);
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path)?;
            self.disk_bytes = self.disk_bytes.saturating_sub(len);
        }
        Ok(CompactStats {
            kept,
            dropped,
            bytes_before,
            bytes_after: self.disk_bytes,
        })
    }
}

/// A decoded on-disk record, pre-index.
struct Record {
    source: String,
    key: String,
    rule_text: String,
    extract_spec: String,
    meta: String,
    answer_len: usize,
}

impl Record {
    /// Parse the texts into an index entry; `None` rejects records whose
    /// rule/extract/meta no longer parse (kept out of the index, scan
    /// continues — the bytes were checksum-valid, just not understood).
    fn to_entry(&self, seg: u64, offset: u64) -> Option<WarmEntry> {
        let query = msl::parse_rule(&self.rule_text).ok()?;
        let extract = extract_from_spec(&self.extract_spec)?;
        let mut meta = self.meta.split_whitespace();
        let inserted_ms: u64 = meta.next()?.parse().ok()?;
        let unit_cost_ms: f64 = meta.next()?.parse().ok()?;
        let hit_boost: f64 = meta.next()?.parse().ok()?;
        let footprint = rule_labels(&query);
        Some(WarmEntry {
            key: self.key.clone(),
            query,
            extract,
            footprint,
            inserted_ms,
            unit_cost_ms,
            hit_boost,
            size_bytes: self.answer_len,
            seg,
            offset,
        })
    }
}

/// Decode one record at the head of `bytes`; `Some((record, consumed))`
/// or `None` on any framing/checksum/UTF-8 violation (torn tail).
fn decode_record(bytes: &[u8]) -> Option<(Record, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if len > MAX_RECORD_BYTES || bytes.len() < 8 + len as usize {
        return None;
    }
    let payload = &bytes[8..8 + len as usize];
    if crc32(payload) != crc {
        return None;
    }
    let fields = split_fields(payload, 6)?;
    let text = |i: usize| std::str::from_utf8(fields[i]).ok().map(str::to_string);
    Some((
        Record {
            source: text(0)?,
            key: text(1)?,
            rule_text: text(2)?,
            extract_spec: text(3)?,
            meta: text(4)?,
            answer_len: fields[5].len(),
        },
        8 + len as usize,
    ))
}

/// Split a payload into exactly `n` length-prefixed fields.
fn split_fields(payload: &[u8], n: usize) -> Option<Vec<&[u8]>> {
    let mut fields = Vec::with_capacity(n);
    let mut at = 0;
    for _ in 0..n {
        if payload.len() < at + 4 {
            return None;
        }
        let flen = u32::from_le_bytes([
            payload[at],
            payload[at + 1],
            payload[at + 2],
            payload[at + 3],
        ]) as usize;
        at += 4;
        if payload.len() < at + flen {
            return None;
        }
        fields.push(&payload[at..at + flen]);
        at += flen;
    }
    if at != payload.len() {
        return None; // trailing garbage is a framing violation
    }
    Some(fields)
}

/// Encode the six payload fields, length-prefixed.
fn encode_payload(
    source: &str,
    key: &str,
    rule_text: &str,
    extract_spec: &str,
    meta: &str,
    answer_text: &str,
) -> Vec<u8> {
    let mut buf = Vec::new();
    for field in [source, key, rule_text, extract_spec, meta, answer_text] {
        buf.extend_from_slice(&(field.len() as u32).to_le_bytes());
        buf.extend_from_slice(field.as_bytes());
    }
    buf
}

/// `"N:s R:o"` — variable name and kind, space-separated.
fn extract_to_spec(extract: &[ExtractVar]) -> String {
    extract
        .iter()
        .map(|e| {
            let kind = match e.kind {
                VarKind::Scalar => 's',
                VarKind::Object => 'o',
            };
            format!("{}:{}", e.var.as_str(), kind)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn extract_from_spec(spec: &str) -> Option<Vec<ExtractVar>> {
    let mut out = Vec::new();
    for item in spec.split_whitespace() {
        let (name, kind) = item.rsplit_once(':')?;
        let kind = match kind {
            "s" => VarKind::Scalar,
            "o" => VarKind::Object,
            _ => return None,
        };
        out.push(ExtractVar {
            var: oem::sym(name),
            kind,
        });
    }
    Some(out)
}
