//! The hot tier: in-memory per-source shards with cost-aware eviction.
//!
//! This is the seed cache's store, factored out of the facade and taught
//! a better eviction policy. Each source keeps a `Vec` of entries in
//! insertion order (oldest first); lookups probe exact keys before
//! containment candidates, newest first, exactly as before.
//!
//! **Eviction** past the per-source capacity is where the tiers earn
//! their keep:
//!
//! * [`EvictionPolicy::CostAware`] (default) evicts the entry with the
//!   lowest *value score* — what one byte of this entry saves per unit
//!   time: `unit_cost_ms × hit_boost / size_bytes`, where `unit_cost_ms`
//!   is the source's observed per-call latency EWMA (snapshotted from
//!   [`crate::stats`] at insert) and `hit_boost` is a per-entry hit EWMA
//!   (seeded from the source's hit-rate EWMA, raised toward 1 on every
//!   hit this entry serves). Big answers from cheap sources that nobody
//!   re-asks go first; small answers from slow sources that keep hitting
//!   stay. Ties fall back to oldest-first, so with no signal (equal
//!   sizes, no hits, unmeasured source) the policy degrades to exactly
//!   the seed's FIFO.
//! * [`EvictionPolicy::Fifo`] is the seed behavior, kept as an ablation
//!   flag (`--cache-fifo`) so benchmarks can compare against it.
//!
//! When a warm tier is configured, the evicted loser **demotes** (the
//! caller drops it from memory knowing the warm tier already holds it)
//! instead of vanishing; without one it is simply gone.

use super::Entry;
use oem::Symbol;
use std::collections::BTreeMap;

/// How the hot tier picks a victim past capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the lowest value score (latency × hit EWMA / bytes); ties
    /// oldest-first. The default.
    #[default]
    CostAware,
    /// Evict the oldest entry (the seed behavior; the ablation flag).
    Fifo,
}

/// The in-memory tier: per-source shards of cached entries.
#[derive(Default)]
pub struct HotTier {
    /// Per-source shards, each in insertion order (oldest first).
    pub(crate) shards: BTreeMap<Symbol, Vec<Entry>>,
}

impl HotTier {
    /// The shard for `source`, if any.
    pub(crate) fn shard(&self, source: Symbol) -> Option<&Vec<Entry>> {
        self.shards.get(&source)
    }

    /// Mutable shard access (hit bookkeeping).
    pub(crate) fn shard_mut(&mut self, source: Symbol) -> Option<&mut Vec<Entry>> {
        self.shards.get_mut(&source)
    }

    /// Resident entries across all shards.
    pub(crate) fn entry_count(&self) -> usize {
        self.shards.values().map(Vec::len).sum()
    }

    /// Insert `entry`, replacing any same-key entry, then evict down to
    /// `capacity`. Returns `(freed_bytes_of_replaced, evicted_entries)`:
    /// the caller settles the byte gauge and decides whether evicted
    /// losers demote (warm tier) or vanish.
    pub(crate) fn insert(
        &mut self,
        source: Symbol,
        entry: Entry,
        capacity: usize,
        policy: EvictionPolicy,
    ) -> (usize, Vec<Entry>) {
        let shard = self.shards.entry(source).or_default();
        let mut freed = 0;
        if let Some(pos) = shard.iter().position(|e| e.key == entry.key) {
            freed += shard.remove(pos).size_bytes;
        }
        shard.push(entry);
        let mut evicted = Vec::new();
        while shard.len() > capacity {
            let victim = match policy {
                EvictionPolicy::Fifo => 0,
                EvictionPolicy::CostAware => {
                    // Lowest value first; stable min so ties evict the
                    // oldest (seed-compatible when nothing differs).
                    let mut best = 0;
                    for (i, e) in shard.iter().enumerate() {
                        if e.value_score() < shard[best].value_score() {
                            best = i;
                        }
                    }
                    best
                }
            };
            evicted.push(shard.remove(victim));
        }
        (freed, evicted)
    }

    /// Drop expired entries of one shard; returns `(count, freed_bytes)`.
    pub(crate) fn expire(&mut self, source: Symbol, ttl_ms: u64, now: u64) -> (usize, usize) {
        let Some(shard) = self.shards.get_mut(&source) else {
            return (0, 0);
        };
        let before = shard.len();
        let mut freed = 0;
        shard.retain(|e| {
            let live = now.saturating_sub(e.inserted_ms) <= ttl_ms;
            if !live {
                freed += e.size_bytes;
            }
            live
        });
        (before - shard.len(), freed)
    }

    /// Remove a whole source shard; returns `(count, freed_bytes)`.
    pub(crate) fn remove_source(&mut self, source: Symbol) -> (usize, usize) {
        match self.shards.remove(&source) {
            Some(shard) => (
                shard.len(),
                shard.iter().map(|e| e.size_bytes).sum::<usize>(),
            ),
            None => (0, 0),
        }
    }

    /// Drop every entry of `source` failing `keep`; returns
    /// `(count, freed_bytes)`.
    pub(crate) fn retain(
        &mut self,
        source: Symbol,
        mut keep: impl FnMut(&Entry) -> bool,
    ) -> (usize, usize) {
        let Some(shard) = self.shards.get_mut(&source) else {
            return (0, 0);
        };
        let before = shard.len();
        let mut freed = 0;
        shard.retain(|e| {
            let k = keep(e);
            if !k {
                freed += e.size_bytes;
            }
            k
        });
        if shard.is_empty() {
            self.shards.remove(&source);
        }
        (
            before - self.shards.get(&source).map_or(0, |s| s.len()),
            freed,
        )
    }

    /// Sum of resident entry sizes (the ground truth the `bytes_cached`
    /// gauge must track exactly; see the accounting property test).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.shards
            .values()
            .flat_map(|s| s.iter())
            .map(|e| e.size_bytes)
            .sum()
    }
}
