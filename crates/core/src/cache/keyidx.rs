//! Delta-driven invalidation: the canonicalized key / label index.
//!
//! Whole-source invalidation ([`crate::Mediator::invalidate_source`])
//! flushes every cached answer a source ever produced, which is the right
//! hammer when a wrapper reloads wholesale but wildly wasteful when one
//! object changes. A [`SourceDelta`] is the scoped alternative: a wrapper
//! (or an operator, over `POST /invalidate`) reports *which* canonical
//! keys or object labels changed, and only cache entries whose query
//! could have observed those objects are dropped.
//!
//! The index side lives on every cached entry: at insert time the entry's
//! query is folded into a **label footprint** ([`rule_labels`]) — the set
//! of constant labels its tail patterns mention, plus a *wildcard* bit
//! for queries whose answers can embed objects of labels the query never
//! names (variable labels, rest variables). Matching
//! ([`SourceDelta::matches`]) is deliberately over-approximate: a false
//! positive costs one redundant round-trip, a false negative would serve
//! stale data, so any structural doubt invalidates.

use msl::{PatValue, Pattern, Rule, SetElem, TailItem, Term};
use oem::Symbol;
use std::collections::BTreeSet;

/// A change report for one source: "objects with these labels / answers
/// under these canonical keys may have changed". Empty `labels` *and*
/// empty `keys` mean the delta is unscoped — the whole source is
/// invalidated, exactly like
/// [`crate::Mediator::invalidate_source`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceDelta {
    /// The source whose exported objects changed.
    pub source: Symbol,
    /// Labels of changed objects (at any nesting depth), if known.
    pub labels: BTreeSet<Symbol>,
    /// Canonical cache keys ([`super::canonical_key`]) of affected
    /// queries, if known.
    pub keys: BTreeSet<String>,
}

impl SourceDelta {
    /// An unscoped delta: everything cached for `source` is invalid.
    pub fn whole(source: Symbol) -> SourceDelta {
        SourceDelta {
            source,
            labels: BTreeSet::new(),
            keys: BTreeSet::new(),
        }
    }

    /// A delta scoped to objects carrying any of `labels`.
    pub fn labels<I: IntoIterator<Item = Symbol>>(source: Symbol, labels: I) -> SourceDelta {
        SourceDelta {
            source,
            labels: labels.into_iter().collect(),
            keys: BTreeSet::new(),
        }
    }

    /// A delta scoped to the exact canonical keys of affected queries.
    pub fn keys<I: IntoIterator<Item = String>>(source: Symbol, keys: I) -> SourceDelta {
        SourceDelta {
            source,
            labels: BTreeSet::new(),
            keys: keys.into_iter().collect(),
        }
    }

    /// Whether this delta names no labels and no keys (whole-source).
    pub fn is_unscoped(&self) -> bool {
        self.labels.is_empty() && self.keys.is_empty()
    }

    /// Could an entry with this canonical `key` and label footprint have
    /// observed the changed objects? Over-approximate by design: an
    /// unscoped delta matches everything, a wildcard footprint matches
    /// any label delta.
    pub fn matches(&self, key: &str, footprint: &LabelFootprint) -> bool {
        if self.is_unscoped() {
            return true;
        }
        if self.keys.contains(key) {
            return true;
        }
        !self.labels.is_empty()
            && (footprint.wildcard || self.labels.iter().any(|l| footprint.labels.contains(l)))
    }
}

/// The label footprint of a cached source query: which object labels its
/// answer can contain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelFootprint {
    /// Constant labels the query's tail patterns mention, at any depth
    /// (rest-condition labels included).
    pub labels: BTreeSet<Symbol>,
    /// `true` when the answer can embed objects of labels the query never
    /// names: a variable in label position, or a rest variable (which
    /// captures arbitrary sibling subobjects). Such entries match every
    /// label-scoped delta.
    pub wildcard: bool,
}

/// Compute the label footprint of a source query ([`LabelFootprint`]).
/// Only the tail is scanned — the head's `bind_for_*` carrier labels are
/// mediator-invented names, not source data.
pub fn rule_labels(query: &Rule) -> LabelFootprint {
    let mut fp = LabelFootprint::default();
    for t in &query.tail {
        match t {
            TailItem::Match { pattern, .. } => pattern_labels(pattern, &mut fp),
            // External predicates see bindings, not source objects.
            TailItem::External { .. } => {}
        }
    }
    // The head is deliberately NOT scanned: in a source query it is
    // purely constructive (carrier objects the mediator invents around
    // tail bindings), so its labels never name source data.
    fp
}

fn pattern_labels(p: &Pattern, fp: &mut LabelFootprint) {
    match &p.label {
        Term::Const(v) => {
            if let Some(sym) = label_symbol(v) {
                fp.labels.insert(sym);
            } else {
                fp.wildcard = true;
            }
        }
        // A variable (or computed) label can match any object.
        _ => fp.wildcard = true,
    }
    if let PatValue::Set(sp) = &p.value {
        for e in &sp.elements {
            match e {
                SetElem::Pattern(q) | SetElem::Wildcard(q) => pattern_labels(q, fp),
                // A bare set variable binds a whole subobject of unknown
                // label.
                SetElem::Var(_) => fp.wildcard = true,
            }
        }
        if let Some(r) = &sp.rest {
            // The rest variable captures every sibling subobject the
            // named elements did not: arbitrary labels.
            fp.wildcard = true;
            for c in &r.conditions {
                pattern_labels(c, fp);
            }
        }
    }
}

/// The label symbol of a constant label value (strings and symbols only;
/// anything else is treated as unmatchable-by-name → wildcard).
fn label_symbol(v: &oem::Value) -> Option<Symbol> {
    match v {
        oem::Value::Str(s) => Some(*s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msl::parse_rule;
    use oem::sym;

    fn q(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    #[test]
    fn footprint_collects_constant_labels() {
        let fp = rule_labels(&q(
            "<b {<bind_for_N N>}> :- <person {<name N> <dept 'CS'>}>@whois",
        ));
        assert!(fp.labels.contains(&sym("person")));
        assert!(fp.labels.contains(&sym("name")));
        assert!(fp.labels.contains(&sym("dept")));
        assert!(!fp.labels.contains(&sym("bind_for_N")), "{fp:?}");
        assert!(!fp.wildcard);
    }

    #[test]
    fn rest_variable_sets_the_wildcard_bit() {
        let fp = rule_labels(&q(
            "<b {<bind_for_N N> <bind_for_R {R}>}> :- <person {<name N> | R}>@whois",
        ));
        assert!(fp.wildcard, "rest captures arbitrary labels");
        assert!(fp.labels.contains(&sym("name")));
    }

    #[test]
    fn variable_label_sets_the_wildcard_bit() {
        let fp = rule_labels(&q("<b {<bind_for_V V>}> :- <person {<L V>}>@whois"));
        assert!(fp.wildcard);
    }

    #[test]
    fn unscoped_delta_matches_everything() {
        let d = SourceDelta::whole(sym("whois"));
        assert!(d.is_unscoped());
        assert!(d.matches("anything", &LabelFootprint::default()));
    }

    #[test]
    fn label_delta_matches_by_intersection_or_wildcard() {
        let d = SourceDelta::labels(sym("whois"), [sym("dept")]);
        let person = rule_labels(&q("<b {<bind_for_N N>}> :- <person {<name N>}>@whois"));
        let dept = rule_labels(&q("<b {<bind_for_H H>}> :- <dept {<head H>}>@whois"));
        let resty = rule_labels(&q(
            "<b {<bind_for_N N> <bind_for_R {R}>}> :- <person {<name N> | R}>@whois",
        ));
        assert!(!d.matches("k1", &person), "no shared label, no rest");
        assert!(d.matches("k2", &dept), "dept label intersects");
        assert!(d.matches("k3", &resty), "wildcard footprint matches");
    }

    #[test]
    fn key_delta_matches_exact_keys_only() {
        let d = SourceDelta::keys(sym("whois"), ["K1".to_string()]);
        let fp = LabelFootprint::default();
        assert!(d.matches("K1", &fp));
        assert!(!d.matches("K2", &fp));
    }
}
