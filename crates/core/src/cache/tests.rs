//! Facade tests: canonicalization, containment soundness, tier behavior,
//! delta invalidation, crash recovery, and byte accounting.

use super::*;
use msl::parse_rule;
use oem::sym;
use wrappers::fault::VirtualClock;

fn q(src: &str) -> Rule {
    parse_rule(src).unwrap()
}

/// The shape the planner's `build_source_query` emits for a whois
/// fetch extracting `name` (scalar) and the rest set.
fn whois_query(name_var: &str, rest_var: &str) -> Rule {
    q(&format!(
        "<bind_for_whois {{<bind_for_{name_var} {name_var}> <bind_for_{rest_var} {{{rest_var}}}>}}> :- \
         <person {{<name {name_var}> <dept 'CS'> | {rest_var}}}>@whois"
    ))
}

fn whois_answer(names: &[(&str, &[(&str, &str)])]) -> ObjectStore {
    // One bind_for_whois object per person: an atomic name carrier
    // and a set carrier holding the rest subobjects.
    let mut s = ObjectStore::with_oid_prefix("whois_r");
    for (name, rest) in names {
        let name_c = s.atom("bind_for_N", *name);
        let rest_kids: Vec<oem::ObjId> = rest.iter().map(|(l, v)| s.atom(*l, *v)).collect();
        let rest_c = s.set("bind_for_Rest1", rest_kids);
        let top = s.set("bind_for_whois", vec![name_c, rest_c]);
        s.add_top(top);
    }
    s
}

fn extract_nr() -> Vec<ExtractVar> {
    vec![
        ExtractVar {
            var: sym("N"),
            kind: VarKind::Scalar,
        },
        ExtractVar {
            var: sym("Rest1"),
            kind: VarKind::Scalar,
        },
    ]
}

#[test]
fn canonical_key_normalizes_renaming_and_order() {
    let a = q("<bind_for_whois {<bind_for_N N>}> :- <person {<name N> <dept 'CS'>}>@whois");
    let b = q("<bind_for_whois {<bind_for_X X>}> :- <person {<dept 'CS'> <name X>}>@whois");
    assert_eq!(canonical_key(&a), canonical_key(&b));
}

#[test]
fn canonical_key_distinguishes_different_constants() {
    let a = q("<b {<bind_for_N N>}> :- <person {<name N> <dept 'CS'>}>@whois");
    let b = q("<b {<bind_for_N N>}> :- <person {<name N> <dept 'EE'>}>@whois");
    assert_ne!(canonical_key(&a), canonical_key(&b));
}

#[test]
fn canonical_key_tracks_carrier_labels() {
    // Same tail, but extracting different variables → different keys.
    let a = q("<b {<bind_for_N N>}> :- <person {<name N> <year Y>}>@whois");
    let b = q("<b {<bind_for_Y Y>}> :- <person {<name N> <year Y>}>@whois");
    assert_ne!(canonical_key(&a), canonical_key(&b));
}

#[test]
fn exact_hit_serves_identical_rows_under_renamed_vars() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[
        ("Joe Chung", &[("relation", "employee")]),
        ("Nick Naive", &[("relation", "student")]),
    ]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );

    // The same logical query with renamed variables.
    let renamed = q("<bind_for_whois {<bind_for_X X> <bind_for_R2 {R2}>}> :- \
         <person {<name X> <dept 'CS'> | R2}>@whois");
    let vars = vec![
        ExtractVar {
            var: sym("X"),
            kind: VarKind::Scalar,
        },
        ExtractVar {
            var: sym("R2"),
            kind: VarKind::Scalar,
        },
    ];
    let mut memory = ObjectStore::new();
    let (rows, kind) = cache
        .lookup(sym("whois"), &renamed, &vars, &mut memory)
        .expect("exact hit");
    assert_eq!(kind, CacheHit::Exact);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], BoundValue::Atom(Value::str("Joe Chung")));
    let c = cache.counters();
    assert_eq!((c.hits, c.containment_hits, c.misses), (1, 0, 0));
}

#[test]
fn containment_hit_filters_by_pinned_constant() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[
        ("Joe Chung", &[("relation", "employee")]),
        ("Nick Naive", &[("relation", "student")]),
    ]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );

    // Narrower query: the name is pinned to a constant.
    let narrow = q("<bind_for_whois {<bind_for_Rest1 {Rest1}>}> :- \
         <person {<name 'Joe Chung'> <dept 'CS'> | Rest1}>@whois");
    let vars = vec![ExtractVar {
        var: sym("Rest1"),
        kind: VarKind::Scalar,
    }];
    let mut memory = ObjectStore::new();
    let (rows, kind) = cache
        .lookup(sym("whois"), &narrow, &vars, &mut memory)
        .expect("containment hit");
    assert_eq!(kind, CacheHit::Containment);
    assert_eq!(rows.len(), 1, "only Joe survives the filter");
    let BoundValue::ObjSet(ids) = &rows[0][0] else {
        panic!("rest carrier must be a set");
    };
    assert_eq!(ids.len(), 1);
    assert_eq!(memory.get(ids[0]).label, sym("relation"));
}

#[test]
fn containment_hit_filters_by_extra_rest_condition() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[
        ("Joe Chung", &[("relation", "employee")]),
        ("Nick Naive", &[("relation", "student")]),
    ]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );

    // Narrower query: a condition pushed into the rest variable.
    let narrow = q(
        "<bind_for_whois {<bind_for_N N> <bind_for_Rest1 {Rest1}>}> :- \
         <person {<name N> <dept 'CS'> | Rest1:{<relation 'student'>}}>@whois",
    );
    let mut memory = ObjectStore::new();
    let (rows, kind) = cache
        .lookup(sym("whois"), &narrow, &extract_nr(), &mut memory)
        .expect("containment hit");
    assert_eq!(kind, CacheHit::Containment);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], BoundValue::Atom(Value::str("Nick Naive")));
}

#[test]
fn rest_condition_sharing_a_query_variable_is_not_served() {
    // <person {<name N> ... | R:{<boss N>}}>: the condition's N is the
    // same variable the query binds to the name. Serving from the
    // broad entry would filter each row by "rest has *any* boss"
    // instead of "rest has a boss equal to this row's name" — a
    // superset. The probe must reject, not serve wrongly.
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[
        ("Joe Chung", &[("boss", "John Hennessy")]),
        ("John Hennessy", &[("boss", "John Hennessy")]),
    ]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );
    let narrow = q(
        "<bind_for_whois {<bind_for_N N> <bind_for_Rest1 {Rest1}>}> :- \
         <person {<name N> <dept 'CS'> | Rest1:{<boss N>}}>@whois",
    );
    let mut memory = ObjectStore::new();
    assert!(
        cache
            .lookup(sym("whois"), &narrow, &extract_nr(), &mut memory)
            .is_none(),
        "a shared-variable rest condition must miss, never serve a superset"
    );
    assert_eq!(cache.counters().misses, 1);
}

#[test]
fn rest_conditions_sharing_a_variable_are_not_served() {
    // Two extra conditions sharing X: the live matcher requires the
    // SAME X to satisfy both; independent filtering would accept a
    // row where different members satisfy each. Must reject.
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[("Joe Chung", &[("proj", "tsimmis"), ("backup", "lore")])]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );
    let narrow = q(
        "<bind_for_whois {<bind_for_N N> <bind_for_Rest1 {Rest1}>}> :- \
         <person {<name N> <dept 'CS'> | Rest1:{<proj X> <backup X>}}>@whois",
    );
    let mut memory = ObjectStore::new();
    assert!(cache
        .lookup(sym("whois"), &narrow, &extract_nr(), &mut memory)
        .is_none());
}

#[test]
fn rest_condition_with_local_variable_is_served() {
    // A condition variable used nowhere else binds freely row-by-row
    // in the live matcher too, so local filtering is sound.
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[
        ("Joe Chung", &[("relation", "employee")]),
        ("Terry Torres", &[("office", "B1")]),
    ]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );
    let narrow = q(
        "<bind_for_whois {<bind_for_N N> <bind_for_Rest1 {Rest1}>}> :- \
         <person {<name N> <dept 'CS'> | Rest1:{<relation R>}}>@whois",
    );
    let mut memory = ObjectStore::new();
    let (rows, kind) = cache
        .lookup(sym("whois"), &narrow, &extract_nr(), &mut memory)
        .expect("a purely local condition variable is servable");
    assert_eq!(kind, CacheHit::Containment);
    assert_eq!(rows.len(), 1, "only Joe has a relation member");
    assert_eq!(rows[0][0], BoundValue::Atom(Value::str("Joe Chung")));
}

#[test]
fn broader_query_never_served_from_narrower_entry() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    // Cache the NARROW query (name pinned)...
    let narrow = q("<bind_for_whois {<bind_for_Rest1 {Rest1}>}> :- \
         <person {<name 'Joe Chung'> <dept 'CS'> | Rest1}>@whois");
    let vars = vec![ExtractVar {
        var: sym("Rest1"),
        kind: VarKind::Scalar,
    }];
    let answer = whois_answer(&[("Joe Chung", &[("relation", "employee")])]);
    cache.insert(sym("whois"), &narrow, &vars, &answer);
    // ... and probe with the broad one: must miss (a constant does
    // not cover a variable).
    let mut memory = ObjectStore::new();
    assert!(cache
        .lookup(
            sym("whois"),
            &whois_query("N", "Rest1"),
            &extract_nr(),
            &mut memory
        )
        .is_none());
    assert_eq!(cache.counters().misses, 1);
}

#[test]
fn extra_tail_pattern_is_not_containment() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[("Joe Chung", &[("relation", "employee")])]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );
    // A second tail pattern the cached query never had: no reuse.
    let two_tails = q("<bind_for_whois {<bind_for_N N>}> :- \
         <person {<name N> <dept 'CS'> | Rest1}>@whois AND <dept {<head N>}>@whois");
    let vars = vec![ExtractVar {
        var: sym("N"),
        kind: VarKind::Scalar,
    }];
    let mut memory = ObjectStore::new();
    assert!(cache
        .lookup(sym("whois"), &two_tails, &vars, &mut memory)
        .is_none());
}

#[test]
fn capacity_evicts_oldest_and_counts() {
    let cache = AnswerCache::new(CacheOptions {
        enabled: true,
        capacity: 2,
        ..Default::default()
    });
    let answer = whois_answer(&[("Joe Chung", &[])]);
    for dept in ["'A'", "'B'", "'C'"] {
        let query = q(&format!(
            "<b {{<bind_for_N N>}}> :- <person {{<name N> <dept {dept}>}}>@whois"
        ));
        cache.insert(
            sym("whois"),
            &query,
            &[ExtractVar {
                var: sym("N"),
                kind: VarKind::Scalar,
            }],
            &answer,
        );
    }
    let c = cache.counters();
    assert_eq!(c.entries, 2);
    assert_eq!(c.evictions, 1);
    assert!(c.bytes_cached > 0);
    assert_eq!(cache.entry_count(sym("whois")), 2);
}

#[test]
fn ttl_expires_on_the_virtual_clock() {
    let clock = Arc::new(VirtualClock::new());
    let cache = AnswerCache::new(CacheOptions {
        enabled: true,
        ttl_ms: Some(100),
        clock: Some(clock.clone()),
        ..Default::default()
    });
    let answer = whois_answer(&[("Joe Chung", &[("relation", "employee")])]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );
    let mut memory = ObjectStore::new();
    assert!(cache
        .lookup(
            sym("whois"),
            &whois_query("N", "Rest1"),
            &extract_nr(),
            &mut memory
        )
        .is_some());
    clock.advance(101);
    assert!(
        cache
            .lookup(
                sym("whois"),
                &whois_query("N", "Rest1"),
                &extract_nr(),
                &mut memory
            )
            .is_none(),
        "entry must expire after the TTL"
    );
    let c = cache.counters();
    assert_eq!(c.evictions, 1);
    assert_eq!(c.entries, 0);
    assert_eq!(c.bytes_cached, 0);
}

#[test]
fn failed_source_embargoes_entries_unless_stale_ok() {
    let answer = whois_answer(&[("Joe Chung", &[("relation", "employee")])]);
    for stale_ok in [false, true] {
        let cache = AnswerCache::new(CacheOptions {
            enabled: true,
            stale_ok,
            ..Default::default()
        });
        cache.insert(
            sym("whois"),
            &whois_query("N", "Rest1"),
            &extract_nr(),
            &answer,
        );
        cache.mark_failed(sym("whois"));
        let mut memory = ObjectStore::new();
        let served = cache
            .lookup(
                sym("whois"),
                &whois_query("N", "Rest1"),
                &extract_nr(),
                &mut memory,
            )
            .is_some();
        assert_eq!(served, stale_ok, "stale_ok={stale_ok}");
        // Recovery lifts the embargo either way.
        cache.mark_ok(sym("whois"));
        assert!(cache
            .lookup(
                sym("whois"),
                &whois_query("N", "Rest1"),
                &extract_nr(),
                &mut memory
            )
            .is_some());
    }
}

#[test]
fn invalidate_source_drops_the_shard() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    let answer = whois_answer(&[("Joe Chung", &[])]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );
    assert_eq!(cache.entry_count(sym("whois")), 1);
    cache.invalidate_source(sym("whois"));
    assert_eq!(cache.entry_count(sym("whois")), 0);
    let c = cache.counters();
    assert_eq!(c.evictions, 1);
    assert_eq!(c.bytes_cached, 0);
    let mut memory = ObjectStore::new();
    assert!(cache
        .lookup(
            sym("whois"),
            &whois_query("N", "Rest1"),
            &extract_nr(),
            &mut memory
        )
        .is_none());
}

#[test]
fn disabled_sources_are_never_cached() {
    let cache = AnswerCache::new(CacheOptions {
        enabled: true,
        disabled_sources: [sym("whois")].into_iter().collect(),
        ..Default::default()
    });
    assert!(!cache.enabled_for(sym("whois")));
    assert!(cache.enabled_for(sym("cs")));
    let answer = whois_answer(&[("Joe Chung", &[])]);
    cache.insert(
        sym("whois"),
        &whois_query("N", "Rest1"),
        &extract_nr(),
        &answer,
    );
    assert_eq!(cache.entry_count(sym("whois")), 0);
}

// ---- tiered-store tests ---------------------------------------------

/// A fresh (pre-cleaned) per-test cache directory.
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("medmaker-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiered_opts(dir: &std::path::Path) -> CacheOptions {
    CacheOptions {
        enabled: true,
        cache_dir: Some(dir.to_path_buf()),
        ..Default::default()
    }
}

/// A one-extraction query distinguished by its dept constant.
fn dept_query(dept: &str) -> Rule {
    q(&format!(
        "<b {{<bind_for_N N>}}> :- <person {{<name N> <dept '{dept}'>}}>@whois"
    ))
}

fn extract_n() -> Vec<ExtractVar> {
    vec![ExtractVar {
        var: sym("N"),
        kind: VarKind::Scalar,
    }]
}

/// An answer with `rows` atomic name carriers.
fn n_answer(rows: usize) -> ObjectStore {
    let mut s = ObjectStore::with_oid_prefix("whois_r");
    for i in 0..rows {
        let name_c = s.atom("bind_for_N", format!("P{i}").as_str());
        let top = s.set("bind_for_whois", vec![name_c]);
        s.add_top(top);
    }
    s
}

fn lookup_names(cache: &AnswerCache, query: &Rule) -> Option<Vec<BoundValue>> {
    let mut memory = ObjectStore::new();
    cache
        .lookup(sym("whois"), query, &extract_n(), &mut memory)
        .map(|(rows, _)| rows.into_iter().map(|mut r| r.remove(0)).collect())
}

#[test]
fn warm_tier_survives_reopen() {
    let dir = tmp_dir("reopen");
    {
        let cache = AnswerCache::new(tiered_opts(&dir));
        cache.insert(sym("whois"), &dept_query("CS"), &extract_n(), &n_answer(2));
    }
    // A brand-new process image: nothing hot, everything on disk.
    let cache = AnswerCache::new(tiered_opts(&dir));
    assert_eq!(cache.entry_count(sym("whois")), 0);
    let rows = lookup_names(&cache, &dept_query("CS")).expect("served from the warm tier");
    assert_eq!(
        rows,
        vec![
            BoundValue::Atom(Value::str("P0")),
            BoundValue::Atom(Value::str("P1")),
        ]
    );
    let c = cache.counters();
    assert_eq!((c.hits, c.warm_hits, c.promotions), (1, 1, 1));
    // The promotion made it hot: the next lookup stays in memory.
    assert!(lookup_names(&cache, &dept_query("CS")).is_some());
    let c = cache.counters();
    assert_eq!((c.hits, c.warm_hits), (2, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn demoted_entries_stay_servable_from_warm() {
    let dir = tmp_dir("demote");
    let cache = AnswerCache::new(CacheOptions {
        capacity: 1,
        ..tiered_opts(&dir)
    });
    cache.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
    cache.insert(sym("whois"), &dept_query("B"), &extract_n(), &n_answer(1));
    let c = cache.counters();
    assert_eq!((c.demotions, c.evictions, c.entries), (1, 0, 1));
    // The demoted entry is gone from memory but still serves from disk
    // (and promotes back, demoting the other).
    assert!(lookup_names(&cache, &dept_query("A")).is_some());
    let c = cache.counters();
    assert_eq!((c.warm_hits, c.promotions, c.demotions), (1, 1, 2));
    assert_eq!(c.bytes_cached, cache.hot_resident_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cost_aware_eviction_keeps_the_hitter() {
    // No warm tier: eviction is terminal, making the policy observable.
    let cache = AnswerCache::new(CacheOptions {
        enabled: true,
        capacity: 2,
        ..Default::default()
    });
    cache.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
    cache.insert(sym("whois"), &dept_query("B"), &extract_n(), &n_answer(1));
    // A hit raises A's per-entry EWMA above B's.
    assert!(lookup_names(&cache, &dept_query("A")).is_some());
    cache.insert(sym("whois"), &dept_query("C"), &extract_n(), &n_answer(1));
    assert!(
        lookup_names(&cache, &dept_query("B")).is_none(),
        "the never-hit entry is the lowest value and must go"
    );
    assert!(lookup_names(&cache, &dept_query("A")).is_some());
    assert!(lookup_names(&cache, &dept_query("C")).is_some());
}

#[test]
fn fifo_ablation_evicts_oldest_regardless_of_hits() {
    let cache = AnswerCache::new(CacheOptions {
        enabled: true,
        capacity: 2,
        fifo: true,
        ..Default::default()
    });
    cache.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
    cache.insert(sym("whois"), &dept_query("B"), &extract_n(), &n_answer(1));
    assert!(lookup_names(&cache, &dept_query("A")).is_some());
    cache.insert(sym("whois"), &dept_query("C"), &extract_n(), &n_answer(1));
    assert!(
        lookup_names(&cache, &dept_query("A")).is_none(),
        "FIFO ignores the hit and evicts the oldest"
    );
    assert!(lookup_names(&cache, &dept_query("B")).is_some());
}

#[test]
fn scoped_label_delta_invalidates_only_matching_entries() {
    let dir = tmp_dir("delta-label");
    let person = dept_query("CS");
    let dept = q("<b {<bind_for_N N>}> :- <dept {<head N>}>@whois");
    {
        let cache = AnswerCache::new(tiered_opts(&dir));
        cache.insert(sym("whois"), &person, &extract_n(), &n_answer(1));
        cache.insert(sym("whois"), &dept, &extract_n(), &n_answer(1));
        let n = cache.apply_delta(&SourceDelta::labels(sym("whois"), [sym("head")]));
        assert_eq!(n, 1, "only the dept query mentions the changed label");
        assert!(
            lookup_names(&cache, &person).is_some(),
            "unaffected entry still hits"
        );
        assert!(lookup_names(&cache, &dept).is_none());
        assert_eq!(cache.counters().evictions, 1);
    }
    // The tombstone keeps the invalidation durable across reopen.
    let cache = AnswerCache::new(tiered_opts(&dir));
    assert!(lookup_names(&cache, &person).is_some());
    assert!(lookup_names(&cache, &dept).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn key_scoped_delta_invalidates_exact_keys_only() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    let a = dept_query("A");
    let b = dept_query("B");
    cache.insert(sym("whois"), &a, &extract_n(), &n_answer(1));
    cache.insert(sym("whois"), &b, &extract_n(), &n_answer(1));
    let n = cache.apply_delta(&SourceDelta::keys(sym("whois"), [canonical_key(&a)]));
    assert_eq!(n, 1);
    assert!(lookup_names(&cache, &a).is_none());
    assert!(lookup_names(&cache, &b).is_some());
}

#[test]
fn scoped_delta_leaves_the_failure_embargo_intact() {
    let cache = AnswerCache::new(CacheOptions::enabled());
    cache.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
    cache.mark_failed(sym("whois"));
    cache.apply_delta(&SourceDelta::labels(sym("whois"), [sym("nosuch")]));
    assert!(
        cache.embargoed(sym("whois")),
        "a data change is not a recovery"
    );
    // An unscoped delta is whole-source invalidation and lifts it.
    cache.apply_delta(&SourceDelta::whole(sym("whois")));
    assert!(!cache.embargoed(sym("whois")));
}

#[test]
fn whole_source_invalidation_survives_reopen() {
    let dir = tmp_dir("invalidate-reopen");
    {
        let cache = AnswerCache::new(tiered_opts(&dir));
        cache.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
        assert_eq!(cache.invalidate_source(sym("whois")), 1);
    }
    let cache = AnswerCache::new(tiered_opts(&dir));
    assert!(lookup_names(&cache, &dept_query("A")).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_record_recovers_to_the_valid_prefix() {
    let dir = tmp_dir("torn");
    {
        let cache = AnswerCache::new(tiered_opts(&dir));
        cache.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
        cache.insert(sym("whois"), &dept_query("B"), &extract_n(), &n_answer(3));
    }
    // Injected crash mid-append: shear bytes off the final record.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("one segment written");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

    let cache = AnswerCache::new(tiered_opts(&dir));
    let stats = cache.warm_stats().expect("warm tier open");
    assert_eq!(stats.torn_segments, 1);
    assert_eq!(
        stats.entries, 1,
        "only the checksummed-valid entry survives"
    );
    assert!(
        lookup_names(&cache, &dept_query("B")).is_none(),
        "the torn record must not be served"
    );
    let recovered = lookup_names(&cache, &dept_query("A")).expect("valid prefix serves");

    // Byte-identical to a cold run: a fresh memory-only cache fed the
    // same answer serves the same rows.
    let cold = AnswerCache::new(CacheOptions::enabled());
    cold.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
    assert_eq!(recovered, lookup_names(&cold, &dept_query("A")).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_segment_header_is_skipped_whole() {
    let dir = tmp_dir("badheader");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("seg-00000042.seg"), b"not a segment at all").unwrap();
    let cache = AnswerCache::new(tiered_opts(&dir));
    let stats = cache.warm_stats().expect("warm tier open");
    assert_eq!(stats.corrupt_segments, 1);
    assert_eq!(stats.entries, 0);
    // The tier still works for fresh traffic.
    cache.insert(sym("whois"), &dept_query("A"), &extract_n(), &n_answer(1));
    assert!(lookup_names(&cache, &dept_query("A")).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_drops_lowest_value_past_budget() {
    let dir = tmp_dir("compact");
    let cache = AnswerCache::new(CacheOptions {
        // Tiny budget: inserting a handful of answers overflows it and
        // triggers auto-compaction on the write path.
        warm_bytes: 600,
        ..tiered_opts(&dir)
    });
    for i in 0..6 {
        cache.insert(
            sym("whois"),
            &dept_query(&format!("D{i}")),
            &extract_n(),
            &n_answer(2),
        );
    }
    // The last one is the hitter: promote its value above the rest.
    assert!(lookup_names(&cache, &dept_query("D5")).is_some());
    cache.insert(sym("whois"), &dept_query("D6"), &extract_n(), &n_answer(2));
    let c = cache.counters();
    assert!(c.compactions >= 1, "budget overflow must compact: {c:?}");
    let stats = cache.warm_stats().unwrap();
    assert!(
        stats.disk_bytes <= 600 + 200,
        "compaction must shrink the log near the budget, got {stats:?}"
    );
    assert!(stats.entries < 7, "the lowest-value entries were dropped");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- byte-accounting property test -----------------------------------

/// The `bytes_cached` gauge must equal the sum of hot-resident entry
/// sizes after every operation — inserts, replacements, hits with
/// promotion/demotion, scoped and unscoped invalidation, TTL expiry —
/// with and without the warm tier. Deterministic LCG, no dependencies.
#[test]
fn byte_gauge_tracks_resident_entries_exactly() {
    let mut seed: u64 = 0x243F_6A88_85A3_08D3;
    let mut rnd = move |bound: usize| {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as usize) % bound
    };
    for tiered in [false, true] {
        let dir = tmp_dir(if tiered { "gauge-tiered" } else { "gauge-mem" });
        let clock = Arc::new(VirtualClock::new());
        let cache = AnswerCache::new(CacheOptions {
            enabled: true,
            capacity: 3,
            ttl_ms: Some(500),
            clock: Some(clock.clone()),
            cache_dir: tiered.then(|| dir.clone()),
            warm_bytes: 4096,
            ..Default::default()
        });
        let queries: Vec<Rule> = (0..8).map(|i| dept_query(&format!("D{i}"))).collect();
        for step in 0..400 {
            let op = rnd(100);
            if op < 50 {
                let i = rnd(8);
                cache.insert(
                    sym("whois"),
                    &queries[i],
                    &extract_n(),
                    &n_answer(1 + rnd(3)),
                );
            } else if op < 80 {
                let _ = lookup_names(&cache, &queries[rnd(8)]);
            } else if op < 88 {
                let i = rnd(8);
                cache.apply_delta(&SourceDelta::keys(
                    sym("whois"),
                    [canonical_key(&queries[i])],
                ));
            } else if op < 94 {
                cache.invalidate_source(sym("whois"));
            } else {
                clock.advance(rnd(700) as u64);
            }
            assert_eq!(
                cache.counters().bytes_cached,
                cache.hot_resident_bytes(),
                "gauge drifted at step {step} (tiered={tiered})"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
